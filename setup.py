"""Legacy setuptools shim.

All project metadata lives in ``pyproject.toml`` (PEP 621); this file
only enables editable installs on toolchains that cannot build PEP 660
editable wheels (e.g. setuptools < 70.1 without the ``wheel`` package,
offline):

    pip install -e . --no-build-isolation --no-use-pep517

On current toolchains a plain ``pip install -e .`` works and ignores
this shim's code path entirely.
"""

from setuptools import setup

setup()
