#!/usr/bin/env python3
"""DAG dependency graphs (paper §4.3.2, figures 6-8).

Builds a media-composition service whose Dependency Graph is a DAG:

    capture -> splitter -> {video_enhancer, audio_enhancer} -> mixer

``splitter`` is a *fan-out* component (its output feeds both enhancers);
``mixer`` is a *fan-in* component (its input is the concatenation of the
enhancers' outputs).  The script plans with the two-pass heuristic and
cross-checks against the exhaustive optimum, including an availability
setting that triggers pass II's non-convergence resolution (figure 8).

Run:  python examples/dag_service.py
"""

from repro.core import (
    AvailabilitySnapshot,
    Binding,
    DependencyGraph,
    DistributedService,
    ExhaustiveDagPlanner,
    QoSLevel,
    QoSRanking,
    QoSVector,
    ServiceComponent,
    TabularTranslation,
    TwoPassDagPlanner,
    build_qrg,
    concat_levels,
)


def level(label, **params):
    return QoSLevel(label, QoSVector(params))


def build_service() -> DistributedService:
    src = level("RAW", stream=2)
    split_out = (level("AV.hi", av=2), level("AV.lo", av=1))
    splitter = ServiceComponent(
        "splitter",
        (src,),
        split_out,
        TabularTranslation(
            {("RAW", "AV.hi"): {"cpu": 8.0}, ("RAW", "AV.lo"): {"cpu": 4.0}}
        ),
    )

    video_in = (level("V.hi", av=2), level("V.lo", av=1))
    video_out = (level("VID.hd", video=2), level("VID.sd", video=1))
    video = ServiceComponent(
        "video_enhancer",
        video_in,
        video_out,
        TabularTranslation(
            {
                ("V.hi", "VID.hd"): {"gpu": 20.0},
                ("V.lo", "VID.hd"): {"gpu": 38.0},  # upscale
                ("V.hi", "VID.sd"): {"gpu": 12.0},
                ("V.lo", "VID.sd"): {"gpu": 8.0},
            }
        ),
    )

    audio_in = (level("A.hi", av=2), level("A.lo", av=1))
    audio_out = (level("AUD.hifi", audio=2), level("AUD.voice", audio=1))
    audio = ServiceComponent(
        "audio_enhancer",
        audio_in,
        audio_out,
        TabularTranslation(
            {
                ("A.hi", "AUD.hifi"): {"dsp": 15.0},
                ("A.lo", "AUD.hifi"): {"dsp": 30.0},
                ("A.hi", "AUD.voice"): {"dsp": 7.0},
                ("A.lo", "AUD.voice"): {"dsp": 5.0},
            }
        ),
    )

    # Fan-in: the mixer's inputs are concatenations of (video, audio) outputs.
    mixer_inputs = tuple(
        concat_levels([v, a]) for v in video_out for a in audio_out
    )
    mixer_out = (level("MIX.premium", e=2), level("MIX.standard", e=1))
    mixer_table = {}
    for combined in mixer_inputs:
        rich = "VID.hd" in combined.label and "AUD.hifi" in combined.label
        mixer_table[(combined.label, "MIX.premium")] = {"net": 35.0 if rich else 45.0}
        mixer_table[(combined.label, "MIX.standard")] = {"net": 18.0}
    mixer = ServiceComponent("mixer", mixer_inputs, mixer_out, TabularTranslation(mixer_table))

    graph = DependencyGraph(
        ["splitter", "video_enhancer", "audio_enhancer", "mixer"],
        [
            ("splitter", "video_enhancer"),
            ("splitter", "audio_enhancer"),
            ("video_enhancer", "mixer"),
            ("audio_enhancer", "mixer"),
        ],
    )
    return DistributedService(
        "media-composition",
        [splitter, video, audio, mixer],
        graph,
        QoSRanking(["MIX.premium", "MIX.standard"]),
    )


def plan_and_report(service, binding, amounts, title):
    print(f"--- {title} ---")
    snapshot = AvailabilitySnapshot.from_amounts(amounts)
    qrg = build_qrg(service, binding, snapshot)
    heuristic = TwoPassDagPlanner().plan(qrg)
    exact = ExhaustiveDagPlanner().plan(qrg)
    if heuristic is None:
        print("two-pass heuristic: no feasible plan")
    else:
        print("two-pass heuristic:")
        print(heuristic.describe())
    if exact is not None:
        print(f"exhaustive optimum: level={exact.end_to_end_label} Psi={exact.psi:.4f}")
        if heuristic is not None:
            gap = heuristic.psi / exact.psi if exact.psi else 1.0
            print(f"heuristic/optimal Psi ratio: {gap:.3f}")
    print()


def main() -> None:
    service = build_service()
    binding = Binding(
        {
            ("splitter", "cpu"): "cpu:ingest",
            ("video_enhancer", "gpu"): "gpu:farm",
            ("audio_enhancer", "dsp"): "dsp:farm",
            ("mixer", "net"): "net:egress",
        }
    )

    plan_and_report(
        service,
        binding,
        {"cpu:ingest": 100, "gpu:farm": 100, "dsp:farm": 100, "net:egress": 100},
        "balanced availability",
    )
    # Video enhancement prefers the high split; audio prefers the low
    # one -- forcing pass II's fan-out non-convergence resolution.
    plan_and_report(
        service,
        binding,
        {"cpu:ingest": 100, "gpu:farm": 55, "dsp:farm": 40, "net:egress": 200},
        "skewed availability (non-convergence at the fan-out)",
    )
    plan_and_report(
        service,
        binding,
        {"cpu:ingest": 100, "gpu:farm": 15, "dsp:farm": 9, "net:egress": 30},
        "starved enhancers (premium unreachable)",
    )


if __name__ == "__main__":
    main()
