#!/usr/bin/env python3
"""Plugging a different contention-index definition (paper footnote 2).

The paper defines psi = r_req / r_avail (eq. 2) but notes "there are
other definitions of psi which also exhibit this property [and] it is
straightforward for our algorithm to adopt a different psi definition".
This example plans the same session under three definitions -- the
paper's ratio, a headroom-sensitive variant, and a custom square-law --
and shows how the chosen path shifts.

Run:  python examples/custom_contention_index.py
"""

import pathlib
import sys

from repro.core import (
    AvailabilitySnapshot,
    Binding,
    compute_plan,
    headroom_contention_index,
    ratio_contention_index,
)

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from quickstart import build_service  # reuse the quickstart's service


def square_law_index(required: float, available: float) -> float:
    """A custom psi: quadratic in the utilisation fraction.

    Stays tiny while a resource is slack, then climbs steeply -- a
    planner using it tolerates moderately loaded resources but strongly
    avoids nearly-exhausted ones.
    """
    if available <= 0:
        return float("inf")
    fraction = required / available
    return fraction * fraction


def main() -> None:
    service = build_service()
    binding = Binding(
        {("sender", "cpu"): "cpu:server", ("player", "net"): "net:server-client"}
    )
    # cpu moderately loaded, network slack: the definitions disagree on
    # how scary the cpu edge is relative to the network edge.
    snapshot = AvailabilitySnapshot.from_amounts(
        {"cpu:server": 30.0, "net:server-client": 90.0}
    )

    for name, index in (
        ("ratio (paper eq. 2)", ratio_contention_index),
        ("headroom req/(avail-req)", headroom_contention_index),
        ("custom square law", square_law_index),
    ):
        plan = compute_plan(
            service, binding, snapshot, algorithm="basic", contention_index=index
        )
        print(f"--- psi = {name} ---")
        print(plan.describe(), end="\n\n")


if __name__ == "__main__":
    main()
