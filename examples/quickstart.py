#!/usr/bin/env python3
"""Quickstart: define a two-component service and compute reservation plans.

Demonstrates the core workflow of the framework:

1. declare components with QoS levels and translation functions;
2. wire them into a distributed service with a dependency graph and an
   end-to-end QoS ranking;
3. bind each component's resource slots to concrete brokered resources;
4. snapshot availability and compute an end-to-end reservation plan.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AvailabilitySnapshot,
    Binding,
    DependencyGraph,
    DistributedService,
    QoSLevel,
    QoSRanking,
    QoSVector,
    ServiceComponent,
    TabularTranslation,
    compute_plan,
)


def build_service() -> DistributedService:
    """A video server (cpu) feeding a player (network bandwidth)."""
    # QoS levels are named vectors of discrete parameters.
    src = QoSLevel("SRC", QoSVector(frame_rate=30, height=480))
    hi = QoSLevel("HI", QoSVector(frame_rate=30, height=480))
    lo = QoSLevel("LO", QoSVector(frame_rate=15, height=240))

    sender = ServiceComponent(
        "sender",
        input_levels=(src,),
        output_levels=(hi, lo),
        # T_c: what does producing each output from each input cost?
        translation=TabularTranslation(
            {("SRC", "HI"): {"cpu": 12.0}, ("SRC", "LO"): {"cpu": 6.0}}
        ),
    )
    # The player's inputs are *equivalent* to the sender's outputs: same
    # QoS vectors, its own labels (exactly like the paper's figures).
    player_hi_in = QoSLevel("P.HI", QoSVector(frame_rate=30, height=480))
    player_lo_in = QoSLevel("P.LO", QoSVector(frame_rate=15, height=240))
    smooth = QoSLevel("SMOOTH", QoSVector(experience=2))
    basic = QoSLevel("BASIC", QoSVector(experience=1))
    player = ServiceComponent(
        "player",
        input_levels=(player_hi_in, player_lo_in),
        output_levels=(smooth, basic),
        translation=TabularTranslation(
            {
                ("P.HI", "SMOOTH"): {"net": 25.0},
                ("P.LO", "SMOOTH"): {"net": 40.0},  # upscaling costs extra
                ("P.HI", "BASIC"): {"net": 15.0},
                ("P.LO", "BASIC"): {"net": 10.0},
            }
        ),
    )
    return DistributedService(
        "video-quickstart",
        [sender, player],
        DependencyGraph.chain(["sender", "player"]),
        QoSRanking(["SMOOTH", "BASIC"]),  # end-to-end levels, best first
    )


def main() -> None:
    service = build_service()
    # Per-session wiring: which concrete resource backs each slot.
    binding = Binding(
        {("sender", "cpu"): "cpu:server", ("player", "net"): "net:server-client"}
    )

    print("=== plenty of everything: best level via the cheapest path ===")
    snapshot = AvailabilitySnapshot.from_amounts(
        {"cpu:server": 100.0, "net:server-client": 100.0}
    )
    plan = compute_plan(service, binding, snapshot, algorithm="basic")
    print(plan.describe(), end="\n\n")

    print("=== scarce network: the planner reroutes the trade-off ===")
    snapshot = AvailabilitySnapshot.from_amounts(
        {"cpu:server": 100.0, "net:server-client": 18.0}
    )
    plan = compute_plan(service, binding, snapshot, algorithm="basic")
    print(plan.describe(), end="\n\n")

    print("=== nearly exhausted: no feasible plan ===")
    snapshot = AvailabilitySnapshot.from_amounts(
        {"cpu:server": 2.0, "net:server-client": 3.0}
    )
    plan = compute_plan(service, binding, snapshot, algorithm="basic")
    print("plan:", plan)


if __name__ == "__main__":
    main()
