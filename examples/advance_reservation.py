#!/usr/bin/env python3
"""Advance (book-ahead) multi-resource reservations.

The paper lists advance reservation support as its next step (§6).
Because the planning algorithms only consume an availability *snapshot*,
they extend to advance reservations for free: snapshot a future window
(min availability over the window, per resource), plan on it, then book
the plan's demand over that window transactionally.

The script books a recurring "daily broadcast" session into a timeline
that already carries other bookings, showing how the chosen QoS level
shifts with the congestion of each window.

Run:  python examples/advance_reservation.py
"""

import pathlib
import sys

from repro.brokers import AdvanceRegistry, TimelineBroker
from repro.core import BasicPlanner, Binding, build_qrg
from repro.core.errors import AdmissionError

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from quickstart import build_service


def main() -> None:
    service = build_service()
    binding = Binding(
        {("sender", "cpu"): "cpu:server", ("player", "net"): "net:server-client"}
    )

    registry = AdvanceRegistry()
    registry.register(TimelineBroker("cpu:server", 60.0))
    registry.register(TimelineBroker("net:server-client", 50.0))

    # Pre-existing load: a nightly backup hogs the network 20:00-24:00
    # (hours 20-24), and a batch job takes most of the CPU 8:00-12:00.
    registry.broker("net:server-client").reserve(38.0, "backup", 20.0, 24.0)
    registry.broker("cpu:server").reserve(50.0, "batch", 8.0, 12.0)

    planner = BasicPlanner()
    resource_ids = ["cpu:server", "net:server-client"]

    print("Booking a 2-hour broadcast at different times of day:\n")
    for start in (6.0, 9.0, 14.0, 21.0):
        end = start + 2.0
        snapshot = registry.snapshot(resource_ids, start, end)
        availability = {rid: snapshot[rid].available for rid in resource_ids}
        qrg = build_qrg(service, binding, snapshot)
        plan = planner.plan(qrg)
        window = f"[{start:04.1f}h - {end:04.1f}h)"
        if plan is None:
            print(f"{window}  availability={availability}  -> no feasible plan")
            continue
        try:
            registry.reserve_plan(plan, f"broadcast@{start:g}", start, end)
            status = "BOOKED"
        except AdmissionError as exc:
            status = f"RACE LOST ({exc})"
        print(
            f"{window}  availability={availability}  -> "
            f"level {plan.end_to_end_label} (Psi={plan.psi:.2f})  {status}"
        )

    print("\nResulting network timeline (availability by hour):")
    net = registry.broker("net:server-client")
    for hour in range(0, 24, 2):
        bar = "#" * int(net.available_at(hour + 0.5) / 2)
        print(f"  {hour:02d}:00  {net.available_at(hour + 0.5):5.1f}  {bar}")


if __name__ == "__main__":
    main()
