#!/usr/bin/env python3
"""The paper's running example (§2): Video Streaming + Tracking.

Three components: VideoSender on the video server, ObjectTracker on a
tracking proxy, VideoPlayer at the client (figure 1).  The QRG of
figures 4-5 is rebuilt here, including the "hypothetical image
intrapolation capability to scale up the size of video images, at the
cost of higher CPU requirement" from the figure-4 caption.

The script prints the plans the three planners compute under the same
availability, then shows the tradeoff policy reacting to a bottleneck
whose availability trends down (Availability Change Index < 1).

Run:  python examples/video_streaming_tracking.py
"""

from repro.core import (
    AvailabilitySnapshot,
    Binding,
    DependencyGraph,
    DistributedService,
    QoSLevel,
    QoSRanking,
    QoSVector,
    RandomPlanner,
    ResourceObservation,
    ServiceComponent,
    TabularTranslation,
    TradeoffPlanner,
    BasicPlanner,
    build_qrg,
)

import numpy as np


def level(label, **params):
    return QoSLevel(label, QoSVector(params))


def build_service() -> DistributedService:
    # Source video: 30 fps, 480-line frames.
    q_src = level("Qa", frame_rate=30, image_size=480)

    # VideoSender: [Frame_Rate, Image_Size] in and out; R = [CPU, Disk_IO].
    sender_out = (
        level("Qb", frame_rate=30, image_size=480),
        level("Qc", frame_rate=30, image_size=240),
        level("Qd", frame_rate=15, image_size=240),
    )
    sender = ServiceComponent(
        "VideoSender",
        (q_src,),
        sender_out,
        TabularTranslation(
            {
                ("Qa", "Qb"): {"cpu": 20.0, "disk_io": 30.0},
                ("Qa", "Qc"): {"cpu": 14.0, "disk_io": 18.0},
                ("Qa", "Qd"): {"cpu": 9.0, "disk_io": 12.0},
            }
        ),
    )

    # ObjectTracker: input equivalent to sender output; output adds the
    # number of trackable objects; R = [CPU, net(server->proxy)].
    tracker_in = (
        level("Qe", frame_rate=30, image_size=480),
        level("Qf", frame_rate=30, image_size=240),
        level("Qg", frame_rate=15, image_size=240),
    )
    tracker_out = (
        level("Qh", frame_rate=30, image_size=480, objects=4),
        level("Qi", frame_rate=30, image_size=480, objects=2),
        level("Qj", frame_rate=30, image_size=240, objects=2),
        level("Qk", frame_rate=15, image_size=240, objects=1),
    )
    tracker = ServiceComponent(
        "ObjectTracker",
        tracker_in,
        tracker_out,
        TabularTranslation(
            {
                # direct tracking on the high-quality stream
                ("Qe", "Qh"): {"cpu": 25.0, "net_sp": 45.0},
                ("Qe", "Qi"): {"cpu": 18.0, "net_sp": 42.0},
                # intrapolation: upscale the mid stream, pay with CPU
                ("Qf", "Qh"): {"cpu": 40.0, "net_sp": 26.0},
                ("Qf", "Qi"): {"cpu": 30.0, "net_sp": 25.0},
                ("Qf", "Qj"): {"cpu": 15.0, "net_sp": 24.0},
                ("Qg", "Qj"): {"cpu": 28.0, "net_sp": 15.0},
                ("Qg", "Qk"): {"cpu": 10.0, "net_sp": 13.0},
            }
        ),
    )

    # VideoPlayer: output = end-to-end QoS (adds buffering delay);
    # R = [CPU, net(proxy->client)]; it too can intrapolate.
    player_in = tuple(
        level(l.label.replace("Q", "P", 1), **dict(l.vector)) for l in tracker_out
    )
    player_out = (
        level("Qn", frame_rate=30, image_size=480, objects=4, neg_delay=-100),
        level("Qo", frame_rate=30, image_size=480, objects=2, neg_delay=-120),
        level("Qp", frame_rate=30, image_size=240, objects=2, neg_delay=-150),
        level("Qq", frame_rate=15, image_size=240, objects=1, neg_delay=-200),
    )
    player = ServiceComponent(
        "VideoPlayer",
        player_in,
        player_out,
        TabularTranslation(
            {
                ("Ph", "Qn"): {"cpu": 12.0, "net_pc": 48.0},
                ("Pi", "Qo"): {"cpu": 10.0, "net_pc": 44.0},
                ("Pi", "Qn"): {"cpu": 22.0, "net_pc": 46.0},  # upscale objects? no: delay trade
                ("Pj", "Qp"): {"cpu": 8.0, "net_pc": 26.0},
                ("Pj", "Qo"): {"cpu": 20.0, "net_pc": 30.0},  # intrapolated upscale
                ("Pk", "Qq"): {"cpu": 5.0, "net_pc": 14.0},
                ("Pk", "Qp"): {"cpu": 15.0, "net_pc": 18.0},  # intrapolated upscale
            }
        ),
    )

    return DistributedService(
        "video-streaming-tracking",
        [sender, tracker, player],
        DependencyGraph.chain(["VideoSender", "ObjectTracker", "VideoPlayer"]),
        # The user ranks end-to-end levels linearly; where incomparable,
        # smaller delay wins (paper §4.1.1).
        QoSRanking(["Qn", "Qo", "Qp", "Qq"]),
    )


def main() -> None:
    service = build_service()
    binding = Binding(
        {
            ("VideoSender", "cpu"): "cpu:server",
            ("VideoSender", "disk_io"): "disk:server",
            ("ObjectTracker", "cpu"): "cpu:proxy",
            ("ObjectTracker", "net_sp"): "net:server-proxy",
            ("VideoPlayer", "cpu"): "cpu:client",
            ("VideoPlayer", "net_pc"): "net:proxy-client",
        }
    )
    availability = {
        "cpu:server": 120.0,
        "disk:server": 150.0,
        "cpu:proxy": 90.0,
        "net:server-proxy": 110.0,
        "cpu:client": 60.0,
        "net:proxy-client": 100.0,
    }

    snapshot = AvailabilitySnapshot.from_amounts(availability)
    qrg = build_qrg(service, binding, snapshot)
    print(f"QRG: {qrg.count_nodes()} nodes, {qrg.count_edges()} edges\n")

    print("--- basic (minimax bottleneck path, figure 5) ---")
    print(BasicPlanner().plan(qrg).describe(), end="\n\n")

    print("--- random baseline (contention-unaware) ---")
    print(RandomPlanner(rng=np.random.default_rng(1)).plan(qrg).describe(), end="\n\n")

    print("--- tradeoff with the proxy-client network trending down ---")
    observations = {
        rid: ResourceObservation(available=amount, alpha=1.0)
        for rid, amount in availability.items()
    }
    # alpha < 1: availability is 60% of its recent average (eq. 5)
    observations["net:proxy-client"] = ResourceObservation(available=100.0, alpha=0.6)
    qrg_down = build_qrg(service, binding, AvailabilitySnapshot(observations))
    print(TradeoffPlanner().plan(qrg_down).describe())


if __name__ == "__main__":
    main()
