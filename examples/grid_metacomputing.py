#!/usr/bin/env python3
"""Run the paper's simulated Grid environment end to end (§5, figure 9).

Builds the full evaluation setup -- four servers H1-H4 in a mesh, eight
client domains, 14 links, the S1-S4 services of figure 10 -- and runs a
short Poisson workload under each planning algorithm, printing the key
metrics and the path census.

Run:  python examples/grid_metacomputing.py [rate] [horizon]
      e.g. python examples/grid_metacomputing.py 180 2000
"""

import sys

from repro.analysis.tables import format_summary_line
from repro.sim import SimulationConfig, WorkloadSpec, run_simulation


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 140.0
    horizon = float(sys.argv[2]) if len(sys.argv) > 2 else 1500.0
    spec = WorkloadSpec(rate_per_60tu=rate, horizon=horizon)

    print(f"Simulating figure 9's Grid: rate={rate:g} sessions/60TU, " f"horizon={horizon:g} TU\n")
    results = {}
    for algorithm in ("random", "basic", "tradeoff"):
        result = run_simulation(SimulationConfig(algorithm=algorithm, seed=42, workload=spec))
        results[algorithm] = result
        print(format_summary_line(result))

    print("\nPer-class breakdown (basic):")
    for name, success, qos, attempts in results["basic"].metrics.class_rows:
        print(f"  {name:<12s} success={100 * success:5.1f}%  avg_qos={qos:4.2f}  n={attempts}")

    print("\nMost-selected reservation paths, family A (basic):")
    for signature, percent in results["basic"].paths.percentages("A")[:6]:
        print(f"  {signature:<22s} {percent:5.1f}%")

    print("\nBottleneck census (basic) -- which resource constrained each plan:")
    counts = results["basic"].metrics.bottleneck_counts
    for resource_id, count in sorted(counts.items(), key=lambda kv: -kv[1])[:8]:
        print(f"  {resource_id:<14s} {count}")
    print(f"  ... {len(counts)} distinct resources served as a bottleneck")

    print(
        "\nNote how tradeoff converts QoS headroom into admission headroom:\n"
        f"  success  basic={100 * results['basic'].success_rate:.1f}%  "
        f"tradeoff={100 * results['tradeoff'].success_rate:.1f}%\n"
        f"  avg QoS  basic={results['basic'].avg_qos_level:.2f}  "
        f"tradeoff={results['tradeoff'].avg_qos_level:.2f}"
    )


if __name__ == "__main__":
    main()
