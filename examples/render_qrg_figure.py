#!/usr/bin/env python3
"""Regenerate the paper's figures 4-5 as Graphviz DOT.

Figure 4 is the QRG of a Video Streaming + Tracking session; figure 5
is the same graph with the computed end-to-end reservation plan's path
thickened.  This script builds both DOT files from the §2 example
service and writes them next to itself; render with e.g.

    dot -Tpng figure4_qrg.dot -o figure4.png
    dot -Tpng figure5_plan.dot -o figure5.png

Run:  python examples/render_qrg_figure.py
"""

import pathlib
import sys

from repro.analysis.export import plan_to_dict, qrg_to_dot
from repro.core import AvailabilitySnapshot, BasicPlanner, Binding, build_qrg

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from video_streaming_tracking import build_service


def main() -> None:
    service = build_service()
    binding = Binding(
        {
            ("VideoSender", "cpu"): "cpu:server",
            ("VideoSender", "disk_io"): "disk:server",
            ("ObjectTracker", "cpu"): "cpu:proxy",
            ("ObjectTracker", "net_sp"): "net:server-proxy",
            ("VideoPlayer", "cpu"): "cpu:client",
            ("VideoPlayer", "net_pc"): "net:proxy-client",
        }
    )
    snapshot = AvailabilitySnapshot.from_amounts(
        {
            "cpu:server": 120.0,
            "disk:server": 150.0,
            "cpu:proxy": 90.0,
            "net:server-proxy": 110.0,
            "cpu:client": 60.0,
            "net:proxy-client": 100.0,
        }
    )
    qrg = build_qrg(service, binding, snapshot)
    plan = BasicPlanner().plan(qrg)

    out_dir = pathlib.Path.cwd()
    figure4 = out_dir / "figure4_qrg.dot"
    figure5 = out_dir / "figure5_plan.dot"
    figure4.write_text(qrg_to_dot(qrg, title="Figure 4: QRG snapshot"))
    figure5.write_text(
        qrg_to_dot(qrg, plan, title="Figure 5: QRG with the selected reservation plan")
    )
    print(f"wrote {figure4.name} ({qrg.count_nodes()} nodes, {qrg.count_edges()} edges)")
    print(f"wrote {figure5.name} (plan: {plan.signature_string()}, Psi={plan.psi:.3f})")
    print("\nplan as JSON-compatible dict:")
    import json

    print(json.dumps(plan_to_dict(plan), indent=2)[:600], "...")


if __name__ == "__main__":
    main()
