"""Observed-run benchmark: overhead claim + the gate's anchor ledger.

Two purposes:

* measure the cost of full observability (tracing + metrics + the causal
  event log) against a dark run of the identical workload -- the
  "effectively free when off, cheap when on" claim;
* write the ``BENCH_observed_run.json`` ledger whose *structural*
  numbers (admitted/rejected counts, event counts, span counts) are
  deterministic for a fixed seed, giving the CI regression gate exact
  leaves to compare rather than only machine-dependent timings.
"""

import time

from conftest import bench_config, write_bench_ledger
from repro.obs import ObservationSession
from repro.sim import run_simulation

#: Reduced scale keeps this benchmark around a second per run.
OBSERVED_RATE = 180.0
OBSERVED_HORIZON = 300.0


def _config():
    return bench_config("tradeoff", OBSERVED_RATE, horizon=OBSERVED_HORIZON)


def test_bench_observed_run(benchmark):
    """Dark vs fully observed wall time for one tradeoff run."""
    start = time.perf_counter()
    dark = run_simulation(_config())
    dark_seconds = time.perf_counter() - start

    def observed_once():
        with ObservationSession() as session:
            result = run_simulation(_config())
        return result, session.summarize()

    start = time.perf_counter()
    (observed, summary) = benchmark.pedantic(observed_once, rounds=1, iterations=1)
    observed_seconds = time.perf_counter() - start

    # Observation must not change a single simulation number.
    assert observed.metrics == dark.metrics

    overhead = (
        observed_seconds / dark_seconds - 1.0 if dark_seconds > 0 else float("inf")
    )
    benchmark.extra_info["dark_seconds"] = dark_seconds
    benchmark.extra_info["observed_seconds"] = observed_seconds
    benchmark.extra_info["overhead"] = overhead

    write_bench_ledger(
        "observed_run",
        {
            "dark_seconds": dark_seconds,
            "observed_seconds": observed_seconds,
            "attempts": observed.metrics.attempts,
            "successes": observed.metrics.successes,
            "success_rate": observed.metrics.success_rate,
            "avg_qos_level": observed.metrics.avg_qos_level,
        },
        obs=summary,
    )
    # Generous bound: the observed run does strictly more work (spans,
    # counters, one event per admission decision); anything past 2x
    # would mean the instrumentation left the hot path's no-op pattern.
    assert overhead < 1.0, (
        f"observability overhead {overhead:.1%} "
        f"({observed_seconds:.2f}s vs {dark_seconds:.2f}s dark)"
    )
