"""Tables 3-4: per-class success rates / QoS at rates 60, 100, 180.

Shape assertions from §5.2.3: the fat classes fare clearly worse than
the normal classes under contention, duration has no comparable impact
(fat-short ~ fat-long, norm-short ~ norm-long), *tradeoff* improves
every class's success rate at the contended rates while landing a lower
average QoS level than *basic*.
"""

from conftest import bench_config

from repro.sim import run_simulation


def _class_map(result):
    return {name: (success, qos) for name, success, qos, _n in result.metrics.class_rows}


def test_tables_3_4_class_breakdown(benchmark):
    rates = [60.0, 100.0, 180.0]

    def regenerate():
        table = {}
        for algorithm in ("basic", "tradeoff"):
            table[algorithm] = {
                rate: run_simulation(bench_config(algorithm, rate, horizon=900.0))
                for rate in rates
            }
        return table

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    for algorithm in ("basic", "tradeoff"):
        # requirement heterogeneity dominates duration heterogeneity
        rows = _class_map(table[algorithm][180.0])
        norm = (rows["norm.-short"][0] + rows["norm.-long"][0]) / 2
        fat = (rows["fat-short"][0] + rows["fat-long"][0]) / 2
        assert fat < norm, (algorithm, rows)
        assert abs(rows["fat-short"][0] - rows["fat-long"][0]) < 0.15
        assert abs(rows["norm.-short"][0] - rows["norm.-long"][0]) < 0.15
        # success degrades with the generation rate in every class
        for name in rows:
            assert _class_map(table[algorithm][60.0])[name][0] >= rows[name][0] - 0.02

    # Table 4 vs Table 3: tradeoff buys success with QoS, per class.
    for rate in (100.0, 180.0):
        basic_rows = _class_map(table["basic"][rate])
        tradeoff_rows = _class_map(table["tradeoff"][rate])
        for name in basic_rows:
            assert tradeoff_rows[name][0] >= basic_rows[name][0] - 0.03, (rate, name)
        assert (
            table["tradeoff"][rate].avg_qos_level < table["basic"][rate].avg_qos_level
        )

    benchmark.extra_info["table3"] = {
        f"{rate:g}": _class_map(table["basic"][rate]) for rate in rates
    }
    benchmark.extra_info["table4"] = {
        f"{rate:g}": _class_map(table["tradeoff"][rate]) for rate in rates
    }
