"""Figure 13 (a)+(b): compressed requirement diversity (3:1).

Shape assertions from §5.2.5: with per-resource requirement spreads
limited to 3:1 (means preserved), *basic* and *tradeoff* still beat the
contention-unaware *random*, but everyone's absolute success rate drops
relative to the fully diversified figure-10 tables -- fewer trade-off
options means fewer ways around a congested resource.
"""

from conftest import bench_config, run_all_algorithms

from repro.sim import run_simulation


def test_fig13_compressed_diversity(benchmark):
    rate = 200.0

    def regenerate():
        compressed = {
            algorithm: run_simulation(
                bench_config(algorithm, rate, diversity_ratio=3.0)
            )
            for algorithm in ("random", "basic", "tradeoff")
        }
        baseline = run_all_algorithms(rate)
        return compressed, baseline

    compressed, baseline = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    # The figure's critical claim: contention-awareness still wins under
    # compressed diversity (the paper's point is that the *ordering*
    # survives an unfavourable requirement structure).
    assert compressed["basic"].success_rate > compressed["random"].success_rate
    assert compressed["tradeoff"].success_rate >= compressed["basic"].success_rate - 0.02

    # QoS behaviour unchanged in character
    assert compressed["basic"].avg_qos_level > 2.7
    assert compressed["tradeoff"].avg_qos_level < compressed["basic"].avg_qos_level

    benchmark.extra_info["compressed_success"] = {
        a: r.success_rate for a, r in compressed.items()
    }
    benchmark.extra_info["baseline_success"] = {
        a: r.success_rate for a, r in baseline.items()
    }
