"""Batched planning hot-path benchmark.

Measures the claim behind :meth:`ReservationCoordinator.plan_batch`:
N concurrent arrivals against one availability snapshot should cost
one QRG pricing pass and one planner run per *distinct request group*,
not per session.  A batch of 32 arrivals concentrated on 4 groups is
planned once as a batch and once as 32 singleton calls against the
same shared snapshot; the batch must be >= 5x faster and produce
exactly the same plans.

The speedup is algorithmic (32 pricing+planning passes collapse to 4),
so unlike the parallel-sweep benchmark it holds on any CPU count.
"""

import time

from conftest import BENCH_SEED, write_bench_ledger
from repro.core import TradeoffPlanner
from repro.core.errors import ModelError
from repro.des import Environment, RandomStreams
from repro.runtime import SessionRequest
from repro.sim.environment import GridEnvironment

BATCH_SIZE = 32
GROUPS = 4


def _batch_requests(grid):
    """BATCH_SIZE arrivals spread over GROUPS distinct request groups."""
    pairs = []
    for service in sorted(grid.services):
        for domain in sorted(grid.topology.domains):
            try:
                grid.binding_for(service, domain)
            except ModelError:
                continue
            pairs.append((service, domain))
            break  # one domain per service keeps the groups distinct
    pairs = pairs[:GROUPS]
    assert len(pairs) == GROUPS
    return [
        SessionRequest(
            session_id=f"s{index:03d}",
            service_name=service,
            binding=grid.binding_for(service, domain),
            component_hosts=grid.component_hosts_for(service, domain),
        )
        for index, (service, domain) in enumerate(
            pairs[i % GROUPS] for i in range(BATCH_SIZE)
        )
    ]


def test_bench_batched_planning(benchmark):
    """32 singleton plan_batch calls vs one batched call, same snapshot."""
    grid = GridEnvironment(Environment(), RandomStreams(BENCH_SEED))
    coordinator = grid.coordinator
    planner = TradeoffPlanner()
    requests = _batch_requests(grid)

    # Phase 1 runs once, outside both timed regions: the benchmark
    # isolates the planning hot path (pricing + planner), not snapshot
    # collection.  Warm the skeleton cache the same way for both sides.
    shared = coordinator._collect_batch_snapshot(requests, None)
    coordinator.plan_batch(requests, planner, snapshot=shared)

    def plan_singletons():
        return [
            coordinator.plan_batch([request], planner, snapshot=shared)[0]
            for request in requests
        ]

    def plan_batched():
        return coordinator.plan_batch(requests, planner, snapshot=shared)

    def best_of(fn, repeats=5):
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    # Best-of-N on both sides: single-shot wall clocks on a shared box
    # are too noisy for a ratio assertion.
    sequential_seconds, sequential_plans = best_of(plan_singletons)
    batched_seconds, _ = best_of(plan_batched)
    batched_plans = benchmark.pedantic(plan_batched, rounds=5, iterations=1)

    # Identity first: amortisation must not change a single plan.
    assert len(batched_plans) == BATCH_SIZE
    for single, batched in zip(sequential_plans, batched_plans):
        assert (single is None) == (batched is None)
        if batched is not None:
            assert batched.assignments == single.assignments
            assert batched.psi == single.psi
            assert batched.numeric_level == single.numeric_level

    speedup = (
        sequential_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    )
    planned = sum(1 for plan in batched_plans if plan is not None)
    benchmark.extra_info["sequential_seconds"] = sequential_seconds
    benchmark.extra_info["batched_seconds"] = batched_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["batch_size"] = BATCH_SIZE
    benchmark.extra_info["groups"] = GROUPS
    write_bench_ledger(
        "batched_planning",
        {
            "sequential_seconds": sequential_seconds,
            "batched_seconds": batched_seconds,
            "speedup": speedup,
            "batch_size": BATCH_SIZE,
            "groups": GROUPS,
            "planned": planned,
        },
    )
    assert planned == BATCH_SIZE, "every arrival in the benchmark batch should plan"
    assert speedup >= 5.0, (
        f"batched planning only {speedup:.2f}x faster than singleton calls "
        f"({batched_seconds * 1e3:.1f}ms vs {sequential_seconds * 1e3:.1f}ms "
        f"for {BATCH_SIZE} arrivals over {GROUPS} groups)"
    )
