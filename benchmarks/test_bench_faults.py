"""Fault-tolerant protocol benchmarks.

Two claims are measured:

* the fault machinery is free when unused -- a zero-fault run through
  :class:`~repro.faults.FaultTolerantCoordinator` produces *identical*
  metrics to the plain coordinator (asserted) at comparable wall time
  (recorded; the structural gate ignores timing leaves);
* under a heavy composite fault level (f=0.15: drops + crashes + stale
  reports) the protocol degrades gracefully rather than collapsing --
  success stays above half the fault-free rate, every injected fault is
  accounted, and no capacity leaks (asserted inside the run itself).
"""

from conftest import bench_config, write_bench_ledger
from repro.faults import FaultConfig
from repro.sim import run_simulation

BENCH_RATE = 120.0
FAULT_LEVEL = 0.15


def test_bench_fault_tolerance(benchmark):
    plain = run_simulation(bench_config("tradeoff", BENCH_RATE))
    zero = run_simulation(bench_config("tradeoff", BENCH_RATE, faults=FaultConfig()))
    # The byte-identity contract, at benchmark scale.
    assert zero.metrics == plain.metrics
    assert zero.paths == plain.paths
    assert zero.fault_stats == {"orphans_reaped": 0}

    faulty_config = bench_config(
        "tradeoff",
        BENCH_RATE,
        faults=FaultConfig(
            drop_rate=FAULT_LEVEL, crash_rate=FAULT_LEVEL, stale_rate=FAULT_LEVEL
        ),
    )
    faulty = benchmark.pedantic(
        lambda: run_simulation(faulty_config), rounds=1, iterations=1
    )

    injected = sum(
        count for kind, count in faulty.fault_stats.items() if kind != "orphans_reaped"
    )
    survival = faulty.success_rate / plain.success_rate
    benchmark.extra_info["injected"] = injected
    benchmark.extra_info["survival"] = survival
    write_bench_ledger(
        "fault_tolerance",
        {
            "attempts": faulty.metrics.attempts,
            "plain_successes": plain.metrics.successes,
            "zero_fault_successes": zero.metrics.successes,
            "faulty_successes": faulty.metrics.successes,
            "injected_faults": injected,
            "orphans_reaped": faulty.fault_stats.get("orphans_reaped", 0),
            "survival_ratio": survival,
            "plain_wall_seconds": plain.wall_seconds,
            "zero_fault_wall_seconds": zero.wall_seconds,
            "faulty_wall_seconds": faulty.wall_seconds,
        },
    )
    assert injected > 0
    assert survival >= 0.5, (
        f"success collapsed under f={FAULT_LEVEL}: "
        f"{faulty.success_rate:.3f} vs fault-free {plain.success_rate:.3f}"
    )
