"""Scalability benchmark: the framework beyond figure 9's size.

The paper targets Grid meta-computing environments (§6); this bench
grows the evaluation grid (hosts x domains) at proportional offered
load and records session throughput and success, exercising planner +
brokers + DES at scale.
"""

import pytest

from repro.core import BasicPlanner
from repro.des import Environment, RandomStreams
from repro.runtime.session import ServiceSession
from repro.sim.scale import build_scaled_grid, scaled_exclusions, scaled_workload_spec
from repro.sim.workload import WorkloadGenerator


def run_scaled(num_hosts: int, horizon: float = 300.0):
    env = Environment()
    streams = RandomStreams(2)
    grid = build_scaled_grid(env, streams, num_hosts=num_hosts, domains_per_host=2)
    # offered load proportional to environment size
    spec = scaled_workload_spec(
        num_hosts, 2, rate_per_60tu=40.0 * num_hosts, horizon=horizon
    )
    generator = WorkloadGenerator(
        spec, streams, excluded_service=scaled_exclusions(num_hosts, 2)
    )
    planner = BasicPlanner()
    outcomes = []

    def arrivals():
        for request in generator.generate():
            if request.arrival_time > env.now:
                yield env.timeout(request.arrival_time - env.now)
            session = ServiceSession(
                env, grid.coordinator, request.session_id, request.service,
                grid.binding_for(request.service, request.domain),
                planner, request.duration,
                demand_scale=request.demand_scale,
                on_finish=outcomes.append,
            )
            env.process(session.run())

    env.process(arrivals())
    env.run()
    grid.registry.assert_quiescent()
    return outcomes


@pytest.mark.parametrize("num_hosts", [4, 8, 16])
def test_bench_scaled_grid(benchmark, num_hosts):
    outcomes = benchmark.pedantic(
        lambda: run_scaled(num_hosts), rounds=1, iterations=1
    )
    assert len(outcomes) > 50 * num_hosts
    success_rate = sum(o.success for o in outcomes) / len(outcomes)
    assert success_rate > 0.4
    benchmark.extra_info["sessions"] = len(outcomes)
    benchmark.extra_info["success_rate"] = success_rate
