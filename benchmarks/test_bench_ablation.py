"""Design-choice ablations flagged in DESIGN.md.

* contention-index definition (paper footnote 2): the ratio definition
  vs headroom and log variants -- all contention-aware, all should beat
  random; their relative order is recorded, not asserted;
* the §4.1.2 Dijkstra tie-breaking rule on vs off;
* the tradeoff averaging window T (paper uses T=3).
"""

from conftest import bench_config

from repro.sim import run_simulation


def test_bench_contention_index_ablation(benchmark):
    rate = 200.0

    def study():
        out = {"random": run_simulation(bench_config("random", rate))}
        for index in ("ratio", "headroom", "log"):
            out[index] = run_simulation(
                bench_config("basic", rate, contention_index=index)
            )
        return out

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    success = {name: r.success_rate for name, r in results.items()}
    for index in ("ratio", "headroom", "log"):
        assert success[index] > success["random"], (index, success)
    benchmark.extra_info["success"] = success


def test_bench_tie_break_ablation(benchmark):
    rate = 200.0

    def study():
        return {
            "with-tie-break": run_simulation(bench_config("basic", rate, tie_break=True)),
            "without-tie-break": run_simulation(bench_config("basic", rate, tie_break=False)),
        }

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    success = {name: r.success_rate for name, r in results.items()}
    # the rule is a secondary refinement: it must not hurt materially
    assert success["with-tie-break"] >= success["without-tie-break"] - 0.03
    benchmark.extra_info["success"] = success


def test_bench_trend_window_ablation(benchmark):
    rate = 200.0

    def study():
        return {
            f"T={window:g}": run_simulation(
                bench_config("tradeoff", rate, trend_window=window)
            )
            for window in (1.0, 3.0, 10.0)
        }

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    summary = {
        name: (r.success_rate, r.avg_qos_level) for name, r in results.items()
    }
    # all windows keep the tradeoff character: QoS sacrificed below 2.9
    for name, (success, qos) in summary.items():
        assert qos < 2.9, (name, qos)
    benchmark.extra_info["summary"] = summary
