"""Figure 12 (a)+(b): impact of stale availability observations.

Shape assertions from §5.2.4: staleness degrades both algorithms
mildly; the degraded success rates remain well above contention-unaware
*random* with accurate observations; degraded *tradeoff* stays at or
above degraded *basic*.
"""

from conftest import bench_config

from repro.sim import run_simulation


def test_fig12_staleness_impact(benchmark):
    rate = 200.0
    horizon = 1200.0

    def regenerate():
        out = {}
        out["random-accurate"] = run_simulation(bench_config("random", rate, horizon=horizon))
        for algorithm in ("basic", "tradeoff"):
            out[f"{algorithm}-accurate"] = run_simulation(
                bench_config(algorithm, rate, horizon=horizon)
            )
            for stale in (2.0, 8.0):
                out[f"{algorithm}-E{stale:g}"] = run_simulation(
                    bench_config(algorithm, rate, horizon=horizon, staleness=stale)
                )
        return out

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    success = {name: result.success_rate for name, result in results.items()}

    for algorithm in ("basic", "tradeoff"):
        accurate = success[f"{algorithm}-accurate"]
        for stale in (2.0, 8.0):
            degraded = success[f"{algorithm}-E{stale:g}"]
            # minor-to-moderate degradation (small positive noise allowed
            # at bench scale -- stale data occasionally sheds load early)
            assert degraded <= accurate + 0.03, (algorithm, stale)
            assert degraded > accurate - 0.20, (algorithm, stale)
            # ... but still clearly above accurate random (paper's claim)
            assert degraded > success["random-accurate"], (algorithm, stale)
        # stale sessions actually raced: admission failures occurred
        stale_run = results[f"{algorithm}-E8"]
        assert stale_run.metrics.failure_reasons.get("admission_failed", 0) > 0

    # figure 12(b) vs (a): degraded tradeoff stays above degraded basic
    assert success["tradeoff-E8"] >= success["basic-E8"] - 0.02

    benchmark.extra_info["success"] = success
