"""Figure 11 (a)+(b): success rate and average QoS vs generation rate.

Reduced-scale regeneration of the paper's headline figure.  The shape
assertions encode what figure 11 shows: *tradeoff >= basic > random* in
overall success rate at every contended rate, *basic* and *random*
staying near the top QoS level, and *tradeoff* sacrificing QoS.
"""

from conftest import BENCH_HORIZON, run_all_algorithms


def test_fig11_success_and_qos_series(benchmark):
    rates = [80.0, 160.0, 240.0]

    def regenerate():
        return {rate: run_all_algorithms(rate) for rate in rates}

    by_rate = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    success = {
        algorithm: [by_rate[rate][algorithm].success_rate for rate in rates]
        for algorithm in ("random", "basic", "tradeoff")
    }
    qos = {
        algorithm: [by_rate[rate][algorithm].avg_qos_level for rate in rates]
        for algorithm in ("random", "basic", "tradeoff")
    }

    # Figure 11(a): contention-awareness wins, the tradeoff wins more.
    for i, rate in enumerate(rates[1:], start=1):  # skip the uncontended point
        assert success["basic"][i] > success["random"][i], rate
        assert success["tradeoff"][i] >= success["basic"][i] - 0.01, rate
    # success degrades with load for every algorithm
    for algorithm in success:
        assert success[algorithm][0] >= success[algorithm][-1]

    # Figure 11(b): basic/random greedy on QoS, tradeoff trades it away.
    for i in range(len(rates)):
        assert qos["basic"][i] > 2.8
        assert qos["random"][i] > 2.8
        assert qos["tradeoff"][i] < qos["basic"][i]

    benchmark.extra_info["rates"] = rates
    benchmark.extra_info["success"] = success
    benchmark.extra_info["avg_qos"] = qos
    benchmark.extra_info["horizon"] = BENCH_HORIZON
