"""Tables 1-2: selected end-to-end reservation paths at 80 ssn/60TU.

Asserts the tables' qualitative content: both algorithms spread their
selections over many of the structurally possible paths (§5.2.2 "the
paths selected ... have covered most of the existing paths"), *basic*
concentrates on level-3 sinks while *tradeoff* shifts real mass to
level-2 sinks, and every resource in the environment shows up as a plan
bottleneck at least once.
"""

from conftest import bench_config

from repro.sim import run_simulation


def test_tables_1_2_path_census(benchmark):
    def regenerate():
        results = {}
        for algorithm in ("basic", "tradeoff"):
            results[algorithm] = run_simulation(
                bench_config(algorithm, rate=80.0, horizon=1200.0)
            )
        return results

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    top_sink = {"A": ("Qp",), "B": ("Ql",)}
    for family in ("A", "B"):
        basic_rows = results["basic"].paths.percentages(family)
        tradeoff_rows = results["tradeoff"].paths.percentages(family)
        # §5.2.2: selections cover many existing paths
        assert len(basic_rows) >= 4, (family, basic_rows)
        assert len(tradeoff_rows) >= 6, (family, tradeoff_rows)
        # basic is greedy: almost all selections end at the top sink
        basic_top = sum(p for sig, p in basic_rows if sig.endswith(top_sink[family]))
        assert basic_top > 85.0, (family, basic_rows)
        # tradeoff moves mass below the top sink
        tradeoff_top = sum(p for sig, p in tradeoff_rows if sig.endswith(top_sink[family]))
        assert tradeoff_top < basic_top - 2.0, (family, tradeoff_rows)

    # nearly every resource became a bottleneck even at 1/9th of the
    # paper's horizon; the full-length reproduction reaches all 18
    # (see EXPERIMENTS.md).
    bottlenecks = set(results["basic"].metrics.bottleneck_counts)
    bottlenecks |= set(results["tradeoff"].metrics.bottleneck_counts)
    assert len(bottlenecks) >= 15, sorted(bottlenecks)

    benchmark.extra_info["table1_basic"] = results["basic"].paths.percentages("A")[:8]
    benchmark.extra_info["table1_tradeoff"] = results["tradeoff"].paths.percentages("A")[:8]
    benchmark.extra_info["table2_basic"] = results["basic"].paths.percentages("B")[:8]
    benchmark.extra_info["table2_tradeoff"] = results["tradeoff"].paths.percentages("B")[:8]
