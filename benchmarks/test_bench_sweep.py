"""Parallel sweep runner and QRG skeleton cache benchmarks.

Two claims are measured:

* a parallel ``rate_sweep`` (3 algorithms x 4 rates) beats the serial
  runner on wall time while producing byte-identical metrics -- the
  speedup assertion (>= 2x on 4 workers) only fires on hosts with at
  least 4 CPUs, but the identity assertion always runs;
* a warm :class:`~repro.core.qrg.QRGSkeletonCache` makes QRG
  construction >= 3x faster than the cold (skeleton-rebuilding) path,
  since only per-snapshot feasibility filtering + psi pricing remain.
"""

import os
import time

import numpy as np

from conftest import BENCH_SEED, write_bench_ledger
from repro.core.qrg import QRGSkeletonCache, build_qrg
from repro.core.synthetic import random_availability, synthetic_chain
from repro.sim import (
    ParallelSweepRunner,
    SerialSweepRunner,
    SimulationConfig,
    WorkloadSpec,
    rate_sweep,
)
from repro.sim.experiment import _available_cpus

SWEEP_ALGORITHMS = ("basic", "tradeoff", "random")
SWEEP_RATES = [60.0, 120.0, 180.0, 240.0]
SWEEP_WORKERS = 4
#: Schedulable CPUs (cgroup/affinity aware), not the host's core count.
AVAILABLE_CPUS = _available_cpus()
#: The >= 2x wall-time claim needs real parallel hardware.
ENOUGH_CPUS = AVAILABLE_CPUS >= SWEEP_WORKERS


def _sweep_base() -> SimulationConfig:
    return SimulationConfig(seed=BENCH_SEED, workload=WorkloadSpec(horizon=400.0))


def test_bench_parallel_rate_sweep(benchmark):
    """Serial vs 4-worker parallel wall time for 3 algorithms x 4 rates."""
    base = _sweep_base()
    runner = ParallelSweepRunner(max_workers=SWEEP_WORKERS)
    sweep_points = len(SWEEP_ALGORITHMS) * len(SWEEP_RATES)
    effective_workers = runner.effective_workers(sweep_points)

    start = time.perf_counter()
    serial = rate_sweep(SWEEP_ALGORITHMS, SWEEP_RATES, base=base, runner=SerialSweepRunner())
    serial_seconds = time.perf_counter() - start

    def parallel_once():
        return rate_sweep(SWEEP_ALGORITHMS, SWEEP_RATES, base=base, runner=runner)

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_once, rounds=1, iterations=1)
    parallel_seconds = time.perf_counter() - start

    # Identity first: parallel execution must not change a single number.
    for algorithm in SWEEP_ALGORITHMS:
        for s, p in zip(serial[algorithm], parallel[algorithm]):
            assert p.metrics == s.metrics
            assert p.paths == s.paths

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["parallel_seconds"] = parallel_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["workers"] = SWEEP_WORKERS
    benchmark.extra_info["effective_workers"] = effective_workers
    benchmark.extra_info["cpus"] = AVAILABLE_CPUS
    write_bench_ledger(
        "parallel_rate_sweep",
        {
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "workers": SWEEP_WORKERS,
            "sweep_points": sweep_points,
            "successes": sum(
                res.metrics.successes
                for results in parallel.values()
                for res in results
            ),
        },
        # Strings on purpose: runner-dependent facts stay out of the
        # numeric diff (cpus/effective workers differ across machines).
        environment={
            "cpus": str(AVAILABLE_CPUS),
            "effective_workers": str(effective_workers),
        },
    )
    # Universal floor: clamping workers to schedulable CPUs means the
    # parallel runner must never lose badly to serial again (the
    # regression this guards against showed 0.68x on oversubscribed
    # boxes).  The margin absorbs single-run wall-clock noise.
    assert speedup >= 0.85, (
        f"parallel sweep regressed below serial: {speedup:.2f}x "
        f"({parallel_seconds:.2f}s vs {serial_seconds:.2f}s with "
        f"{effective_workers} workers on {AVAILABLE_CPUS} CPUs)"
    )
    if ENOUGH_CPUS:
        assert speedup >= 2.0, (
            f"parallel sweep only {speedup:.2f}x faster than serial "
            f"({parallel_seconds:.2f}s vs {serial_seconds:.2f}s on "
            f"{AVAILABLE_CPUS} CPUs)"
        )


def test_bench_qrg_skeleton_cache(benchmark):
    """Cold (skeleton rebuilt) vs warm (skeleton cached) QRG construction."""
    rng = np.random.default_rng(BENCH_SEED)
    service, binding, snapshot = synthetic_chain(8, 16, rng=rng)
    snapshots = [random_availability(snapshot, rng, low=5.0, high=90.0) for _ in range(20)]
    cache = QRGSkeletonCache()

    def build_all(*, cached: bool) -> float:
        start = time.perf_counter()
        for snap in snapshots:
            if cached:
                build_qrg(service, binding, snap, skeleton_cache=cache)
            else:
                build_qrg(service, binding, snap)
        return time.perf_counter() - start

    cold_seconds = build_all(cached=False)
    build_qrg(service, binding, snapshots[0], skeleton_cache=cache)  # prime
    warm_seconds = benchmark.pedantic(
        lambda: build_all(cached=True), rounds=1, iterations=1
    )

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    benchmark.extra_info["cold_seconds"] = cold_seconds
    benchmark.extra_info["warm_seconds"] = warm_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cache_stats"] = cache.stats()
    write_bench_ledger(
        "qrg_skeleton_cache",
        {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "snapshots": len(snapshots),
            **{f"cache_{key}": value for key, value in cache.stats().items()},
        },
    )
    assert cache.stats()["misses"] == 1
    assert speedup >= 3.0, (
        f"warm QRG build only {speedup:.2f}x faster than cold "
        f"({warm_seconds * 1e3:.1f}ms vs {cold_seconds * 1e3:.1f}ms)"
    )
