"""Benchmarks for the advance-reservation extension (timeline brokers)."""

import numpy as np

from repro.brokers import AdvanceRegistry, TimelineBroker
from repro.core.errors import AdmissionError


def test_bench_timeline_booking_churn(benchmark):
    """Book/cancel 500 overlapping windows on one timeline."""
    rng = np.random.default_rng(0)
    windows = [
        (float(start), float(start + span), float(amount))
        for start, span, amount in zip(
            rng.uniform(0, 1000, 500), rng.uniform(1, 50, 500), rng.uniform(1, 5, 500)
        )
    ]

    def churn():
        broker = TimelineBroker("cpu:bench", 10_000.0)
        held = []
        for start, end, amount in windows:
            held.append(broker.reserve(amount, "s", start, end))
        for reservation in held:
            broker.cancel(reservation)
        return broker.outstanding()

    assert benchmark(churn) == 0


def test_bench_window_queries(benchmark):
    """available_over() on a timeline with ~1000 breakpoints."""
    rng = np.random.default_rng(1)
    broker = TimelineBroker("cpu:bench", 100_000.0)
    for start, span, amount in zip(
        rng.uniform(0, 1000, 500), rng.uniform(1, 50, 500), rng.uniform(1, 5, 500)
    ):
        broker.reserve(float(amount), "s", float(start), float(start + span))
    probes = rng.uniform(0, 900, 200)

    def query():
        total = 0.0
        for start in probes:
            total += broker.available_over(float(start), float(start) + 25.0)
        return total

    benchmark(query)


def test_bench_admission_saturation(benchmark):
    """Admission control near saturation: mix of accepts and rejects."""
    rng = np.random.default_rng(2)
    windows = [
        (float(start), float(start + span), float(amount))
        for start, span, amount in zip(
            rng.uniform(0, 200, 400), rng.uniform(5, 40, 400), rng.uniform(5, 30, 400)
        )
    ]

    def saturate():
        broker = TimelineBroker("cpu:bench", 300.0)
        accepted = rejected = 0
        for start, end, amount in windows:
            try:
                broker.reserve(amount, "s", start, end)
                accepted += 1
            except AdmissionError:
                rejected += 1
        return accepted, rejected

    accepted, rejected = benchmark(saturate)
    assert accepted > 0 and rejected > 0
