"""DES substrate benchmarks: event throughput and broker operations.

The evaluation's biggest runs schedule hundreds of thousands of events
(43k sessions x arrival/departure/bookkeeping); these benchmarks keep
the kernel's cost visible.
"""

import pytest

from repro.brokers import LinkBandwidthBroker, LocalResourceBroker, PathBroker
from repro.des import Container, Environment


def test_bench_timeout_churn(benchmark):
    """Schedule-and-run 10k timeouts through the event loop."""

    def churn():
        env = Environment()

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)

        for _ in range(10):
            env.process(ticker(env, 1000))
        env.run()
        return env.now

    now = benchmark(churn)
    assert now == 1000.0


def test_bench_process_spawning(benchmark):
    """Spawn 5k short-lived processes (one session each)."""

    def spawn_wave():
        env = Environment()

        def session(env):
            yield env.timeout(5.0)
            return 1

        def arrivals(env):
            for _ in range(5000):
                env.process(session(env))
                yield env.timeout(0.01)

        env.process(arrivals(env))
        env.run()
        return env.now

    benchmark(spawn_wave)


def test_bench_container_contention(benchmark):
    """Producer/consumer pairs hammering one Container."""

    def run_pool():
        env = Environment()
        pool = Container(env, capacity=1000, init=500)

        def producer(env):
            for _ in range(2000):
                yield pool.put(3)
                yield env.timeout(0.5)

        def consumer(env):
            for _ in range(2000):
                yield pool.get(3)
                yield env.timeout(0.5)

        for _ in range(3):
            env.process(producer(env))
            env.process(consumer(env))
        env.run()
        return pool.level

    benchmark(run_pool)


def test_bench_broker_reserve_release(benchmark):
    """Raw admission-control throughput of a local broker."""
    broker = LocalResourceBroker("H1", "cpu", 1e9)

    def cycle():
        held = [broker.reserve(10.0, "s") for _ in range(200)]
        for reservation in held:
            broker.release(reservation)

    benchmark(cycle)
    assert broker.outstanding() == 0


def test_bench_path_broker_transaction(benchmark):
    """Two-level reservation across a 3-hop route."""
    links = [LinkBandwidthBroker(f"L{i}", f"N{i}", f"N{i+1}", 1e9) for i in range(3)]
    path = PathBroker("net:bench", links)

    def cycle():
        held = [path.reserve(5.0, "s") for _ in range(100)]
        for reservation in held:
            path.release(reservation)

    benchmark(cycle)
    assert all(link.outstanding() == 0 for link in links)
