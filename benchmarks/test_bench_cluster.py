"""Cluster scale benchmark: 1-shard vs 3-shard admission throughput.

Boots real ``repro-serve`` shard daemons as subprocesses (each owning
its ShardMap slice of the same-seed grid), fronts them with an
in-process :class:`~repro.cluster.router.ClusterDaemon`, and replays
the same seeded open-loop workload through the router in both shapes:

* **one shard** -- the router forwards verbatim (the byte-identity
  path), so this measures the cost of the extra network hop;
* **three shards** -- every admission plans against a merged
  availability snapshot and commits two-phase across the involved
  shards, so this measures the full cross-shard protocol.

The committed ``BENCH_cluster_scale`` ledger records both shapes'
throughput and latency percentiles (timing-keyed, gated per runner
fingerprint) plus the deterministic session count (structural).  The
wall ratio documents the 2PC overhead; it is not gated structurally.
"""

import asyncio
import os
import re
import subprocess
import sys
from pathlib import Path

from conftest import write_bench_ledger
from repro.cluster import ClusterConfig, ClusterDaemon
from repro.service.loadgen import LoadGenConfig, run_load
from repro.sim.workload import WorkloadSpec

REPO_ROOT = Path(__file__).resolve().parents[1]
SEED = 11
LOAD = LoadGenConfig(
    workload=WorkloadSpec(rate_per_60tu=900.0, horizon=8.0),
    seed=7,
    time_scale=0.005,
    max_hold_seconds=0.2,
)
_BOOT = re.compile(r"repro-serve: listening on [^:]+:(\d+) ")


def _spawn_shard(index: int, count: int) -> subprocess.Popen:
    argv = [
        sys.executable, "-m", "repro.service.cli",
        "--port", "0", "--seed", str(SEED),
    ]
    if count > 1:
        argv += ["--shard-index", str(index), "--shard-count", str(count)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _port_of(process: subprocess.Popen) -> int:
    line = process.stdout.readline()
    match = _BOOT.search(line)
    assert match, f"no boot line from shard daemon: {line!r}"
    return int(match.group(1))


async def _run_cluster(shard_count: int):
    processes = [_spawn_shard(i, shard_count) for i in range(shard_count)]
    try:
        addresses = tuple(("127.0.0.1", _port_of(p)) for p in processes)
        router = ClusterDaemon(
            ClusterConfig(shards=addresses, port=0, seed=SEED)
        )
        await router.start()
        try:
            return await run_load("127.0.0.1", router.port, LOAD)
        finally:
            await router.shutdown()
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            process.wait(timeout=10)


def test_bench_cluster_scale(benchmark):
    """One seeded burst through a 1-shard and a 3-shard cluster."""

    def run_both():
        one = asyncio.run(_run_cluster(1))
        three = asyncio.run(_run_cluster(3))
        return one, three

    one, three = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert one.errors == 0
    assert three.errors == 0
    # The workload is seeded, so both shapes see the identical arrivals.
    assert one.sessions == three.sessions
    assert one.admitted + one.rejected == one.sessions
    assert three.admitted + three.rejected == three.sessions
    assert one.throughput > 0 and three.throughput > 0

    headline = {
        "sessions": one.sessions,
        "one_shard_wall_seconds": one.wall_seconds,
        "one_shard_throughput_per_wall_second": one.throughput,
        "one_shard_latency_p50_ms": one.percentile_ms(50),
        "one_shard_latency_p99_ms": one.percentile_ms(99),
        "three_shard_wall_seconds": three.wall_seconds,
        "three_shard_throughput_per_wall_second": three.throughput,
        "three_shard_latency_p50_ms": three.percentile_ms(50),
        "three_shard_latency_p99_ms": three.percentile_ms(99),
        "cross_shard_overhead_wall_ratio": (
            three.wall_seconds / one.wall_seconds if one.wall_seconds else 0.0
        ),
    }
    environment = {
        "one_shard_admitted": str(one.admitted),
        "one_shard_rejected": str(one.rejected),
        "three_shard_admitted": str(three.admitted),
        "three_shard_rejected": str(three.rejected),
        "one_shard_connection_reuses": str(one.connection_reuses),
        "three_shard_connection_reuses": str(three.connection_reuses),
    }
    benchmark.extra_info.update(headline)
    benchmark.extra_info.update(environment)
    write_bench_ledger("cluster_scale", headline, environment=environment)
