"""Planner micro-benchmarks and the §4.2 complexity claim.

The paper argues the runtime algorithm is O(K * Q^2) and therefore
cheap enough for online use.  These benchmarks time the three phases
(QRG construction, minimax Dijkstra, full plan assembly) at the paper's
"practical" sizes (K < 10, tens of levels) and check the empirical
scaling exponents.
"""

import time

import numpy as np
import pytest

from conftest import write_bench_ledger
from repro.core import BasicPlanner, build_qrg, minimax_dijkstra
from repro.core.synthetic import synthetic_chain


@pytest.mark.parametrize("k,q", [(3, 4), (5, 8), (8, 16)])
def test_bench_qrg_construction(benchmark, k, q):
    service, binding, snapshot = synthetic_chain(k, q, rng=np.random.default_rng(0))
    qrg = benchmark(lambda: build_qrg(service, binding, snapshot))
    assert qrg.count_nodes() > 0
    benchmark.extra_info["nodes"] = qrg.count_nodes()
    benchmark.extra_info["edges"] = qrg.count_edges()


@pytest.mark.parametrize("k,q", [(3, 4), (5, 8), (8, 16)])
def test_bench_minimax_dijkstra(benchmark, k, q):
    service, binding, snapshot = synthetic_chain(k, q, rng=np.random.default_rng(0))
    qrg = build_qrg(service, binding, snapshot)
    result = benchmark(lambda: minimax_dijkstra(qrg.source_node, qrg.successors))
    assert any(result.reachable(sink) for sink in qrg.sink_nodes())


@pytest.mark.parametrize("k,q", [(3, 8), (8, 8)])
def test_bench_full_plan(benchmark, k, q):
    service, binding, snapshot = synthetic_chain(k, q, rng=np.random.default_rng(0))
    planner = BasicPlanner()

    def plan_once():
        qrg = build_qrg(service, binding, snapshot)
        return planner.plan(qrg)

    plan = benchmark(plan_once)
    assert plan is not None
    benchmark.extra_info["psi"] = plan.psi


def test_bench_complexity_scaling(benchmark):
    """Empirical exponents of planning cost in K and Q (claim: 1 and 2)."""

    def measure():
        rows = []
        planner = BasicPlanner()
        for k in (2, 4, 8, 16):
            for q in (2, 4, 8, 16):
                service, binding, snapshot = synthetic_chain(
                    k, q, rng=np.random.default_rng(1)
                )
                qrg = build_qrg(service, binding, snapshot)
                start = time.perf_counter()
                for _ in range(3):
                    planner.plan(qrg)
                rows.append((k, q, (time.perf_counter() - start) / 3))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    data = np.array(rows)
    design = np.column_stack([np.log(data[:, 0]), np.log(data[:, 1]), np.ones(len(rows))])
    coeffs, *_ = np.linalg.lstsq(design, np.log(data[:, 2]), rcond=None)
    k_exponent, q_exponent = float(coeffs[0]), float(coeffs[1])
    # O(K*Q^2) is an upper bound: near-linear in K, superlinear but at
    # most quadratic in Q (Python constant factors depress the measured
    # Q exponent at small sizes).
    assert 0.7 < k_exponent < 1.7, k_exponent
    assert 1.0 < q_exponent <= 2.6, q_exponent
    benchmark.extra_info["k_exponent"] = k_exponent
    benchmark.extra_info["q_exponent"] = q_exponent
    write_bench_ledger(
        "complexity_scaling",
        {
            "k_exponent": k_exponent,
            "q_exponent": q_exponent,
            "grid_points": len(rows),
        },
    )
