"""Service daemon load benchmark: open-loop admissions over real sockets.

Boots a :class:`~repro.service.daemon.ReservationDaemon` on an ephemeral
port and replays a seeded §5.1 workload against it with the open-loop
generator -- every arrival is its own concurrent HTTP client, so the
run's peak in-flight count is well past the 16-concurrent-client floor
the acceptance criteria pin.  The committed ``BENCH_service_load``
ledger records throughput and admission-latency percentiles (timing-
keyed, gated per runner fingerprint) plus the deterministic session
count (structural).

Admission/rejection tallies depend on completion interleaving (a torn-
down session frees capacity for whoever arrives next), so they document
the run as environment strings instead of entering the numeric diff.
"""

import asyncio

from conftest import write_bench_ledger
from repro.service import DaemonConfig, ReservationDaemon
from repro.service.loadgen import LoadGenConfig, run_load
from repro.sim.workload import WorkloadSpec

DAEMON_SEED = 11
LOAD_SEED = 7
#: ~188 arrivals squeezed into ~1 wall second: mean spacing 0.25 ms
#: against ~1 ms serialized admissions guarantees deep concurrency.
LOAD = LoadGenConfig(
    workload=WorkloadSpec(rate_per_60tu=1200.0, horizon=10.0),
    seed=LOAD_SEED,
    time_scale=0.005,
    max_hold_seconds=0.2,
)
MIN_CONCURRENT_CLIENTS = 16


async def _run_once():
    daemon = ReservationDaemon(DaemonConfig(port=0, seed=DAEMON_SEED))
    await daemon.start()
    try:
        return await run_load("127.0.0.1", daemon.port, LOAD)
    finally:
        await daemon.shutdown()


def test_bench_service_load(benchmark):
    """Throughput + admission latency under deep open-loop concurrency."""
    report = benchmark.pedantic(
        lambda: asyncio.run(_run_once()), rounds=1, iterations=1
    )

    assert report.errors == 0
    assert report.peak_inflight >= MIN_CONCURRENT_CLIENTS
    assert report.admitted + report.rejected == report.sessions
    assert report.torn_down == report.admitted
    assert report.throughput > 0

    benchmark.extra_info.update(report.headline())
    benchmark.extra_info.update(report.environment())
    write_bench_ledger(
        "service_load",
        report.headline(),
        environment=report.environment(),
    )
