"""DAG planning benchmarks + the §4.3.2 heuristic-quality ablation.

Times the two-pass heuristic against the exhaustive optimum and records
how often the heuristic is optimal (the paper acknowledges it may not
be -- limitation 2 -- but gives no numbers; this bench supplies them).
"""

import numpy as np
import pytest

from repro.core import ExhaustiveDagPlanner, TwoPassDagPlanner, build_qrg
from repro.core.synthetic import random_availability, synthetic_diamond_dag


@pytest.mark.parametrize("branches,q", [(2, 2), (2, 3), (3, 2)])
def test_bench_two_pass_heuristic(benchmark, branches, q):
    service, binding, snapshot = synthetic_diamond_dag(
        branches, q, rng=np.random.default_rng(0)
    )
    qrg = build_qrg(service, binding, snapshot)
    planner = TwoPassDagPlanner()
    plan = benchmark(lambda: planner.plan(qrg))
    assert plan is not None


@pytest.mark.parametrize("branches,q", [(2, 2), (2, 3), (3, 2)])
def test_bench_exhaustive_reference(benchmark, branches, q):
    service, binding, snapshot = synthetic_diamond_dag(
        branches, q, rng=np.random.default_rng(0)
    )
    qrg = build_qrg(service, binding, snapshot)
    planner = ExhaustiveDagPlanner()
    plan = benchmark(lambda: planner.plan(qrg))
    assert plan is not None


def test_bench_heuristic_quality_ablation(benchmark):
    """Optimality statistics of the heuristic over 120 random diamonds."""

    def study():
        rng = np.random.default_rng(3)
        heuristic, exact = TwoPassDagPlanner(), ExhaustiveDagPlanner()
        stats = {"trials": 0, "feasible": 0, "optimal_sink": 0, "optimal_psi": 0}
        gaps = []
        for _ in range(120):
            branches = int(rng.integers(2, 4))
            q = int(rng.integers(2, 4))
            service, binding, snapshot = synthetic_diamond_dag(branches, q, rng=rng)
            snapshot = random_availability(snapshot, rng, low=4.0, high=60.0)
            qrg = build_qrg(service, binding, snapshot)
            exact_plan = exact.plan(qrg)
            if exact_plan is None:
                continue
            stats["trials"] += 1
            heuristic_plan = heuristic.plan(qrg)
            if heuristic_plan is None:
                continue
            stats["feasible"] += 1
            if heuristic_plan.end_to_end_label == exact_plan.end_to_end_label:
                stats["optimal_sink"] += 1
                if abs(heuristic_plan.psi - exact_plan.psi) < 1e-9:
                    stats["optimal_psi"] += 1
                if exact_plan.psi > 0:
                    gaps.append(heuristic_plan.psi / exact_plan.psi)
        stats["mean_psi_ratio"] = float(np.mean(gaps)) if gaps else 1.0
        stats["max_psi_ratio"] = float(np.max(gaps)) if gaps else 1.0
        return stats

    stats = benchmark.pedantic(study, rounds=1, iterations=1)
    assert stats["feasible"] / stats["trials"] > 0.9
    assert stats["optimal_sink"] / stats["feasible"] > 0.8
    assert stats["mean_psi_ratio"] < 1.25
    benchmark.extra_info.update(stats)
