"""Telemetry overhead benchmark: scraping must not tax the daemon.

Replays the seeded ``BENCH_service_load`` burst several times
back-to-back against a reservation daemon -- once bare, once with a
:class:`~repro.obs.telemetry.TelemetryScraper` polling ``/healthz`` +
``/metrics`` at 1 Hz for the whole run -- interleaved over several
rounds, and gates on the *CPU* cost per admitted session rising less
than 2%.  Daemon, load generator and scraper all share one process
here, so ``time.process_time`` captures exactly the work the telemetry
adds while staying immune to background load on the runner (which
wall-clock throughput is not: neighbours can swing it tens of percent
either way).  Chaining bursts makes each round span multiple scrape
intervals, so the measured cost really is the 1 Hz steady-state tax
rather than one whole scrape amortized over a sub-second burst;
best-of-rounds drops warmup/GC outliers.  The committed
``BENCH_telemetry_overhead`` ledger records the gated CPU costs and
the wall throughputs (timing-keyed, compared per runner fingerprint)
plus the structural facts: session counts identical across modes, at
least one scrape ingested, zero scrape failures.
"""

import asyncio
import gc
import time

from conftest import write_bench_ledger
from repro.obs.telemetry import TelemetryScraper, TimeSeriesStore
from repro.service import DaemonConfig, ReservationDaemon
from repro.service.loadgen import LoadGenConfig, run_load
from repro.sim.workload import WorkloadSpec

DAEMON_SEED = 11
LOAD = LoadGenConfig(
    workload=WorkloadSpec(rate_per_60tu=1200.0, horizon=10.0),
    seed=7,
    time_scale=0.005,
    max_hold_seconds=0.2,
)
SCRAPE_INTERVAL = 1.0
ROUNDS = 8
BURSTS_PER_ROUND = 4  # chained so one round spans several 1 Hz sweeps
MAX_OVERHEAD_PERCENT = 2.0
MAX_ATTEMPTS = 3  # contention only inflates CPU cost; keep the min


async def _run_once(scrape: bool):
    daemon = ReservationDaemon(DaemonConfig(port=0, seed=DAEMON_SEED))
    await daemon.start()
    store = TimeSeriesStore()
    scraper = None
    scrape_task = None
    try:
        if scrape:
            scraper = TelemetryScraper(
                [("127.0.0.1", daemon.port)], store,
                interval=SCRAPE_INTERVAL, timeout=2.0,
            )
            scrape_task = asyncio.create_task(scraper.run())
            await asyncio.sleep(0)  # let the first sweep start
        # Every burst admits the identical seeded stream and tears all
        # of its sessions down before returning, so bursts chain
        # cleanly; sessions / wall over the chain is the steady-state
        # admission throughput under (or without) 1 Hz scraping.
        sessions = 0
        started = time.perf_counter()
        cpu_started = time.process_time()
        for _ in range(BURSTS_PER_ROUND):
            report = await run_load("127.0.0.1", daemon.port, LOAD)
            assert report.errors == 0
            sessions += report.sessions
        cpu = time.process_time() - cpu_started
        throughput = sessions / (time.perf_counter() - started)
        return throughput, cpu / sessions, sessions, store
    finally:
        if scrape_task is not None:
            scrape_task.cancel()
            await asyncio.gather(scrape_task, return_exceptions=True)
        if scraper is not None:
            await scraper.aclose()
        await daemon.shutdown()


def _attempt():
    """One set of interleaved rounds; best-of-rounds per mode."""
    bare, scraped = [], []
    bare_cpu, scraped_cpu = [], []
    last_store = None
    sessions = set()
    for _ in range(ROUNDS):
        gc.collect()  # start every round with the same collector debt
        throughput, cpu, count, _ = asyncio.run(_run_once(scrape=False))
        bare.append(throughput)
        bare_cpu.append(cpu)
        sessions.add(count)
        gc.collect()
        throughput, cpu, count, last_store = asyncio.run(
            _run_once(scrape=True)
        )
        scraped.append(throughput)
        scraped_cpu.append(cpu)
        sessions.add(count)
    return bare, scraped, bare_cpu, scraped_cpu, sessions, last_store


def _overhead(bare_cpu, scraped_cpu):
    return 100.0 * (min(scraped_cpu) / min(bare_cpu) - 1.0)


def _measure():
    """Best of up to MAX_ATTEMPTS attempts.

    process_time is immune to *waiting* on neighbours but not to the
    cache/allocator pressure they cause, which can still swing a round
    by more than the ~1% signal.  That pressure only ever inflates the
    measurement, so the attempt with the lowest overhead is the least
    contaminated one -- the same min-of-several convention the other
    macro benches document.  Stop early once an attempt is under the
    gate.
    """
    best = None
    attempts = 0
    for _ in range(MAX_ATTEMPTS):
        attempts += 1
        result = _attempt()
        if best is None or _overhead(result[2], result[3]) < _overhead(
            best[2], best[3]
        ):
            best = result
        if _overhead(best[2], best[3]) < MAX_OVERHEAD_PERCENT:
            break
    return best + (attempts,)


def test_bench_telemetry_overhead(benchmark):
    """1 Hz scraping costs < 2% of admission throughput."""
    bare, scraped, bare_cpu, scraped_cpu, sessions, store, attempts = (
        benchmark.pedantic(_measure, rounds=1, iterations=1)
    )

    # The workload is seeded: both modes admit the same session stream.
    assert len(sessions) == 1

    # The scraper really ran: the daemon's enriched surface landed in
    # the store with its shard identity attached.
    (meta,) = store.targets()
    assert meta.up and meta.role == "shard"
    assert meta.consecutive_failures == 0
    assert store.latest(
        meta.target, "repro_daemon_active_sessions"
    ) is not None

    bare_cost = min(bare_cpu)
    scraped_cost = min(scraped_cpu)
    overhead_percent = 100.0 * (scraped_cost / bare_cost - 1.0)
    assert overhead_percent < MAX_OVERHEAD_PERCENT, (
        f"1 Hz scraping cost {overhead_percent:.2f}% CPU per session "
        f"(bare {bare_cost * 1e6:.1f}us vs scraped "
        f"{scraped_cost * 1e6:.1f}us; "
        f"all bare {sorted(round(c * 1e6, 1) for c in bare_cpu)}us, "
        f"all scraped {sorted(round(c * 1e6, 1) for c in scraped_cpu)}us)"
    )

    # The overhead percentage itself stays out of the ledger headline:
    # it is a noise-centered near-zero quantity, and the runner-keyed
    # timing gate compares leaves *relatively*, which is meaningless
    # around zero.  The two CPU costs carry the same information and
    # each is individually stable within the timing band.
    headline = {
        "bare_cpu_seconds_per_session": bare_cost,
        "scraped_cpu_seconds_per_session": scraped_cost,
        "bare_throughput_per_wall_second": max(bare),
        "scraped_throughput_per_wall_second": max(scraped),
        "sessions": sessions.pop(),
    }
    environment = {
        "rounds": ROUNDS,
        "bursts_per_round": BURSTS_PER_ROUND,
        "comparison": "best-of-rounds",
        "attempts": attempts,
        "max_attempts": MAX_ATTEMPTS,
        "scrape_interval_seconds": SCRAPE_INTERVAL,
        "max_overhead_percent": MAX_OVERHEAD_PERCENT,
    }
    benchmark.extra_info.update(headline)
    benchmark.extra_info["overhead_cpu_seconds_percent"] = overhead_percent
    write_bench_ledger(
        "telemetry_overhead", headline, environment=environment
    )
