"""Shared benchmark helpers.

Benchmarks run the paper's experiments at reduced scale (shorter
horizons, fewer sweep points) so the whole suite completes in a couple
of minutes; the full-scale reproduction is ``repro-reproduce`` (see
EXPERIMENTS.md).  Every benchmark stores the artifact's headline numbers
in ``benchmark.extra_info`` so the saved benchmark JSON doubles as a
record of the reproduced shapes.
"""

from __future__ import annotations

import pytest

from repro.sim import SimulationConfig, WorkloadSpec, run_simulation

#: Reduced-scale defaults shared by the artifact benchmarks.
BENCH_HORIZON = 600.0
BENCH_SEED = 7


def bench_config(algorithm: str = "basic", rate: float = 180.0, **kw) -> SimulationConfig:
    workload = kw.pop("workload", None)
    if workload is None:
        workload = WorkloadSpec(rate_per_60tu=rate, horizon=kw.pop("horizon", BENCH_HORIZON))
    return SimulationConfig(algorithm=algorithm, seed=BENCH_SEED, workload=workload, **kw)


def run_all_algorithms(rate: float, horizon: float = BENCH_HORIZON, **kw):
    return {
        algorithm: run_simulation(bench_config(algorithm, rate, horizon=horizon, **kw))
        for algorithm in ("random", "basic", "tradeoff")
    }
