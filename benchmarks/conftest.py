"""Shared benchmark helpers.

Benchmarks run the paper's experiments at reduced scale (shorter
horizons, fewer sweep points) so the whole suite completes in a couple
of minutes; the full-scale reproduction is ``repro-reproduce`` (see
EXPERIMENTS.md).  Every benchmark stores the artifact's headline numbers
in ``benchmark.extra_info`` so the saved benchmark JSON doubles as a
record of the reproduced shapes.

On top of extra_info, benchmarks persist a *telemetry ledger*: one
``BENCH_<name>.json`` per benchmark (see :func:`write_bench_ledger`)
with the headline numbers, an optional observability summary, the git
sha of the run, and a runner fingerprint (hashed hostname + CPU count +
python version) that ``repro-obs diff`` keys timing comparisons on --
timings measured on different machines are excluded from the gate
instead of tripping it.  Committed baselines live in
``benchmarks/baselines/``; CI diffs a fresh run against them with
``repro-obs diff --gate`` (see docs/observability.md for the workflow
and the tolerance policy).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import socket
import subprocess
from pathlib import Path
from typing import Mapping, Optional, Union

import pytest

from repro.obs import ObservationSummary, analyze
from repro.sim import SimulationConfig, WorkloadSpec, run_simulation

#: Reduced-scale defaults shared by the artifact benchmarks.
BENCH_HORIZON = 600.0
BENCH_SEED = 7

#: Ledger schema tag; bump on breaking layout changes so ``repro-obs
#: diff`` never silently compares incompatible documents.
LEDGER_SCHEMA = "bench-ledger/1"

#: Where fresh ledgers land; override for CI workspaces.
LEDGER_DIR_ENV = "REPRO_BENCH_LEDGER_DIR"


def bench_config(algorithm: str = "basic", rate: float = 180.0, **kw) -> SimulationConfig:
    workload = kw.pop("workload", None)
    if workload is None:
        workload = WorkloadSpec(rate_per_60tu=rate, horizon=kw.pop("horizon", BENCH_HORIZON))
    return SimulationConfig(algorithm=algorithm, seed=BENCH_SEED, workload=workload, **kw)


def run_all_algorithms(rate: float, horizon: float = BENCH_HORIZON, **kw):
    return {
        algorithm: run_simulation(bench_config(algorithm, rate, horizon=horizon, **kw))
        for algorithm in ("random", "basic", "tradeoff")
    }


# -- telemetry ledger ----------------------------------------------------------


def git_sha() -> str:
    """The repository's current commit sha ("unknown" outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def runner_fingerprint() -> dict:
    """Identify the machine a ledger's timings were measured on.

    ``repro-obs diff --gate`` only holds timing leaves to the tolerance
    band when both documents carry the same ``fingerprint``; numbers
    measured on different hardware are never gated against each other.
    All values are strings so the fingerprint itself stays outside the
    numeric diff.
    """
    try:
        hostname = socket.gethostname()
    except OSError:
        hostname = "unknown"
    host_hash = hashlib.sha256(hostname.encode("utf-8", "replace")).hexdigest()[:12]
    cpus = os.cpu_count() or 0
    version = platform.python_version()
    return {
        "fingerprint": f"{host_hash}-{cpus}c-py{version}",
        "hostname_hash": host_hash,
        "cpus": str(cpus),
        "python": version,
    }


def _nulled_non_finite(value):
    """``value`` with every non-finite float replaced by ``None``.

    ``json.dumps`` serializes inf/-inf/NaN as the non-standard
    ``Infinity``/``-Infinity``/``NaN`` tokens, which strict JSON parsers
    (and the ledger diff gate) reject.  Ledgers null them instead: a
    missing number diffs as a structural change, an ``Infinity`` token
    breaks loading entirely.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: _nulled_non_finite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_nulled_non_finite(item) for item in value]
    return value


def write_bench_ledger(
    name: str,
    headline: Mapping[str, object],
    obs: Optional[Union[ObservationSummary, Mapping[str, object]]] = None,
    *,
    environment: Optional[Mapping[str, str]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``headline`` carries the benchmark's reproducible numbers (counts,
    speedups, exponents); ``obs`` optionally attaches a detached
    :class:`~repro.obs.ObservationSummary` (or an equivalent dict) so
    the ledger records *what the run did*, not just how fast.
    ``environment`` records runner-dependent facts (CPU counts,
    effective worker counts) as *strings* so they document the run
    without entering the numeric diff.  Ledgers
    land in ``$REPRO_BENCH_LEDGER_DIR`` (default ``benchmarks/ledger/``,
    which is gitignored); promoting one to a committed baseline means
    copying it into ``benchmarks/baselines/`` (merging
    ``timing_baselines`` entries from other runners instead of
    overwriting them, so the committed document accumulates one timing
    baseline per runner fingerprint and ``repro-obs diff --gate`` can
    hard-compare wall clocks on each of them).
    """
    document: dict = {
        "schema": LEDGER_SCHEMA,
        "name": name,
        "git_sha": git_sha(),
        "runner": runner_fingerprint(),
        "headline": dict(headline),
    }
    if environment:
        document["environment"] = {k: str(v) for k, v in environment.items()}
    if isinstance(obs, ObservationSummary):
        document["obs"] = {
            "span_totals": {k: dict(v) for k, v in obs.span_totals.items()},
            "metrics": obs.metrics,
            "event_counts": dict(obs.event_counts),
        }
    elif obs is not None:
        document["obs"] = dict(obs)
    # Non-finite values are nulled *before* the timing-baseline
    # extraction so baselines and the document body stay consistent,
    # and ``allow_nan=False`` enforces that none slipped through.
    document = _nulled_non_finite(document)
    timing = {
        path: value
        for path, value in analyze.comparable_view(document).items()
        if analyze.is_timing_path(path)
    }
    if timing:
        document["timing_baselines"] = {
            document["runner"]["fingerprint"]: timing
        }
    target_dir = Path(os.environ.get(LEDGER_DIR_ENV, Path(__file__).parent / "ledger"))
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / f"BENCH_{name}.json"
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
    return target


def pytest_collection_modifyitems(items) -> None:
    """Every case in this directory is a benchmark: tag it ``bench``.

    Lets the tier-1 suite and quick iteration deselect the whole
    directory with ``-m "not bench"`` without per-test decoration.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)
