"""Inaccurate resource-availability observations (paper §5.2.4).

In the base experiments plan computation and reservation are atomic, so
observations are always accurate.  Lifting that assumption, "for each
service session, the availability of any resource may be observed up to
E time units ago": each session observes each resource at an
independently drawn instant in ``[now - E, now]``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.errors import ModelError


class StaleObservationModel:
    """Factory of per-session observation schedules."""

    def __init__(self, max_staleness: float, rng: np.random.Generator, clock: Callable[[], float]) -> None:
        if max_staleness < 0:
            raise ModelError(f"staleness bound must be >= 0, got {max_staleness!r}")
        self.max_staleness = float(max_staleness)
        self._rng = rng
        self._clock = clock

    @property
    def enabled(self) -> bool:
        """True when the model is active."""
        return self.max_staleness > 0

    def schedule_for_session(self) -> Optional[Callable[[str], Optional[float]]]:
        """An ``observed_at`` callable for one session (None when E=0).

        Each distinct resource gets one draw, cached so that repeated
        queries within the session see a consistent snapshot.
        """
        if not self.enabled:
            return None
        now = self._clock()
        cache: dict = {}

        def observed_at(resource_id: str) -> Optional[float]:
            """Stale observation instant for one resource (cached)."""
            when = cache.get(resource_id)
            if when is None:
                lag = float(self._rng.uniform(0.0, self.max_staleness))
                when = max(0.0, now - lag)
                cache[resource_id] = when
            return when

        return observed_at
