"""The paper's evaluation environment (§5).

* :mod:`repro.sim.services` -- the figure-10 service families (QoS
  levels + requirement tables) and the §5.2.5 diversity compressor;
* :mod:`repro.sim.environment` -- the figure-9 Grid: brokers, proxies,
  routing, session bindings;
* :mod:`repro.sim.workload` -- Poisson session generation with the
  paper's heterogeneity (normal/fat, short/long, popularity drift);
* :mod:`repro.sim.staleness` -- the §5.2.4 inaccurate-observation model;
* :mod:`repro.sim.metrics` -- success rate, QoS levels, per-class
  breakdowns, path census, bottleneck census;
* :mod:`repro.sim.experiment` -- configuration, single runs, sweeps.
"""

from repro.sim.environment import GridEnvironment
from repro.sim.experiment import (
    ParallelSweepRunner,
    SerialSweepRunner,
    SimulationConfig,
    SimulationResult,
    default_sweep_runner,
    derive_run_seed,
    parallel_sweeps,
    rate_sweep,
    run_configs,
    run_simulation,
    set_default_sweep_runner,
    sweep,
)
from repro.sim.metrics import ClassBreakdown, MetricsCollector, PathCensus
from repro.sim.services import (
    FAMILY_A,
    FAMILY_B,
    ServiceFamily,
    build_evaluation_services,
    compress_diversity,
    evaluation_family_keys,
    evaluation_services_for,
    family_of_service,
)
from repro.sim.staleness import StaleObservationModel
from repro.sim.workload import (
    SessionArrival,
    SessionClassifier,
    WorkloadGenerator,
    WorkloadSpec,
)

__all__ = [
    "ClassBreakdown",
    "FAMILY_A",
    "FAMILY_B",
    "GridEnvironment",
    "MetricsCollector",
    "ParallelSweepRunner",
    "PathCensus",
    "SerialSweepRunner",
    "ServiceFamily",
    "SessionArrival",
    "SessionClassifier",
    "SimulationConfig",
    "SimulationResult",
    "StaleObservationModel",
    "WorkloadGenerator",
    "WorkloadSpec",
    "build_evaluation_services",
    "compress_diversity",
    "default_sweep_runner",
    "derive_run_seed",
    "evaluation_family_keys",
    "evaluation_services_for",
    "family_of_service",
    "parallel_sweeps",
    "rate_sweep",
    "run_configs",
    "run_simulation",
    "set_default_sweep_runner",
    "sweep",
]
