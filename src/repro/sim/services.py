"""The evaluation's service definitions (paper §5.1, figure 10).

Each service ``S_i`` is a chain of three components ``cS -> cP -> cC``:
the server component (consuming the server host's local resource slot
``hS``), the proxy component (consuming the proxy host's local resource
``hP`` and the server-proxy network resource ``lPS``), and the client
component (consuming the proxy-client network resource ``lCP``).

The paper gives two requirement tables: figure 10(a) for services S1 and
S4 ("family A") and figure 10(b) for S2 and S3 ("family B").  The
figure's numeric values are not recoverable from the text, so the tables
below are hand-authored to preserve everything the text *does* pin down:

* the exact level/edge structure implied by Tables 1-2 (all 11 family-A
  and 12 family-B enumerated reservation paths exist, sinks ranked
  Qp>Qq>Qr resp. Ql>Qm>Qn);
* the trade-off shape: reaching a given output from a *lower* input
  costs more host CPU (the hypothetical image-intrapolation upscaling of
  figure 4's caption) but less upstream network bandwidth;
* calibration: per-resource-class utilisation is balanced (hosts carry
  2 of 4 component placements per session, core links 1 of 6, access
  links 1 of 8 -- hence ``lPS``/``lCP`` values are proportionally
  larger), and a "fat" x10 session still fits the smallest possible
  pool (1000 units).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.component import ServiceComponent
from repro.core.errors import ModelError
from repro.core.qos import QoSLevel, QoSRanking, QoSVector
from repro.core.service import DependencyGraph, DistributedService
from repro.core.translation import TabularTranslation

#: Resource slot names (paper §5.1).
SLOT_SERVER = "hS"
SLOT_PROXY = "hP"
SLOT_NET_SP = "lPS"
SLOT_NET_PC = "lCP"

#: Per-slot calibration factors applied when instantiating services.
#:
#: The authored tables below are in *relative* units chosen for readable
#: trade-off structure.  These factors bring the typical contention
#: index psi = req/avail of the four resource classes to a comparable
#: magnitude at mid-range load, given their very different per-pool load
#: shares in figure 9 (a session places 2 of its 4 slot demands on the 4
#: host CPU pools, but only 1 on the 6 core links and 1 on the 8 access
#: links).  Comparable psi is what makes the bottleneck identity switch
#: between resource classes -- the behaviour §5.2.2 reports ("every
#: resource ... becomes the bottleneck resource ... at least once").
SLOT_CALIBRATION: Dict[str, float] = {
    SLOT_SERVER: 0.85,
    SLOT_PROXY: 0.85,
    SLOT_NET_SP: 0.62,
    SLOT_NET_PC: 0.55,
}


def calibrate_table(
    table: Mapping[Tuple[str, str], Mapping[str, float]],
    scales: Mapping[str, float] = SLOT_CALIBRATION,
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Apply per-slot calibration factors to a requirement table."""
    return {
        key: {slot: amount * scales.get(slot, 1.0) for slot, amount in requirement.items()}
        for key, requirement in table.items()
    }


@dataclass(frozen=True)
class ServiceFamily:
    """One of the two figure-10 definitions, reusable across services."""

    key: str  # "A" or "B"
    source_label: str
    server_table: Mapping[Tuple[str, str], Mapping[str, float]]
    proxy_table: Mapping[Tuple[str, str], Mapping[str, float]]
    client_table: Mapping[Tuple[str, str], Mapping[str, float]]
    # label -> quality vector, per node column of the figure
    source_levels: Mapping[str, Mapping[str, float]]
    server_out_levels: Mapping[str, Mapping[str, float]]
    proxy_in_levels: Mapping[str, Mapping[str, float]]
    proxy_out_levels: Mapping[str, Mapping[str, float]]
    client_in_levels: Mapping[str, Mapping[str, float]]
    client_out_levels: Mapping[str, Mapping[str, float]]
    ranking: Tuple[str, ...]  # end-to-end labels, best first

    def build_service(self, name: str) -> DistributedService:
        """Instantiate the family as a named three-component chain."""

        def levels(defs: Mapping[str, Mapping[str, float]]) -> Tuple[QoSLevel, ...]:
            """Materialise label->vector definitions as QoSLevel tuples."""
            return tuple(QoSLevel(label, QoSVector(vec)) for label, vec in defs.items())

        server = ServiceComponent(
            "cS",
            input_levels=levels(self.source_levels),
            output_levels=levels(self.server_out_levels),
            translation=TabularTranslation(calibrate_table(self.server_table)),
        )
        proxy = ServiceComponent(
            "cP",
            input_levels=levels(self.proxy_in_levels),
            output_levels=levels(self.proxy_out_levels),
            translation=TabularTranslation(calibrate_table(self.proxy_table)),
        )
        client = ServiceComponent(
            "cC",
            input_levels=levels(self.client_in_levels),
            output_levels=levels(self.client_out_levels),
            translation=TabularTranslation(calibrate_table(self.client_table)),
        )
        return DistributedService(
            name,
            [server, proxy, client],
            DependencyGraph.chain(["cS", "cP", "cC"]),
            QoSRanking(list(self.ranking)),
        )

    def all_tables(self) -> Dict[str, Mapping[Tuple[str, str], Mapping[str, float]]]:
        """Component name -> requirement table mapping."""
        return {"cS": self.server_table, "cP": self.proxy_table, "cC": self.client_table}


# --------------------------------------------------------------------------
# Family A -- figure 10(a), services S1 and S4.
#
# Level structure (Table 1):  Qa -> {Qb,Qc,Qd} == {Qe,Qf,Qg} ->
# {Qh,Qi,Qj,Qk} == {Ql,Qm,Qn,Qo} -> {Qp,Qq,Qr}; ranking Qp > Qq > Qr.
# --------------------------------------------------------------------------

#: Quality vectors: (frame_rate fps, image_size height-lines); proxy
#: output adds trackable objects; end-to-end adds buffering delay (ms,
#: encoded negatively so that "less delay" sorts as "higher QoS").
_A_Q3 = {"frame_rate": 30, "image_size": 480}
_A_Q2 = {"frame_rate": 30, "image_size": 240}
_A_Q1 = {"frame_rate": 15, "image_size": 240}

_A_P4 = {"frame_rate": 30, "image_size": 480, "objects": 4}
_A_P3 = {"frame_rate": 30, "image_size": 480, "objects": 2}
_A_P2 = {"frame_rate": 30, "image_size": 240, "objects": 2}
_A_P1 = {"frame_rate": 15, "image_size": 240, "objects": 1}

_A_E3 = {"frame_rate": 30, "image_size": 480, "objects": 4, "neg_delay": -100}
_A_E2 = {"frame_rate": 30, "image_size": 240, "objects": 2, "neg_delay": -150}
_A_E1 = {"frame_rate": 15, "image_size": 240, "objects": 1, "neg_delay": -250}

FAMILY_A = ServiceFamily(
    key="A",
    source_label="Qa",
    source_levels={"Qa": {"frame_rate": 30, "image_size": 480}},
    server_out_levels={"Qb": _A_Q3, "Qc": _A_Q2, "Qd": _A_Q1},
    proxy_in_levels={"Qe": _A_Q3, "Qf": _A_Q2, "Qg": _A_Q1},
    proxy_out_levels={"Qh": _A_P4, "Qi": _A_P3, "Qj": _A_P2, "Qk": _A_P1},
    client_in_levels={"Ql": _A_P4, "Qm": _A_P3, "Qn": _A_P2, "Qo": _A_P1},
    client_out_levels={"Qp": _A_E3, "Qq": _A_E2, "Qr": _A_E1},
    ranking=("Qp", "Qq", "Qr"),
    server_table={
        ("Qa", "Qb"): {SLOT_SERVER: 7.5},
        ("Qa", "Qc"): {SLOT_SERVER: 5.5},
        ("Qa", "Qd"): {SLOT_SERVER: 4.0},
    },
    proxy_table={
        # High-quality input: cheap tracking, expensive upstream shipping.
        ("Qe", "Qh"): {SLOT_PROXY: 6.5, SLOT_NET_SP: 22.0},
        ("Qe", "Qi"): {SLOT_PROXY: 5.0, SLOT_NET_SP: 20.0},
        # Mid input: reaching higher outputs needs intrapolation (steep
        # CPU cost), at reduced upstream bandwidth.
        ("Qf", "Qh"): {SLOT_PROXY: 13.0, SLOT_NET_SP: 16.0},
        ("Qf", "Qi"): {SLOT_PROXY: 8.0, SLOT_NET_SP: 15.0},
        ("Qf", "Qj"): {SLOT_PROXY: 7.0, SLOT_NET_SP: 14.0},
        ("Qf", "Qk"): {SLOT_PROXY: 5.0, SLOT_NET_SP: 13.0},
        # Low input: cheapest network, priciest upscaling.
        ("Qg", "Qj"): {SLOT_PROXY: 11.0, SLOT_NET_SP: 10.5},
        ("Qg", "Qk"): {SLOT_PROXY: 8.0, SLOT_NET_SP: 9.5},
    },
    # Recovering a given end-to-end level from a *lower*-quality
    # intermediate costs extra delivery bandwidth (the player fetches
    # auxiliary detail/redundancy streams), so within one sink the lCP
    # requirement rises as the input level falls.  This keeps every
    # level-3 path non-dominated -- the resource trade-offs §5.2.5 calls
    # "options".
    client_table={
        ("Ql", "Qp"): {SLOT_NET_PC: 24.0},
        ("Qm", "Qp"): {SLOT_NET_PC: 27.0},
        ("Qn", "Qp"): {SLOT_NET_PC: 30.0},
        ("Qm", "Qq"): {SLOT_NET_PC: 17.0},
        ("Qn", "Qq"): {SLOT_NET_PC: 19.5},
        ("Qo", "Qq"): {SLOT_NET_PC: 22.0},
        ("Qn", "Qr"): {SLOT_NET_PC: 11.0},
        ("Qo", "Qr"): {SLOT_NET_PC: 13.0},
    },
)

# --------------------------------------------------------------------------
# Family B -- figure 10(b), services S2 and S3.
#
# Level structure (Table 2):  Qa -> {Qb,Qc} == {Qd,Qe} -> {Qf,Qg,Qh} ==
# {Qi,Qj,Qk} -> {Ql,Qm,Qn}; ranking Ql > Qm > Qn.
# --------------------------------------------------------------------------

_B_Q2 = {"resolution": 1024, "precision": 2}
_B_Q1 = {"resolution": 512, "precision": 2}

_B_P3 = {"resolution": 1024, "precision": 2, "features": 8}
_B_P2 = {"resolution": 1024, "precision": 1, "features": 4}
_B_P1 = {"resolution": 512, "precision": 1, "features": 4}

_B_E3 = {"resolution": 1024, "precision": 2, "features": 8, "neg_delay": -80}
_B_E2 = {"resolution": 1024, "precision": 1, "features": 4, "neg_delay": -120}
_B_E1 = {"resolution": 512, "precision": 1, "features": 4, "neg_delay": -200}

FAMILY_B = ServiceFamily(
    key="B",
    source_label="Qa",
    source_levels={"Qa": {"resolution": 1024, "precision": 2}},
    server_out_levels={"Qb": _B_Q2, "Qc": _B_Q1},
    proxy_in_levels={"Qd": _B_Q2, "Qe": _B_Q1},
    proxy_out_levels={"Qf": _B_P3, "Qg": _B_P2, "Qh": _B_P1},
    client_in_levels={"Qi": _B_P3, "Qj": _B_P2, "Qk": _B_P1},
    client_out_levels={"Ql": _B_E3, "Qm": _B_E2, "Qn": _B_E1},
    ranking=("Ql", "Qm", "Qn"),
    server_table={
        ("Qa", "Qb"): {SLOT_SERVER: 7.0},
        ("Qa", "Qc"): {SLOT_SERVER: 4.8},
    },
    proxy_table={
        ("Qd", "Qf"): {SLOT_PROXY: 5.5, SLOT_NET_SP: 21.0},
        ("Qe", "Qf"): {SLOT_PROXY: 11.0, SLOT_NET_SP: 14.0},
        ("Qd", "Qg"): {SLOT_PROXY: 4.5, SLOT_NET_SP: 19.5},
        ("Qe", "Qg"): {SLOT_PROXY: 8.0, SLOT_NET_SP: 13.5},
        ("Qd", "Qh"): {SLOT_PROXY: 3.5, SLOT_NET_SP: 18.5},
        ("Qe", "Qh"): {SLOT_PROXY: 6.0, SLOT_NET_SP: 12.5},
    },
    # Same rationale as family A: lower intermediates cost extra
    # delivery bandwidth to recover a given end-to-end level.
    client_table={
        ("Qi", "Ql"): {SLOT_NET_PC: 22.5},
        ("Qj", "Ql"): {SLOT_NET_PC: 25.0},
        ("Qk", "Ql"): {SLOT_NET_PC: 28.0},
        ("Qi", "Qm"): {SLOT_NET_PC: 16.0},
        ("Qj", "Qm"): {SLOT_NET_PC: 18.5},
        ("Qk", "Qm"): {SLOT_NET_PC: 20.5},
        ("Qj", "Qn"): {SLOT_NET_PC: 11.0},
        ("Qk", "Qn"): {SLOT_NET_PC: 13.0},
    },
)

#: Service name -> family, per §5.1: (a) is for S1 and S4, (b) for S2, S3.
SERVICE_FAMILIES: Dict[str, ServiceFamily] = {
    "S1": FAMILY_A,
    "S2": FAMILY_B,
    "S3": FAMILY_B,
    "S4": FAMILY_A,
}


def family_of_service(name: str) -> ServiceFamily:
    """The figure-10 family an evaluation service belongs to."""
    try:
        return SERVICE_FAMILIES[name]
    except KeyError:
        raise ModelError(f"unknown evaluation service {name!r}") from None


@lru_cache(maxsize=None)
def _default_services_cached() -> Mapping[str, DistributedService]:
    """The S1-S4 definitions, built once per process.

    Service definitions are immutable (frozen components, tabular
    translations), so every run with default parameters can share one
    instance instead of re-deriving levels and calibrated tables per
    sweep point.
    """
    return MappingProxyType(
        {name: family.build_service(name) for name, family in SERVICE_FAMILIES.items()}
    )


def build_evaluation_services(
    families: Optional[Mapping[str, ServiceFamily]] = None,
) -> Dict[str, DistributedService]:
    """All four S1-S4 service definitions (optionally substituted).

    The default (no ``families``) is memoized: callers get a fresh dict,
    but the (immutable) service objects inside are shared process-wide.
    """
    if families is None or families is SERVICE_FAMILIES:
        return dict(_default_services_cached())
    return {name: family.build_service(name) for name, family in families.items()}


@lru_cache(maxsize=None)
def _compressed_services_cached(ratio: float) -> Mapping[str, DistributedService]:
    return MappingProxyType(
        {
            name: family.build_service(name)
            for name, family in compressed_service_families(ratio).items()
        }
    )


def evaluation_services_for(
    diversity_ratio: Optional[float] = None,
) -> Dict[str, DistributedService]:
    """Memoized service set for one simulation configuration.

    ``diversity_ratio=None`` is the paper's base table; a ratio applies
    the §5.2.5 compression.  Both variants are cached, so repeated sweep
    runs with identical service parameters share the definitions.
    """
    if diversity_ratio is None:
        return build_evaluation_services()
    return dict(_compressed_services_cached(float(diversity_ratio)))


# --------------------------------------------------------------------------
# Requirement-diversity compression (paper §5.2.5, figure 13).
# --------------------------------------------------------------------------


def _compress_values(values: Sequence[float], ratio: float) -> List[float]:
    """Map values to an evenly spaced set with max/min == ratio, same mean.

    The paper: "for each resource, the requirement values on different
    edges have the same average ..., however, the ratio between the
    highest and lowest values is limited to 3:1, and the other values are
    evenly distributed between them."  Even spacing around the mean with
    endpoints (l, r*l) preserves the mean exactly when l = 2*m/(1+r).
    """
    if ratio < 1.0:
        raise ModelError(f"compression ratio must be >= 1, got {ratio!r}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return [mean]
    low = 2.0 * mean / (1.0 + ratio)
    high = ratio * low
    step = (high - low) / (n - 1)
    order = sorted(range(n), key=lambda i: (values[i], i))
    result = [0.0] * n
    for position, original_index in enumerate(order):
        result[original_index] = low + position * step
    return result


def compress_diversity(family: ServiceFamily, ratio: float = 3.0) -> ServiceFamily:
    """A family with per-resource requirement spread limited to ``ratio``.

    Applied independently per component and per resource slot, preserving
    each slot's mean requirement and the rank order of edge costs.
    """
    def compress_table(
        table: Mapping[Tuple[str, str], Mapping[str, float]]
    ) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Apply per-slot compression to one requirement table."""
        keys = sorted(table)
        slots = sorted({slot for requirement in table.values() for slot in requirement})
        new_table: Dict[Tuple[str, str], Dict[str, float]] = {key: {} for key in keys}
        for slot in slots:
            originals = [table[key][slot] for key in keys]
            compressed = _compress_values(originals, ratio)
            for key, value in zip(keys, compressed):
                new_table[key][slot] = value
        return new_table

    return ServiceFamily(
        key=f"{family.key}/compressed{ratio:g}",
        source_label=family.source_label,
        source_levels=family.source_levels,
        server_out_levels=family.server_out_levels,
        proxy_in_levels=family.proxy_in_levels,
        proxy_out_levels=family.proxy_out_levels,
        client_in_levels=family.client_in_levels,
        client_out_levels=family.client_out_levels,
        ranking=family.ranking,
        server_table=compress_table(family.server_table),
        proxy_table=compress_table(family.proxy_table),
        client_table=compress_table(family.client_table),
    )


def compressed_service_families(ratio: float = 3.0) -> Dict[str, ServiceFamily]:
    """The §5.2.5 variant of all four services."""
    return {name: compress_diversity(family, ratio) for name, family in SERVICE_FAMILIES.items()}


@lru_cache(maxsize=None)
def evaluation_family_keys() -> Mapping[str, str]:
    """Service name -> base family key ("S1" -> "A", ...), memoized.

    Compression suffixes ("A/compressed3") are stripped so the path
    census always groups by the figure-10 family identity.
    """
    return MappingProxyType(
        {name: family.key.split("/")[0] for name, family in SERVICE_FAMILIES.items()}
    )
