"""Experiment configuration, single runs, and parameter sweeps (§5).

:func:`run_simulation` executes one full simulated run: build the
figure-9 grid, generate the Poisson workload, plan + reserve + hold +
release every session with the configured algorithm, and return the
collected metrics.  :func:`sweep` maps a config factory over a parameter
list (the generation-rate sweeps of figures 11-13).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ModelError
from repro.core.planner import BasicPlanner, RandomPlanner
from repro.core.resources import (
    headroom_contention_index,
    log_contention_index,
    ratio_contention_index,
)
from repro.core.tradeoff import TradeoffPlanner
from repro.des.engine import Environment
from repro.des.rng import RandomStreams
from repro.obs import ObservabilityConfig, ObservationSession
from repro.obs.metrics import DEFAULT_PSI_BUCKETS, active_registry
from repro.runtime.session import ServiceSession, SessionOutcome
from repro.sim.environment import GridEnvironment
from repro.sim.metrics import MetricsCollector, MetricsSnapshot, PathCensus
from repro.sim.services import (
    SERVICE_FAMILIES,
    build_evaluation_services,
    compressed_service_families,
)
from repro.sim.staleness import StaleObservationModel
from repro.sim.workload import WorkloadGenerator, WorkloadSpec

CONTENTION_INDICES = {
    "ratio": ratio_contention_index,
    "headroom": headroom_contention_index,
    "log": log_contention_index,
}

ALGORITHMS = ("basic", "tradeoff", "random")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that defines one run; defaults match §5.1."""

    algorithm: str = "basic"
    seed: int = 0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    capacity_range: Tuple[float, float] = (1000.0, 4000.0)
    #: T of the tradeoff policy's averaging window (3 TU in §5's runs).
    trend_window: float = 3.0
    #: E of §5.2.4: observations may be up to E time units stale.
    staleness: float = 0.0
    #: Optional establishment latency (protocol round-trip, §4.2).
    latency: float = 0.0
    #: §5.2.5: compress requirement diversity to this max/min ratio.
    diversity_ratio: Optional[float] = None
    #: psi definition (paper footnote 2); one of CONTENTION_INDICES.
    contention_index: str = "ratio"
    #: The §4.1.2 Dijkstra tie-breaking rule (ablation switch).
    tie_break: bool = True
    #: Retain individual SessionOutcome records (memory-heavy).
    keep_outcomes: bool = False
    #: Tracing/metrics collection and export (None = fully disabled,
    #: the zero-overhead default).  See :mod:`repro.obs`.
    observability: Optional[ObservabilityConfig] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ModelError(f"unknown algorithm {self.algorithm!r}; pick from {ALGORITHMS}")
        if self.contention_index not in CONTENTION_INDICES:
            raise ModelError(
                f"unknown contention index {self.contention_index!r}; "
                f"pick from {sorted(CONTENTION_INDICES)}"
            )
        if self.staleness < 0 or self.latency < 0:
            raise ModelError("staleness and latency must be >= 0")

    def with_(self, **changes) -> "SimulationConfig":
        """Copy of this config with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class SimulationResult:
    """Metrics of one finished run."""

    config: SimulationConfig
    metrics: MetricsSnapshot
    paths: PathCensus
    wall_seconds: float
    #: The run's tracer + metrics registry (None unless the config
    #: enabled observability).
    observation: Optional[ObservationSession] = None

    @property
    def success_rate(self) -> float:
        """Fraction of attempted sessions successfully established."""
        return self.metrics.success_rate

    @property
    def avg_qos_level(self) -> float:
        """Mean numeric QoS level over successful sessions."""
        return self.metrics.avg_qos_level


def _make_planner(config: SimulationConfig, streams: RandomStreams):
    if config.algorithm == "basic":
        return BasicPlanner(tie_break=config.tie_break)
    if config.algorithm == "tradeoff":
        return TradeoffPlanner(tie_break=config.tie_break)
    return RandomPlanner(rng=streams.stream("random-planner"))


def _record_session_metrics(outcome: SessionOutcome) -> None:
    """Per-session outcome counters/histograms (no-op when disabled)."""
    registry = active_registry()
    if registry is None:
        return
    if outcome.success:
        registry.counter("session.admitted", service=outcome.service).inc()
        if outcome.plan is not None and outcome.plan.end_to_end_rank > 0:
            # Admitted, but below the service's top end-to-end level --
            # the trade-off/feasibility degradation the paper trades
            # against success rate.
            registry.counter("session.degraded", service=outcome.service).inc()
    else:
        registry.counter(
            "session.rejected", service=outcome.service, reason=outcome.reason
        ).inc()
    if outcome.plan is not None:
        registry.histogram("session.psi", buckets=DEFAULT_PSI_BUCKETS).observe(
            outcome.plan.psi
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Execute one run and return its metrics.

    The run is fully deterministic given ``config`` (all randomness goes
    through named, seeded streams).  With ``config.observability`` set,
    the run collects a span trace and a metrics registry (attached to
    the result as ``observation``) and writes any configured export
    paths (JSON trace, CSV metrics, text summary) before returning.
    """
    observation: Optional[ObservationSession] = None
    if config.observability is not None and config.observability.enabled:
        observation = ObservationSession(config.observability)
        with observation:
            result = _run_simulation(config, observation)
        observation.export(
            meta={
                "algorithm": config.algorithm,
                "seed": config.seed,
                "rate_per_60tu": config.workload.rate_per_60tu,
                "horizon": config.workload.horizon,
                "wall_seconds": result.wall_seconds,
            }
        )
        return result
    return _run_simulation(config, None)


def _run_simulation(
    config: SimulationConfig, observation: Optional[ObservationSession]
) -> SimulationResult:
    started = _time.perf_counter()
    env = Environment()
    streams = RandomStreams(config.seed)

    if config.diversity_ratio is not None:
        families = compressed_service_families(config.diversity_ratio)
        services = {name: family.build_service(name) for name, family in families.items()}
    else:
        services = build_evaluation_services()

    grid = GridEnvironment(
        env,
        streams,
        services=services,
        capacity_range=config.capacity_range,
        trend_window=config.trend_window,
    )
    planner = _make_planner(config, streams)
    contention_index = CONTENTION_INDICES[config.contention_index]
    metrics = MetricsCollector(
        family_of_service={
            name: family.key.split("/")[0] for name, family in SERVICE_FAMILIES.items()
        }
    )
    metrics.keep_outcomes = config.keep_outcomes
    generator = WorkloadGenerator(config.workload, streams)
    stale_model = StaleObservationModel(
        config.staleness, streams.stream("staleness"), clock=lambda: env.now
    )

    def record_outcome(outcome: SessionOutcome) -> None:
        """Feed the run's collector and the observability layer."""
        metrics.record(outcome)
        _record_session_metrics(outcome)

    def arrivals():
        """Drive the Poisson arrival process on the DES engine."""
        for request in generator.generate():
            if request.arrival_time > env.now:
                yield env.timeout(request.arrival_time - env.now)
            session = ServiceSession(
                env,
                grid.coordinator,
                request.session_id,
                request.service,
                grid.binding_for(request.service, request.domain),
                planner,
                request.duration,
                demand_scale=request.demand_scale,
                component_hosts=grid.component_hosts_for(request.service, request.domain),
                observed_at=stale_model.schedule_for_session(),
                latency=config.latency,
                contention_index=contention_index,
                on_finish=record_outcome,
            )
            env.process(session.run())

    env.process(arrivals())
    env.run()

    # Every session released everything it reserved -- a structural
    # invariant of the brokers; violation means an accounting bug.
    grid.registry.assert_quiescent()

    return SimulationResult(
        config=config,
        metrics=metrics.snapshot(),
        paths=metrics.paths,
        wall_seconds=_time.perf_counter() - started,
        observation=observation,
    )


def sweep(
    base: SimulationConfig,
    parameter: str,
    values: Sequence,
    *,
    workload_field: bool = False,
) -> List[SimulationResult]:
    """Run ``base`` once per value of ``parameter``.

    ``workload_field=True`` varies a field of the nested
    :class:`WorkloadSpec` (e.g. ``rate_per_60tu``) instead of the config
    itself.
    """
    results: List[SimulationResult] = []
    for value in values:
        if workload_field:
            config = base.with_(workload=replace(base.workload, **{parameter: value}))
        else:
            config = base.with_(**{parameter: value})
        results.append(run_simulation(config))
    return results


def rate_sweep(
    algorithms: Iterable[str],
    rates: Sequence[float],
    *,
    base: Optional[SimulationConfig] = None,
) -> Dict[str, List[SimulationResult]]:
    """The figures' common shape: one success/QoS series per algorithm."""
    base = base if base is not None else SimulationConfig()
    out: Dict[str, List[SimulationResult]] = {}
    for algorithm in algorithms:
        out[algorithm] = sweep(
            base.with_(algorithm=algorithm), "rate_per_60tu", rates, workload_field=True
        )
    return out
