"""Experiment configuration, single runs, and parameter sweeps (§5).

:func:`run_simulation` executes one full simulated run: build the
figure-9 grid, generate the Poisson workload, plan + reserve + hold +
release every session with the configured algorithm, and return the
collected metrics.  :func:`sweep` maps a config factory over a parameter
list (the generation-rate sweeps of figures 11-13).

Sweeps execute through a *runner*: the default
:class:`SerialSweepRunner` runs in-process, while
:class:`ParallelSweepRunner` fans runs out over a process pool.  Runs
are pure functions of their config (all randomness goes through named,
seed-derived streams), so parallel results are byte-identical to serial
ones.  ``REPRO_SWEEP_WORKERS=<n>`` in the environment makes every sweep
parallel by default; :func:`parallel_sweeps` does the same for one
block of code.
"""

from __future__ import annotations

import os as _os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import PurePath
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as _np

from repro.core.errors import ModelError
from repro.core.planner import BasicPlanner, RandomPlanner
from repro.core.resources import (
    headroom_contention_index,
    log_contention_index,
    ratio_contention_index,
)
from repro.core.tradeoff import TradeoffPlanner
from repro.des.engine import Environment
from repro.des.rng import RandomStreams
from repro.faults.coordinator import FaultTolerantCoordinator
from repro.faults.injector import FaultInjector
from repro.faults.invariants import assert_capacity_conserved
from repro.faults.plan import FAULT_SEED_INDEX, FaultConfig, FaultPlan
from repro.obs import (
    ObservabilityConfig,
    ObservationSession,
    ObservationSummary,
    reset_worker_observability,
)
from repro.obs import events as _obs_events
from repro.obs.events import EventLog
from repro.obs.metrics import DEFAULT_PSI_BUCKETS, active_registry
from repro.obs.monitor import AdaptationPolicy, MonitorConfig, OnlineMonitor
from repro.runtime.session import ServiceSession, SessionOutcome
from repro.sim.environment import GridEnvironment
from repro.sim.metrics import MetricsCollector, MetricsSnapshot, PathCensus
from repro.sim.services import (
    evaluation_family_keys,
    evaluation_services_for,
)
from repro.sim.staleness import StaleObservationModel
from repro.sim.workload import WorkloadGenerator, WorkloadSpec

CONTENTION_INDICES = {
    "ratio": ratio_contention_index,
    "headroom": headroom_contention_index,
    "log": log_contention_index,
}

ALGORITHMS = ("basic", "tradeoff", "random")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that defines one run; defaults match §5.1."""

    algorithm: str = "basic"
    seed: int = 0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    capacity_range: Tuple[float, float] = (1000.0, 4000.0)
    #: T of the tradeoff policy's averaging window (3 TU in §5's runs).
    trend_window: float = 3.0
    #: E of §5.2.4: observations may be up to E time units stale.
    staleness: float = 0.0
    #: Optional establishment latency (protocol round-trip, §4.2).
    latency: float = 0.0
    #: §5.2.5: compress requirement diversity to this max/min ratio.
    diversity_ratio: Optional[float] = None
    #: psi definition (paper footnote 2); one of CONTENTION_INDICES.
    contention_index: str = "ratio"
    #: The §4.1.2 Dijkstra tie-breaking rule (ablation switch).
    tie_break: bool = True
    #: Retain individual SessionOutcome records (memory-heavy).
    keep_outcomes: bool = False
    #: Tracing/metrics collection and export (None = fully disabled,
    #: the zero-overhead default).  See :mod:`repro.obs`.
    observability: Optional[ObservabilityConfig] = None
    #: Fault schedule + recovery policy (None = the plain coordinator;
    #: a zero FaultConfig routes through the fault-tolerant coordinator
    #: but is regression-tested byte-identical).  See :mod:`repro.faults`.
    faults: Optional[FaultConfig] = None
    #: Online monitoring plane: streaming drift detection, SLO watchdogs
    #: and (with ``adapt=True``) §5 renegotiation of live sessions.
    #: None = no monitor subscribed, zero overhead.  See
    #: :mod:`repro.obs.monitor`.
    monitoring: Optional[MonitorConfig] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ModelError(f"unknown algorithm {self.algorithm!r}; pick from {ALGORITHMS}")
        if self.contention_index not in CONTENTION_INDICES:
            raise ModelError(
                f"unknown contention index {self.contention_index!r}; "
                f"pick from {sorted(CONTENTION_INDICES)}"
            )
        if self.staleness < 0 or self.latency < 0:
            raise ModelError("staleness and latency must be >= 0")

    def with_(self, **changes) -> "SimulationConfig":
        """Copy of this config with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class SimulationResult:
    """Metrics of one finished run."""

    config: SimulationConfig
    metrics: MetricsSnapshot
    paths: PathCensus
    wall_seconds: float
    #: The run's tracer + metrics registry (None unless the config
    #: enabled observability).  Dropped when the result crosses a
    #: process boundary; see :attr:`observation_summary`.
    observation: Optional[ObservationSession] = None
    #: Picklable digest of the observation (span totals + metrics
    #: snapshot), set by :meth:`detached` -- what pool workers ship back
    #: in place of the live session.
    observation_summary: Optional[ObservationSummary] = None
    #: Fault-injection digest of the run (None when the config carried
    #: no fault schedule): injected-fault counts by kind plus the number
    #: of orphaned leases the end-of-run reaper reclaimed.  Plain ints,
    #: so it survives the process boundary of parallel sweeps.
    fault_stats: Optional[Dict[str, int]] = None
    #: Digest of the online monitoring plane (None when the config
    #: carried no :class:`~repro.obs.monitor.MonitorConfig`): the
    #: :meth:`OnlineMonitor.report` document -- estimators per broker,
    #: drift/SLO counts and the adaptation outcomes.  Plain JSON types,
    #: so it survives the process boundary of parallel sweeps.
    monitor_stats: Optional[Dict[str, object]] = None

    @property
    def success_rate(self) -> float:
        """Fraction of attempted sessions successfully established."""
        return self.metrics.success_rate

    @property
    def avg_qos_level(self) -> float:
        """Mean numeric QoS level over successful sessions."""
        return self.metrics.avg_qos_level

    def detached(self) -> "SimulationResult":
        """A picklable copy safe to ship across a process boundary.

        The live :class:`ObservationSession` (tracer + registry object
        graphs) is replaced by its :class:`ObservationSummary`; all
        exports configured on the run have already been written inside
        the worker by then.  A result without an observation is returned
        unchanged.
        """
        if self.observation is None:
            return self
        return replace(
            self,
            observation=None,
            observation_summary=self.observation.summarize(),
        )


def _make_planner(config: SimulationConfig, streams: RandomStreams):
    if config.algorithm == "basic":
        return BasicPlanner(tie_break=config.tie_break)
    if config.algorithm == "tradeoff":
        return TradeoffPlanner(tie_break=config.tie_break)
    return RandomPlanner(rng=streams.stream("random-planner"))


def _record_session_metrics(outcome: SessionOutcome) -> None:
    """Per-session outcome counters/histograms (no-op when disabled)."""
    registry = active_registry()
    if registry is None:
        return
    if outcome.success:
        registry.counter("session.admitted", service=outcome.service).inc()
        if outcome.plan is not None and outcome.plan.end_to_end_rank > 0:
            # Admitted, but below the service's top end-to-end level --
            # the trade-off/feasibility degradation the paper trades
            # against success rate.
            registry.counter("session.degraded", service=outcome.service).inc()
    else:
        registry.counter(
            "session.rejected", service=outcome.service, reason=outcome.reason
        ).inc()
    if outcome.plan is not None:
        registry.histogram("session.psi", buckets=DEFAULT_PSI_BUCKETS).observe(
            outcome.plan.psi
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Execute one run and return its metrics.

    The run is fully deterministic given ``config`` (all randomness goes
    through named, seeded streams).  With ``config.observability`` set,
    the run collects a span trace and a metrics registry (attached to
    the result as ``observation``) and writes any configured export
    paths (JSON trace, CSV metrics, text summary) before returning.
    """
    observation: Optional[ObservationSession] = None
    if config.observability is not None and config.observability.enabled:
        observation = ObservationSession(config.observability)
        with observation:
            result = _run_simulation(config, observation)
        observation.export(
            meta={
                "algorithm": config.algorithm,
                "seed": config.seed,
                "rate_per_60tu": config.workload.rate_per_60tu,
                "horizon": config.workload.horizon,
                "wall_seconds": result.wall_seconds,
            }
        )
        return result
    return _run_simulation(config, None)


def _run_simulation(
    config: SimulationConfig, observation: Optional[ObservationSession]
) -> SimulationResult:
    started = _time.perf_counter()
    env = Environment()
    streams = RandomStreams(config.seed)

    services = evaluation_services_for(config.diversity_ratio)

    grid = GridEnvironment(
        env,
        streams,
        services=services,
        capacity_range=config.capacity_range,
        trend_window=config.trend_window,
    )
    injector: Optional[FaultInjector] = None
    if config.faults is not None:
        # The fault seed derives from the run seed through a reserved
        # spawn-key index, so fault streams are independent of every
        # workload/planner stream and parallel sweeps stay byte-identical.
        plan = FaultPlan.generate(
            config.faults,
            seed=derive_run_seed(config.seed, FAULT_SEED_INDEX),
            horizon=config.workload.horizon,
            hosts=sorted(grid.proxies),
        )
        injector = FaultInjector(plan, clock=lambda: env.now)
        grid.coordinator = FaultTolerantCoordinator(
            grid.registry, grid.model_store, grid.proxies, injector=injector, env=env
        )
    planner = _make_planner(config, streams)
    contention_index = CONTENTION_INDICES[config.contention_index]
    metrics = MetricsCollector(family_of_service=evaluation_family_keys())
    metrics.keep_outcomes = config.keep_outcomes
    generator = WorkloadGenerator(config.workload, streams)
    stale_model = StaleObservationModel(
        config.staleness, streams.stream("staleness"), clock=lambda: env.now
    )

    monitor: Optional[OnlineMonitor] = None
    policy: Optional[AdaptationPolicy] = None
    private_log: Optional[EventLog] = None
    if config.monitoring is not None:
        stream_log = _obs_events.active_event_log()
        if stream_log is None:
            # The monitor feeds off the event stream even when the run
            # is not otherwise observed; a capacity-1 private log keeps
            # storage bounded (subscribers see every event regardless).
            stream_log = private_log = EventLog(capacity=1)
            _obs_events.install(private_log)
        if config.monitoring.adapt:
            policy = AdaptationPolicy(grid.coordinator, config.monitoring)
        monitor = OnlineMonitor(config.monitoring, log=stream_log, policy=policy)
        stream_log.subscribe(monitor.on_event)

    def record_outcome(outcome: SessionOutcome) -> None:
        """Feed the run's collector and the observability layer."""
        if policy is not None:
            outcome = policy.finalize_outcome(outcome)
            policy.unwatch(outcome.session_id)
        if monitor is not None:
            monitor.session_closed(outcome.session_id)
        metrics.record(outcome)
        _record_session_metrics(outcome)

    def arrivals():
        """Drive the Poisson arrival process on the DES engine."""
        for request in generator.generate():
            if request.arrival_time > env.now:
                yield env.timeout(request.arrival_time - env.now)
            binding = grid.binding_for(request.service, request.domain)
            component_hosts = grid.component_hosts_for(request.service, request.domain)
            if policy is not None:
                policy.watch(
                    request.session_id,
                    service_name=request.service,
                    binding=binding,
                    planner=planner,
                    component_hosts=component_hosts,
                    demand_scale=request.demand_scale,
                )
            session = ServiceSession(
                env,
                grid.coordinator,
                request.session_id,
                request.service,
                binding,
                planner,
                request.duration,
                demand_scale=request.demand_scale,
                component_hosts=component_hosts,
                observed_at=stale_model.schedule_for_session(),
                latency=config.latency,
                contention_index=contention_index,
                on_finish=record_outcome,
            )
            env.process(session.run())

    env.process(arrivals())
    try:
        env.run()
    finally:
        if monitor is not None and monitor.log is not None:
            monitor.log.unsubscribe(monitor.on_event)
        if private_log is not None:
            _obs_events.uninstall()

    fault_stats: Optional[Dict[str, int]] = None
    if injector is not None:
        # The lease watchdogs reclaim expired orphans on time; anything
        # still pending (TTL beyond the last event) is force-reaped so
        # the quiescence invariant below sees clean books.
        assert_capacity_conserved(grid.registry, grid.proxies)
        grid.coordinator.reap_orphans(force=True)
        fault_stats = dict(injector.injected_counts())
        fault_stats["orphans_reaped"] = grid.coordinator.leases_reaped

    monitor_stats: Optional[Dict[str, object]] = None
    if monitor is not None:
        monitor_stats = monitor.report()
        if observation is not None:
            observation.monitoring = monitor_stats

    # Every session released everything it reserved -- a structural
    # invariant of the brokers; violation means an accounting bug.
    grid.registry.assert_quiescent()

    return SimulationResult(
        config=config,
        metrics=metrics.snapshot(),
        paths=metrics.paths,
        wall_seconds=_time.perf_counter() - started,
        observation=observation,
        fault_stats=fault_stats,
        monitor_stats=monitor_stats,
    )


# -- sweep runners ------------------------------------------------------------

#: Environment variable holding a worker count; when set, every sweep
#: that does not pass an explicit runner goes parallel with that many
#: workers (the CI smoke of the parallel path sets this to 2).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def derive_run_seed(base_seed: int, index: int) -> int:
    """Deterministic per-run seed for run ``index`` of a batch.

    Derived through :class:`numpy.random.SeedSequence` spawn keys so the
    seeds are statistically independent of each other *and* of the base
    seed, yet a pure function of ``(base_seed, index)`` -- the property
    that makes parallel batches byte-identical to serial ones.
    """
    sequence = _np.random.SeedSequence(entropy=base_seed, spawn_key=(index,))
    return int(sequence.generate_state(1)[0])


def _worker_initializer() -> None:
    """Runs once in each pool worker before it takes any work.

    A forked worker inherits the parent's module-level observability
    handles (active tracer/registry and session marker); clearing them
    gives each worker isolated, no-op handles until its own runs install
    their sessions.
    """
    reset_worker_observability()


def _execute_detached(config: SimulationConfig) -> SimulationResult:
    """Worker entry point: run one config, return a picklable result.

    Exports (JSON trace / CSV metrics / text summary) happen inside
    :func:`run_simulation`, i.e. inside the worker, before the live
    observation is replaced by its summary.
    """
    return run_simulation(config).detached()


#: The batch a pool worker operates on, installed once per worker by
#: :func:`_batch_worker_initializer`.  Tasks then name their config by
#: *index*, so the per-task IPC payload is one integer instead of a
#: pickled config per task.
_WORKER_CONFIGS: Optional[List[SimulationConfig]] = None


def _batch_worker_initializer(configs: Sequence[SimulationConfig]) -> None:
    """Install the read-only config batch in a pool worker (runs once).

    The batch crosses the process boundary exactly once per worker, via
    the pool's ``initargs``; :func:`_worker_initializer` then isolates
    the worker's observability handles as for any forked worker.
    """
    global _WORKER_CONFIGS
    _WORKER_CONFIGS = list(configs)
    _worker_initializer()


def _execute_batch_index(index: int) -> SimulationResult:
    """Worker entry point of the batched pool: run config ``index``."""
    assert _WORKER_CONFIGS is not None, "worker initializer did not run"
    return _execute_detached(_WORKER_CONFIGS[index])


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(_os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return _os.cpu_count() or 1


def _derive_export_paths(configs: Sequence[SimulationConfig]) -> List[SimulationConfig]:
    """Give each run of a batch its own export files.

    A batch whose configs share export paths would have every run
    overwrite the previous run's files (serial) or race on them
    (parallel).  For batches of more than one config, ``.runNNN`` is
    inserted before each path's extension -- applied identically for the
    serial and parallel runners so both produce the same files and, via
    the rewritten configs, byte-identical results.
    """
    if len(configs) <= 1:
        return list(configs)

    def rewrite(path: Optional[str], index: int) -> Optional[str]:
        if not path:
            return path
        pure = PurePath(path)
        return str(pure.with_name(f"{pure.stem}.run{index:03d}{pure.suffix}"))

    derived: List[SimulationConfig] = []
    for index, config in enumerate(configs):
        obs = config.observability
        if obs is None or not (obs.trace_path or obs.metrics_path or obs.summary_path):
            derived.append(config)
            continue
        derived.append(
            config.with_(
                observability=replace(
                    obs,
                    trace_path=rewrite(obs.trace_path, index),
                    metrics_path=rewrite(obs.metrics_path, index),
                    summary_path=rewrite(obs.summary_path, index),
                )
            )
        )
    return derived


@dataclass(frozen=True)
class SerialSweepRunner:
    """Run a batch in-process, in order.

    Results keep their live :class:`ObservationSession` attached, which
    is what interactive inspection (and the seed's tests) rely on.
    """

    def run(self, configs: Sequence[SimulationConfig]) -> List[SimulationResult]:
        return [run_simulation(config) for config in configs]


@dataclass(frozen=True)
class ParallelSweepRunner:
    """Run a batch over a process pool.

    Each run is a pure function of its config (all randomness flows
    through named streams seeded from ``config.seed``), so results are
    byte-identical to :class:`SerialSweepRunner` -- only wall time and
    the form of the observation differ: workers write any configured
    exports themselves and ship back a detached
    :class:`~repro.obs.ObservationSummary` instead of the live session
    (live tracers/registries are not picklable and must not cross a
    process boundary).

    Three properties keep the pool from ever running *slower* than
    serial (the committed 0.85x regression this design replaces):

    * the worker count is clamped to the batch size **and** to the CPUs
      the process may run on (``clamp_to_cpus``) -- oversubscribing a
      small machine trades cache locality for context switches and was
      the dominant cost of the regression;
    * one effective worker means no pool at all: the batch runs inline
      (still returning detached results, so the output shape does not
      depend on the worker count);
    * the config batch crosses the process boundary once per *worker*
      (via the pool initializer), not once per task, and tasks are
      dispatched as chunked index ranges -- per-task IPC is one integer
      out, one detached summary back.
    """

    #: Pool size; None = all available CPUs.  Values <= 1 (or batches of
    #: one) run inline, still returning detached results so the output
    #: shape does not depend on the worker count.
    max_workers: Optional[int] = None
    #: Indices dispatched per pool task; None derives a chunk size that
    #: gives each worker ~4 chunks (dynamic load balancing without
    #: per-task dispatch overhead).
    chunk_size: Optional[int] = None
    #: Never run more workers than CPUs this process can use.  Opt out
    #: to measure oversubscription or force a pool on a small host.
    clamp_to_cpus: bool = True

    def effective_workers(self, batch_size: int) -> int:
        """The worker count a batch of ``batch_size`` would actually use."""
        workers = self.max_workers if self.max_workers is not None else _available_cpus()
        workers = min(workers, batch_size)
        if self.clamp_to_cpus:
            workers = min(workers, _available_cpus())
        return max(workers, 0)

    def effective_chunk_size(self, batch_size: int, workers: int) -> int:
        """Indices per pool task (explicit ``chunk_size`` wins)."""
        if self.chunk_size is not None:
            if self.chunk_size < 1:
                raise ModelError(f"chunk_size must be >= 1, got {self.chunk_size!r}")
            return self.chunk_size
        return max(1, batch_size // (workers * 4))

    def run(self, configs: Sequence[SimulationConfig]) -> List[SimulationResult]:
        configs = list(configs)
        workers = self.effective_workers(len(configs))
        if workers <= 1 or len(configs) <= 1:
            return [_execute_detached(config) for config in configs]
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_batch_worker_initializer,
            initargs=(configs,),
        ) as pool:
            return list(
                pool.map(
                    _execute_batch_index,
                    range(len(configs)),
                    chunksize=self.effective_chunk_size(len(configs), workers),
                )
            )


#: Session-wide default runner override (set via set_default_sweep_runner
#: or the parallel_sweeps context manager); None = consult WORKERS_ENV,
#: then fall back to serial.
_DEFAULT_RUNNER = None


def default_sweep_runner():
    """The runner used when a sweep is not passed one explicitly."""
    if _DEFAULT_RUNNER is not None:
        return _DEFAULT_RUNNER
    env_workers = _os.environ.get(WORKERS_ENV)
    if env_workers:
        return ParallelSweepRunner(max_workers=int(env_workers))
    return SerialSweepRunner()


def set_default_sweep_runner(runner) -> None:
    """Install (or with None, clear) the session-wide default runner."""
    global _DEFAULT_RUNNER
    _DEFAULT_RUNNER = runner


@contextmanager
def parallel_sweeps(max_workers: Optional[int] = None) -> Iterator[ParallelSweepRunner]:
    """Make every sweep in the block parallel by default.

    ::

        with parallel_sweeps(4):
            results = rate_sweep(ALGORITHMS, rates)
    """
    previous = _DEFAULT_RUNNER
    runner = ParallelSweepRunner(max_workers=max_workers)
    set_default_sweep_runner(runner)
    try:
        yield runner
    finally:
        set_default_sweep_runner(previous)


def run_configs(
    configs: Sequence[SimulationConfig], *, runner=None
) -> List[SimulationResult]:
    """Execute a batch of configs through a sweep runner.

    The central execution funnel: every sweep builds its config list and
    hands it here, so serial and parallel execution see the exact same
    configs (including the per-run export-path derivation) and produce
    byte-identical metrics.
    """
    runner = runner if runner is not None else default_sweep_runner()
    return runner.run(_derive_export_paths(configs))


# -- sweeps -------------------------------------------------------------------


def sweep(
    base: SimulationConfig,
    parameter: str,
    values: Sequence,
    *,
    workload_field: bool = False,
    runner=None,
) -> List[SimulationResult]:
    """Run ``base`` once per value of ``parameter``.

    ``workload_field=True`` varies a field of the nested
    :class:`WorkloadSpec` (e.g. ``rate_per_60tu``) instead of the config
    itself.  ``runner`` picks the execution strategy (default: serial,
    or parallel under :func:`parallel_sweeps` / ``REPRO_SWEEP_WORKERS``).
    """
    configs: List[SimulationConfig] = []
    for value in values:
        if workload_field:
            configs.append(base.with_(workload=replace(base.workload, **{parameter: value})))
        else:
            configs.append(base.with_(**{parameter: value}))
    return run_configs(configs, runner=runner)


def rate_sweep(
    algorithms: Iterable[str],
    rates: Sequence[float],
    *,
    base: Optional[SimulationConfig] = None,
    runner=None,
) -> Dict[str, List[SimulationResult]]:
    """The figures' common shape: one success/QoS series per algorithm.

    All ``len(algorithms) * len(rates)`` runs form one batch, so a
    parallel runner overlaps runs across algorithms, not just within
    one series.
    """
    base = base if base is not None else SimulationConfig()
    algorithms = list(algorithms)
    configs: List[SimulationConfig] = []
    for algorithm in algorithms:
        for rate in rates:
            configs.append(
                base.with_(
                    algorithm=algorithm,
                    workload=replace(base.workload, rate_per_60tu=rate),
                )
            )
    results = run_configs(configs, runner=runner)
    out: Dict[str, List[SimulationResult]] = {}
    for position, algorithm in enumerate(algorithms):
        out[algorithm] = results[position * len(rates) : (position + 1) * len(rates)]
    return out
