"""Session workload generation (paper §5.1).

Sessions arrive in a Poisson process at a configurable average rate
(expressed, as in the paper, in *sessions per 60 time units*).  Each
session:

* originates from a uniformly random domain ``D_1..D_8``;
* requests one of the four services except ``S_ceil(i/2)`` (the service
  whose main server is the domain's own proxy host), weighted by the
  current service popularity, which drifts over time ("we dynamically
  change the probability that each service is requested");
* is *normal* or *fat* at ratio 1:2; a fat session's requirements are
  ``N`` times the base values with N in {2, 10};
* is *short* or *long* at ratio 2:1; durations lie in [20, 600] time
  units with 60 as the short/long boundary.

The paper fixes the ratios and the [20, 600] range but not the inner
laws; this module's defaults (documented per field) realise the stated
constraints and are all overridable via :class:`WorkloadSpec`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ModelError
from repro.des.rng import RandomStreams


@dataclass(frozen=True)
class SessionArrival:
    """One generated arrival, before any planning happens.

    This is the *workload-side* record (when and what a client asked
    for); the *protocol-side* per-session establishment arguments are
    :class:`repro.runtime.messages.SessionRequest`.  The two used to
    share a name -- use :meth:`to_session_request` to convert an arrival
    into the protocol message once its binding is known.
    """

    session_id: str
    arrival_time: float
    domain: str
    service: str
    demand_scale: float
    duration: float

    @property
    def fat(self) -> bool:
        """True for a requirement-scaled ('fat') session (§5.1)."""
        return self.demand_scale > 1.0

    @property
    def long(self) -> bool:
        """True for a session of at least 60 time units (§5.1).

        The boundary is :data:`SessionClassifier.LONG_BOUNDARY`,
        *inclusive* on the long side: a long-law draw of exactly 60.0
        (``long_range`` includes its lower bound) is a long session.
        """
        return SessionClassifier.is_long(self.duration)

    @property
    def session_class(self) -> str:
        """The §5.2.3 class name of this arrival."""
        return SessionClassifier.classify(self.fat, self.long)

    def to_session_request(
        self,
        binding,
        *,
        component_hosts: Optional[Dict[str, str]] = None,
        source_label: Optional[str] = None,
    ):
        """Convert to a :class:`repro.runtime.messages.SessionRequest`.

        The arrival carries *what* was asked for; ``binding`` (and
        optionally ``component_hosts``) say *where* it lands -- typically
        ``GridEnvironment.binding_for(arrival.service, arrival.domain)``.
        The load generator and the service daemon's batch endpoint both
        go through this converter.
        """
        from repro.runtime.messages import SessionRequest as _ProtocolRequest

        return _ProtocolRequest(
            session_id=self.session_id,
            service_name=self.service,
            binding=binding,
            component_hosts=component_hosts,
            source_label=source_label,
            demand_scale=self.demand_scale,
        )


def __getattr__(name: str):
    if name == "SessionRequest":
        warnings.warn(
            "repro.sim.workload.SessionRequest was renamed to SessionArrival "
            "(it collided with the distinct repro.runtime.messages."
            "SessionRequest batch-planning input); update the import",
            DeprecationWarning,
            stacklevel=2,
        )
        return SessionArrival
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of the §5.1 workload; defaults reproduce the paper's setup."""

    #: Average generation rate, sessions per 60 time units (60..240 in §5).
    rate_per_60tu: float = 80.0
    #: Simulated horizon; arrivals stop here (10800 TU in §5).
    horizon: float = 10800.0
    #: P(session is normal); the paper's normal:fat ratio is 1:2.
    p_normal: float = 1.0 / 3.0
    #: Fat multipliers and their probabilities (N "is either 2 or 10";
    #: the split is unspecified -- the default favours N=2 so that x10
    #: monsters are rare but present, matching Tables 3-4's fat-class
    #: success rates qualitatively).
    fat_factors: Tuple[float, ...] = (2.0, 10.0)
    fat_weights: Tuple[float, ...] = (0.75, 0.25)
    #: P(short); the paper's long:short ratio is 1:2.
    p_short: float = 2.0 / 3.0
    #: Duration laws: short ~ U(short_range), long ~ U(long_range); the
    #: boundary at 60 TU and the overall [20, 600] range are the paper's.
    short_range: Tuple[float, float] = (20.0, 60.0)
    long_range: Tuple[float, float] = (60.0, 600.0)
    #: How often the per-service request probabilities are redrawn.
    popularity_period: float = 600.0
    #: Dirichlet concentration for popularity redraws (1.0 = uniform on
    #: the simplex; larger = closer to uniform popularity).
    popularity_concentration: float = 1.0
    domains: Tuple[str, ...] = tuple(f"D{i}" for i in range(1, 9))
    services: Tuple[str, ...] = ("S1", "S2", "S3", "S4")

    def __post_init__(self) -> None:
        if self.rate_per_60tu <= 0:
            raise ModelError(f"rate must be positive, got {self.rate_per_60tu!r}")
        if self.horizon <= 0:
            raise ModelError(f"horizon must be positive, got {self.horizon!r}")
        if not 0 <= self.p_normal <= 1 or not 0 <= self.p_short <= 1:
            raise ModelError("probabilities must be within [0, 1]")
        if len(self.fat_factors) != len(self.fat_weights):
            raise ModelError("fat_factors and fat_weights must have equal length")
        if any(f <= 1.0 for f in self.fat_factors):
            raise ModelError("fat factors must exceed 1")

    @property
    def mean_interarrival(self) -> float:
        """Mean time between arrivals, in time units."""
        return 60.0 / self.rate_per_60tu


class SessionClassifier:
    """The §5.2.3 class taxonomy: {normal, fat} x {short, long}."""

    CLASSES = ("norm.-short", "norm.-long", "fat-short", "fat-long")

    #: The short/long duration boundary (60 TU in §5.1).  Long durations
    #: are drawn from ``long_range`` which *includes* its lower bound, so
    #: the boundary itself classifies as long.
    LONG_BOUNDARY = 60.0

    @staticmethod
    def is_long(duration: float) -> bool:
        """True for durations at or beyond :data:`LONG_BOUNDARY`."""
        return duration >= SessionClassifier.LONG_BOUNDARY

    @staticmethod
    def classify(fat: bool, long: bool) -> str:
        """Class name for a (fat, long) combination."""
        return f"{'fat' if fat else 'norm.'}-{'long' if long else 'short'}"


class PopularityDrift:
    """Time-varying service request probabilities.

    Weights are piecewise-constant over ``period``-long intervals, each
    drawn from a Dirichlet distribution.  Deterministic given the stream:
    interval k's weights do not depend on how often they are queried.
    """

    def __init__(
        self,
        services: Sequence[str],
        rng: np.random.Generator,
        period: float,
        concentration: float = 1.0,
    ) -> None:
        if period <= 0:
            raise ModelError(f"popularity period must be positive, got {period!r}")
        self.services = tuple(services)
        self.period = float(period)
        self._rng = rng
        self._concentration = float(concentration)
        self._weights_by_interval: Dict[int, np.ndarray] = {}

    def weights_at(self, time: float) -> Dict[str, float]:
        """Service request probabilities in effect at ``time``."""
        interval = int(time // self.period)
        weights = self._weights_by_interval.get(interval)
        if weights is None:
            # Draw the missing prefix in order so results are independent
            # of query pattern.
            for k in range(len(self._weights_by_interval), interval + 1):
                alpha = np.full(len(self.services), self._concentration)
                self._weights_by_interval[k] = self._rng.dirichlet(alpha)
            weights = self._weights_by_interval[interval]
        return {service: float(w) for service, w in zip(self.services, weights)}


class WorkloadGenerator:
    """Generates the full arrival sequence for one simulation run."""

    def __init__(
        self,
        spec: WorkloadSpec,
        streams: RandomStreams,
        *,
        excluded_service: Optional[Dict[str, str]] = None,
    ) -> None:
        """``excluded_service`` maps domain -> the service it never
        requests (§5.1's S_ceil(i/2) rule); defaults to that rule."""
        self.spec = spec
        self.streams = streams
        if excluded_service is None:
            excluded_service = {
                domain: f"S{(int(domain[1:]) + 1) // 2}" for domain in spec.domains
            }
        self.excluded_service = excluded_service
        self.popularity = PopularityDrift(
            spec.services,
            streams.stream("popularity"),
            spec.popularity_period,
            spec.popularity_concentration,
        )

    def __iter__(self) -> Iterator[SessionArrival]:
        return self.generate()

    def generate(self) -> Iterator[SessionArrival]:
        """Yield arrivals in time order until the horizon."""
        spec = self.spec
        time = 0.0
        counter = 0
        arrivals = self.streams.stream("arrivals")
        classes = self.streams.stream("classes")
        placement = self.streams.stream("placement")
        while True:
            time += float(arrivals.exponential(spec.mean_interarrival))
            if time >= spec.horizon:
                return
            counter += 1
            domain = spec.domains[int(placement.integers(len(spec.domains)))]
            service = self._pick_service(domain, time, placement)
            demand_scale = self._pick_scale(classes)
            duration = self._pick_duration(classes)
            yield SessionArrival(
                session_id=f"ssn-{counter}",
                arrival_time=time,
                domain=domain,
                service=service,
                demand_scale=demand_scale,
                duration=duration,
            )

    # -- draws ------------------------------------------------------------

    def _pick_service(self, domain: str, time: float, rng: np.random.Generator) -> str:
        weights = self.popularity.weights_at(time)
        excluded = self.excluded_service.get(domain)
        candidates = [s for s in self.spec.services if s != excluded]
        raw = np.array([weights[s] for s in candidates])
        if raw.sum() <= 0:
            raw = np.ones(len(candidates))
        probabilities = raw / raw.sum()
        return candidates[int(rng.choice(len(candidates), p=probabilities))]

    def _pick_scale(self, rng: np.random.Generator) -> float:
        if rng.random() < self.spec.p_normal:
            return 1.0
        weights = np.asarray(self.spec.fat_weights, dtype=float)
        index = int(rng.choice(len(self.spec.fat_factors), p=weights / weights.sum()))
        return float(self.spec.fat_factors[index])

    def _pick_duration(self, rng: np.random.Generator) -> float:
        if rng.random() < self.spec.p_short:
            low, high = self.spec.short_range
        else:
            low, high = self.spec.long_range
        return float(rng.uniform(low, high))
