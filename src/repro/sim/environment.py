"""The simulated reservation-enabled Grid (paper §5.1, figure 9).

Assembles, on top of the DES engine:

* the figure-9 topology (4 hosts in full mesh, 8 domains, 14 links);
* one CPU-style :class:`LocalResourceBroker` per host (``hS`` and ``hP``
  are "assumed to be of the same type", §5.1, so server and proxy
  components of co-located sessions share one pool);
* one :class:`LinkBandwidthBroker` per link and two-level
  :class:`PathBroker` end-to-end network resources for every host-host
  and host-domain pair that sessions use;
* one :class:`QoSProxy` per host and per client domain, a shared
  :class:`ModelStore` with the S1-S4 definitions, and the
  :class:`ReservationCoordinator`.

Initial resource capacities are drawn uniformly from the configured
range (1000-4000 units in the paper).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.brokers.link import LinkBandwidthBroker
from repro.brokers.local import LocalResourceBroker
from repro.brokers.path import PathBroker
from repro.brokers.registry import BrokerRegistry
from repro.core.component import Binding
from repro.core.errors import ModelError
from repro.core.service import DistributedService
from repro.des.engine import Environment
from repro.des.rng import RandomStreams
from repro.network.routing import RoutingTable
from repro.network.topology import Topology, build_figure9_topology
from repro.obs import metrics as _metrics
from repro.runtime.coordinator import ReservationCoordinator
from repro.runtime.model_store import ModelStore
from repro.runtime.proxy import QoSProxy
from repro.sim.services import (
    SLOT_NET_PC,
    SLOT_NET_SP,
    SLOT_PROXY,
    SLOT_SERVER,
    build_evaluation_services,
)


def _pair_id(a: str, b: str) -> str:
    """Canonical id for the end-to-end network resource between a and b."""
    first, second = sorted((a, b))
    return f"net:{first}-{second}"


class GridEnvironment:
    """Figure 9's environment, ready to run sessions on."""

    #: Main server host of each service (S_i is served by H_i, §5.1).
    SERVICE_SERVERS = {"S1": "H1", "S2": "H2", "S3": "H3", "S4": "H4"}

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        *,
        services: Optional[Mapping[str, DistributedService]] = None,
        capacity_range: Tuple[float, float] = (1000.0, 4000.0),
        trend_window: float = 3.0,
        topology: Optional[Topology] = None,
        service_servers: Optional[Mapping[str, str]] = None,
    ) -> None:
        low, high = capacity_range
        if not (0 < low <= high):
            raise ModelError(f"invalid capacity range {capacity_range!r}")
        self.env = env
        self.streams = streams
        self.topology = topology if topology is not None else build_figure9_topology()
        self.routing = RoutingTable(self.topology)
        self.registry = BrokerRegistry()
        clock = lambda: env.now  # noqa: E731 - tiny closure over the clock

        capacity_rng = streams.stream("capacities")

        def draw_capacity() -> float:
            """One capacity draw from the configured uniform range."""
            return float(capacity_rng.uniform(low, high))

        # Host-local CPU pools.
        self.cpu_brokers: Dict[str, LocalResourceBroker] = {}
        for host in sorted(self.topology.hosts):
            broker = LocalResourceBroker(
                host, "cpu", draw_capacity(), clock=clock, trend_window=trend_window
            )
            self.registry.register(broker)
            self.cpu_brokers[host] = broker

        # Per-link bandwidth brokers (lower level).
        self.link_brokers: Dict[str, LinkBandwidthBroker] = {}
        for link_id in sorted(self.topology.links):
            link = self.topology.links[link_id]
            broker = LinkBandwidthBroker(
                link_id,
                link.endpoint_a,
                link.endpoint_b,
                draw_capacity(),
                clock=clock,
                trend_window=trend_window,
            )
            self.registry.register(broker)
            self.link_brokers[link_id] = broker

        # End-to-end path brokers (higher level): host<->host pairs for
        # lPS and proxy-host<->domain pairs for lCP.
        self.path_brokers: Dict[str, PathBroker] = {}
        hosts = sorted(self.topology.hosts)
        for index, a in enumerate(hosts):
            for b in hosts[index + 1 :]:
                self._add_path_broker(a, b, clock, trend_window)
        for domain in sorted(self.topology.domains):
            proxy_host = self.topology.domains[domain].proxy_host
            self._add_path_broker(proxy_host, domain, clock, trend_window)

        # QoSProxies: one per host and per domain.  A path broker is
        # owned by the receiver-side proxy where the direction is known
        # (domain access links: the domain receives); host-host resources
        # are bidirectional, owned by the lexicographically first host.
        self.proxies: Dict[str, QoSProxy] = {}
        for node in sorted(self.topology.hosts) + sorted(self.topology.domains):
            self.proxies[node] = QoSProxy(node, self.registry)
        for host, broker in self.cpu_brokers.items():
            self.proxies[host].own(broker.resource_id)
        for resource_id, broker in self.path_brokers.items():
            endpoints = resource_id[len("net:") :].split("-")
            domains = [e for e in endpoints if e in self.topology.domains]
            owner = domains[0] if domains else sorted(endpoints)[0]
            self.proxies[owner].own(resource_id)

        # Model store + coordinator (centralised approach, §3).
        self.model_store = ModelStore()
        service_map = services if services is not None else build_evaluation_services()
        self.services: Dict[str, DistributedService] = dict(service_map)
        if service_servers is not None:
            self.service_servers: Dict[str, str] = dict(service_servers)
        else:
            self.service_servers = dict(self.SERVICE_SERVERS)
        self.model_store.register_all(self.services.values())
        self.coordinator = ReservationCoordinator(self.registry, self.model_store, self.proxies)

        # With observability enabled, publish the drawn capacities so
        # traces/exports are self-describing about the environment.
        registry_metrics = _metrics.active_registry()
        if registry_metrics is not None:
            for broker in self.registry.brokers():
                registry_metrics.gauge(
                    "broker.capacity", resource=broker.resource_id
                ).set(broker.capacity)

    def snapshot_utilization(self) -> Dict[str, float]:
        """Current utilization per broker; also refreshes the gauges."""
        registry_metrics = _metrics.active_registry()
        utilization: Dict[str, float] = {}
        for broker in self.registry.brokers():
            utilization[broker.resource_id] = broker.utilization()
            if registry_metrics is not None:
                labels = getattr(
                    broker, "_metric_labels", {"resource": broker.resource_id}
                )
                registry_metrics.gauge("broker.utilization", **labels).set(
                    broker.utilization()
                )
        return utilization

    def _add_path_broker(self, a: str, b: str, clock, trend_window: float) -> None:
        resource_id = _pair_id(a, b)
        route = self.routing.route(a, b)
        links = [self.link_brokers[link.link_id] for link in route]
        broker = PathBroker(resource_id, links, clock=clock, trend_window=trend_window)
        self.registry.register(broker)
        self.path_brokers[resource_id] = broker

    # -- session wiring (paper §5.1) ------------------------------------------

    def proxy_host_of_domain(self, domain: str) -> str:
        """The host running the proxy component for a domain's clients."""
        try:
            return self.topology.domains[domain].proxy_host
        except KeyError:
            raise ModelError(f"unknown domain {domain!r}") from None

    def server_of_service(self, service_name: str) -> str:
        """The main server host of an evaluation service (S_i -> H_i)."""
        try:
            return self.service_servers[service_name]
        except KeyError:
            raise ModelError(f"unknown evaluation service {service_name!r}") from None

    def binding_for(self, service_name: str, domain: str) -> Binding:
        """Bind a session's component slots to concrete resources.

        ``cS`` runs on the service's main server, ``cP`` on the domain's
        proxy host, ``cC`` at the client: ``hS``/``hP`` bind to the CPU
        pools, ``lPS`` to the server-proxy path, ``lCP`` to the
        proxy-domain access path.
        """
        server = self.server_of_service(service_name)
        proxy_host = self.proxy_host_of_domain(domain)
        if server == proxy_host:
            raise ModelError(
                f"session from {domain!r} for {service_name!r} would co-locate server "
                "and proxy; §5.1's exclusion rule forbids this combination"
            )
        return Binding(
            {
                ("cS", SLOT_SERVER): self.cpu_brokers[server].resource_id,
                ("cP", SLOT_PROXY): self.cpu_brokers[proxy_host].resource_id,
                ("cP", SLOT_NET_SP): _pair_id(server, proxy_host),
                ("cC", SLOT_NET_PC): _pair_id(proxy_host, domain),
            }
        )

    def component_hosts_for(self, service_name: str, domain: str) -> Dict[str, str]:
        """component -> host placement of one session (§5.1)."""
        return {
            "cS": self.server_of_service(service_name),
            "cP": self.proxy_host_of_domain(domain),
            "cC": domain,
        }

    def excluded_service_for_domain(self, domain: str) -> str:
        """§5.1: a client from D_i never requests S_ceil(i/2)."""
        index = int(domain[1:])
        return f"S{(index + 1) // 2}"

    def resource_ids(self) -> Tuple[str, ...]:
        """The registered resource ids, sorted."""
        return self.registry.resource_ids()
