"""Metrics collection for the evaluation (paper §5.2).

Tracks the paper's two key metrics -- overall reservation success rate
and average end-to-end QoS level of *successful* sessions -- plus the
secondary analyses: the per-class breakdown of §5.2.3, the reservation
path census of Tables 1-2, and the bottleneck-resource census backing
the claim that "every resource ... becomes the bottleneck resource on a
path for at least once".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.runtime.session import SessionOutcome
from repro.sim.workload import SessionClassifier


@dataclass
class ClassStats:
    """Counts for one {normal, fat} x {short, long} class."""

    attempts: int = 0
    successes: int = 0
    qos_level_sum: float = 0.0

    @property
    def success_rate(self) -> float:
        """Fraction of attempted sessions successfully established."""
        return self.successes / self.attempts if self.attempts else 0.0

    @property
    def avg_qos_level(self) -> float:
        """Mean numeric QoS level over successful sessions."""
        return self.qos_level_sum / self.successes if self.successes else 0.0


class ClassBreakdown:
    """§5.2.3's per-class success rates and QoS levels (Tables 3-4)."""

    def __init__(self) -> None:
        self._stats: Dict[str, ClassStats] = {
            name: ClassStats() for name in SessionClassifier.CLASSES
        }

    def record(self, outcome: SessionOutcome) -> None:
        """Record one observation."""
        name = SessionClassifier.classify(outcome.fat, outcome.duration > 60.0)
        stats = self._stats[name]
        stats.attempts += 1
        if outcome.success:
            stats.successes += 1
            stats.qos_level_sum += outcome.qos_level or 0

    def stats(self, class_name: str) -> ClassStats:
        """Stats object for one class."""
        return self._stats[class_name]

    def rows(self) -> List[Tuple[str, float, float, int]]:
        """(class, success_rate, avg_qos, attempts) rows in paper order."""
        return [
            (name, self._stats[name].success_rate, self._stats[name].avg_qos_level,
             self._stats[name].attempts)
            for name in SessionClassifier.CLASSES
        ]


class PathCensus:
    """Selected-reservation-path percentages (Tables 1-2).

    Keyed by (family key, path signature string).  Percentages are per
    family, over sessions for which a plan was computed (Tables 1-2
    count selections, so failed admissions with a computed plan still
    count as selections).
    """

    def __init__(self) -> None:
        self._counts: Dict[str, Counter] = {}

    def record(self, family_key: str, signature: str) -> None:
        """Record one observation."""
        self._counts.setdefault(family_key, Counter())[signature] += 1

    def total(self, family_key: str) -> int:
        """Total number of recorded selections for the family."""
        return sum(self._counts.get(family_key, Counter()).values())

    def percentages(self, family_key: str) -> List[Tuple[str, float]]:
        """(signature, percent) rows, most common first."""
        counter = self._counts.get(family_key, Counter())
        total = sum(counter.values())
        if not total:
            return []
        return [
            (signature, 100.0 * count / total)
            for signature, count in counter.most_common()
        ]

    def percentage_of(self, family_key: str, signature: str) -> float:
        """Selection percentage of one signature (0 when absent)."""
        counter = self._counts.get(family_key, Counter())
        total = sum(counter.values())
        return 100.0 * counter.get(signature, 0) / total if total else 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathCensus):
            return NotImplemented
        return self._counts == other._counts


@dataclass
class MetricsSnapshot:
    """Immutable summary extracted at the end of a run."""

    attempts: int
    successes: int
    success_rate: float
    avg_qos_level: float
    class_rows: List[Tuple[str, float, float, int]]
    bottleneck_counts: Dict[str, int]
    failure_reasons: Dict[str, int]
    per_service_attempts: Dict[str, int]
    per_service_successes: Dict[str, int]


class MetricsCollector:
    """Accumulates outcomes during a run."""

    def __init__(self, family_of_service: Optional[Mapping[str, str]] = None) -> None:
        """``family_of_service`` maps service name -> family key for the
        path census ("S1" -> "A" etc.); omit to skip census grouping."""
        self.attempts = 0
        self.successes = 0
        self.qos_level_sum = 0.0
        self.classes = ClassBreakdown()
        self.paths = PathCensus()
        self.bottlenecks: Counter = Counter()
        self.failure_reasons: Counter = Counter()
        self.per_service_attempts: Counter = Counter()
        self.per_service_successes: Counter = Counter()
        self._family_of_service = dict(family_of_service or {})
        self.outcomes: List[SessionOutcome] = []
        self.keep_outcomes = False

    def record(self, outcome: SessionOutcome) -> None:
        """Record one observation."""
        self.attempts += 1
        self.per_service_attempts[outcome.service] += 1
        self.classes.record(outcome)
        if self.keep_outcomes:
            self.outcomes.append(outcome)
        if outcome.plan is not None:
            family = self._family_of_service.get(outcome.service)
            if family is not None:
                self.paths.record(family, outcome.plan.signature_string())
            self.bottlenecks[outcome.plan.bottleneck_resource] += 1
        if outcome.success:
            self.successes += 1
            self.per_service_successes[outcome.service] += 1
            self.qos_level_sum += outcome.qos_level or 0
        else:
            self.failure_reasons[outcome.reason] += 1

    @property
    def success_rate(self) -> float:
        """Fraction of attempted sessions successfully established."""
        return self.successes / self.attempts if self.attempts else 0.0

    @property
    def avg_qos_level(self) -> float:
        """Mean numeric QoS level over successful sessions."""
        return self.qos_level_sum / self.successes if self.successes else 0.0

    def snapshot(self) -> MetricsSnapshot:
        """Collect availability observations for the given resources."""
        return MetricsSnapshot(
            attempts=self.attempts,
            successes=self.successes,
            success_rate=self.success_rate,
            avg_qos_level=self.avg_qos_level,
            class_rows=self.classes.rows(),
            bottleneck_counts=dict(self.bottlenecks),
            failure_reasons=dict(self.failure_reasons),
            per_service_attempts=dict(self.per_service_attempts),
            per_service_successes=dict(self.per_service_successes),
        )
