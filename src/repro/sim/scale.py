"""Scaled evaluation environments beyond figure 9.

The paper motivates the framework with Grid-scale meta-computing
environments (§6: Globus, Condor, Legion) but evaluates on a 4-host,
8-domain instance.  :func:`build_scaled_grid` generalises the setup:
``n`` server hosts in a mesh, ``d`` client domains per host, one
service per host (families A and B alternating), and the §5.1 exclusion
rule generalised so that a domain never requests the service whose main
server is its own proxy host.  Used by the scalability benchmark and
available to users who want a bigger playground.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.des.engine import Environment
from repro.des.rng import RandomStreams
from repro.network.topology import build_scaled_topology
from repro.sim.environment import GridEnvironment
from repro.sim.services import FAMILY_A, FAMILY_B
from repro.sim.workload import WorkloadSpec


def build_scaled_grid(
    env: Environment,
    streams: RandomStreams,
    num_hosts: int = 4,
    domains_per_host: int = 2,
    *,
    capacity_range: Tuple[float, float] = (1000.0, 4000.0),
    trend_window: float = 3.0,
    mesh: bool = True,
) -> GridEnvironment:
    """A GridEnvironment with ``num_hosts`` servers and services S1..Sn.

    Service ``S_i`` is served by ``H_i`` and uses family A when ``i`` is
    odd, family B when even (the paper's 4-host instance assigns A to
    S1/S4 and B to S2/S3; alternating preserves the families' load mix
    at any scale).
    """
    topology = build_scaled_topology(num_hosts, domains_per_host, mesh=mesh)
    services = {}
    service_servers: Dict[str, str] = {}
    for i in range(1, num_hosts + 1):
        family = FAMILY_A if i % 2 == 1 else FAMILY_B
        name = f"S{i}"
        services[name] = family.build_service(name)
        service_servers[name] = f"H{i}"
    return GridEnvironment(
        env,
        streams,
        services=services,
        capacity_range=capacity_range,
        trend_window=trend_window,
        topology=topology,
        service_servers=service_servers,
    )


def scaled_workload_spec(
    num_hosts: int,
    domains_per_host: int = 2,
    *,
    rate_per_60tu: float = 80.0,
    horizon: float = 1000.0,
    **overrides,
) -> WorkloadSpec:
    """A WorkloadSpec matching a scaled grid's domains and services.

    The generalised exclusion rule (a domain never requests the service
    of its own proxy host) is applied by :class:`WorkloadGenerator` when
    given the matching ``excluded_service`` map; build it with
    :func:`scaled_exclusions`.
    """
    domains = tuple(f"D{i}" for i in range(1, num_hosts * domains_per_host + 1))
    services = tuple(f"S{i}" for i in range(1, num_hosts + 1))
    return WorkloadSpec(
        rate_per_60tu=rate_per_60tu,
        horizon=horizon,
        domains=domains,
        services=services,
        **overrides,
    )


def scaled_exclusions(num_hosts: int, domains_per_host: int = 2) -> Dict[str, str]:
    """domain -> excluded service map for a scaled grid."""
    exclusions: Dict[str, str] = {}
    for i in range(1, num_hosts * domains_per_host + 1):
        host_index = (i + domains_per_host - 1) // domains_per_host
        exclusions[f"D{i}"] = f"S{host_index}"
    return exclusions
