"""repro -- QoS and contention-aware multi-resource reservation.

A from-scratch reproduction of Xu, Nahrstedt & Wichadakul, *QoS and
Contention-Aware Multi-Resource Reservation* (HPDC 2000): the
component-based QoS-Resource Model, the QRG planning algorithms (basic,
tradeoff, random baseline, and the DAG two-pass heuristic), the runtime
broker/proxy architecture, and the full simulated evaluation
environment of the paper's 5th section.

Quick start::

    from repro.core import (
        QoSLevel, QoSVector, QoSRanking, ServiceComponent,
        TabularTranslation, DependencyGraph, DistributedService,
        Binding, AvailabilitySnapshot, compute_plan,
    )

    plan = compute_plan(service, binding, snapshot, algorithm="basic")
    print(plan.describe())

Subpackages:

* :mod:`repro.core`    -- model + planners (the paper's contribution)
* :mod:`repro.des`     -- discrete-event simulation kernel
* :mod:`repro.brokers` -- resource brokers (local, link, two-level path)
* :mod:`repro.network` -- topology and routing substrate
* :mod:`repro.runtime` -- QoSProxy / coordinator / session lifecycle
* :mod:`repro.sim`     -- the evaluation environment (paper section 5)
* :mod:`repro.analysis`-- table/figure reproduction harness
"""

__version__ = "1.0.0"

from repro.core import compute_plan  # noqa: F401  (primary entry point)
