"""Exception hierarchy for the core reservation-planning package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """A QoS-Resource Model definition is malformed or inconsistent."""


class IncomparableError(ModelError):
    """Two QoS or resource vectors with different parameter sets were compared."""


class TranslationError(ModelError):
    """A translation function was queried with unsupported QoS levels."""


class PlanningError(ReproError):
    """End-to-end reservation planning failed structurally."""


class InfeasibleError(PlanningError):
    """No feasible end-to-end reservation plan exists under current availability."""


class BrokerError(ReproError):
    """Resource broker misuse (over-release, unknown reservation, ...)."""


class AdmissionError(BrokerError):
    """A reservation request exceeded current availability.

    ``resource_id`` names the resource whose admission control rejected
    the request (the dynamically identified bottleneck at reserve time).
    """

    def __init__(self, message: str, resource_id: str | None = None) -> None:
        super().__init__(message)
        self.resource_id = resource_id
