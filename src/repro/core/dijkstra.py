"""Minimax ("shortest-with-max") path search (paper §4.1.2).

The paper computes the end-to-end reservation plan as the shortest path
from the QRG source to the best reachable sink **with the ``+`` operator
redefined as ``max``**: the length of a path is the maximum edge weight
along it, i.e. the contention index of the path's bottleneck resource.

Dijkstra's algorithm remains correct under this semiring because ``max``
is monotone and edge weights are non-negative.  The paper adds a
tie-breaking rule: when two predecessors yield the same (max) value for a
node, prefer the one arriving over the *smaller* edge weight.  We extend
the tie-break deterministically: smaller incoming edge weight, then
smaller predecessor distance, then lexicographically smallest predecessor.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Iterable, List, Optional, Tuple, TypeVar

from repro.obs import trace as _trace

Node = TypeVar("Node", bound=Hashable)

#: Adjacency oracle: node -> iterable of (successor, weight, edge payload).
Successors = Callable[[Node], Iterable[Tuple[Node, float, object]]]


@dataclass
class PathSearchResult(Generic[Node]):
    """Distances and predecessor links from one minimax Dijkstra run."""

    source: Node
    distance: Dict[Node, float]
    predecessor: Dict[Node, Node]
    predecessor_edge: Dict[Node, object]

    def reachable(self, node: Node) -> bool:
        """True when the node was reached by the search."""
        return node in self.distance

    def path_to(self, node: Node) -> List[Node]:
        """Node sequence from the source to ``node`` (inclusive)."""
        if node not in self.distance:
            raise KeyError(f"{node!r} is not reachable from {self.source!r}")
        path = [node]
        while path[-1] != self.source:
            path.append(self.predecessor[path[-1]])
        path.reverse()
        return path

    def edges_to(self, node: Node) -> List[object]:
        """Edge payloads along the path to ``node`` (None for 0-cost hops)."""
        nodes = self.path_to(node)
        return [self.predecessor_edge[n] for n in nodes[1:]]


def minimax_dijkstra(
    source: Node,
    successors: Successors,
    *,
    tie_break: bool = True,
) -> PathSearchResult[Node]:
    """Single-source minimax path search.

    Parameters
    ----------
    source:
        Start node.
    successors:
        Adjacency oracle returning ``(next_node, weight, edge)`` triples;
        weights must be >= 0.
    tie_break:
        Apply the paper's min-edge-weight tie-breaking rule.  Disabling it
        (ablation) keeps first-found predecessors.
    """
    with _trace.span("dijkstra") as span:
        result = _minimax_dijkstra(source, successors, tie_break)
        span.set(settled=len(result.distance))
        return result


def _minimax_dijkstra(
    source: Node, successors: Successors, tie_break: bool
) -> PathSearchResult[Node]:
    """The uninstrumented search body of :func:`minimax_dijkstra`."""
    distance: Dict[Node, float] = {source: 0.0}
    predecessor: Dict[Node, Node] = {}
    predecessor_edge: Dict[Node, object] = {}
    incoming_weight: Dict[Node, float] = {source: -math.inf}
    done: set = set()

    counter = 0
    heap: List[Tuple[float, int, Node]] = [(0.0, counter, source)]
    while heap:
        dist_u, _count, u = heapq.heappop(heap)
        if u in done:
            continue
        if dist_u > distance.get(u, math.inf):
            continue  # stale entry
        done.add(u)
        for v, weight, edge in successors(u):
            if weight < 0:
                raise ValueError(f"negative edge weight {weight!r} on {u!r} -> {v!r}")
            candidate = max(dist_u, weight)
            current = distance.get(v, math.inf)
            if candidate < current:
                distance[v] = candidate
                predecessor[v] = u
                predecessor_edge[v] = edge
                incoming_weight[v] = weight
                counter += 1
                heapq.heappush(heap, (candidate, counter, v))
            elif tie_break and candidate == current and v not in done:
                # Same bottleneck value: prefer the smaller incoming edge
                # weight (paper's rule), then the smaller upstream value,
                # then a stable lexicographic order.
                better = (weight, dist_u, _node_key(u)) < (
                    incoming_weight.get(v, math.inf),
                    distance.get(predecessor.get(v, u), math.inf),
                    _node_key(predecessor.get(v, u)),
                )
                if better:
                    predecessor[v] = u
                    predecessor_edge[v] = edge
                    incoming_weight[v] = weight
    return PathSearchResult(
        source=source,
        distance=distance,
        predecessor=predecessor,
        predecessor_edge=predecessor_edge,
    )


def _node_key(node: object) -> str:
    return str(node)


def enumerate_paths(
    source: Node,
    target: Node,
    successors: Successors,
    *,
    limit: int = 100000,
) -> List[List[Tuple[Node, float, object]]]:
    """All simple paths source -> target as lists of (node, weight, edge).

    Each path is represented by its hop list: entry i is ``(node_i+1,
    weight_i, edge_i)``.  Used by the contention-unaware *random* baseline
    (paper §5: "randomly selects a feasible end-to-end reservation path")
    and by brute-force test oracles.  Raises if more than ``limit`` paths
    exist (guards against accidental explosion).
    """
    paths: List[List[Tuple[Node, float, object]]] = []
    stack: List[Tuple[Node, float, object]] = []
    on_path = {source}

    def visit(node: Node) -> None:
        """Depth-first enumeration of simple paths."""
        if node == target:
            paths.append(list(stack))
            if len(paths) > limit:
                raise RuntimeError(f"more than {limit} paths from {source!r} to {target!r}")
            return
        for succ, weight, edge in successors(node):
            if succ in on_path:
                continue
            on_path.add(succ)
            stack.append((succ, weight, edge))
            visit(succ)
            stack.pop()
            on_path.discard(succ)

    visit(source)
    return paths


def path_bottleneck(path_hops: List[Tuple[Node, float, object]]) -> float:
    """The minimax length of an explicit hop list (max of weights)."""
    if not path_hops:
        return 0.0
    return max(weight for _node, weight, _edge in path_hops)
