"""Resource requirement/availability vectors and contention indices (paper §2.2, §4.1.1).

A :class:`ResourceVector` maps *resource slot names* to amounts.  Slots
are the abstract resource roles of a service component (``hS``, ``hP``,
``lPS``, ``lCP`` in the paper's evaluation); a session's *binding* later
maps each slot to a concrete resource managed by a broker.

The *contention index* of one resource is ``psi = r_req / r_avail``
(paper eq. 2); the weight of a QRG edge is the max contention index over
the edge's resources (eq. 3).  Footnote 2 of the paper notes other
definitions of psi are possible, so the definition is pluggable here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.errors import IncomparableError, ModelError

#: A contention-index definition: (required, available) -> index in [0, inf).
#: Must be monotonically increasing in ``required`` and decreasing in
#: ``available`` so that "larger index == harder to reserve" holds.
ContentionIndex = Callable[[float, float], float]


def ratio_contention_index(required: float, available: float) -> float:
    """The paper's psi = r_req / r_avail (eq. 2)."""
    if available <= 0:
        return math.inf
    return required / available


def headroom_contention_index(required: float, available: float) -> float:
    """Alternative psi = r_req / (r_avail - r_req): explodes near exhaustion.

    Exhibits the same monotonicity as eq. 2 but penalises plans that leave
    little headroom much more sharply.  Used by the ablation benchmarks.
    """
    headroom = available - required
    if headroom <= 0:
        return math.inf
    return required / headroom


def log_contention_index(required: float, available: float) -> float:
    """Alternative psi = -log(1 - r_req / r_avail) (softly convex)."""
    if available <= 0 or required >= available:
        return math.inf
    return -math.log1p(-required / available)


class ResourceVector(Mapping[str, float]):
    """An immutable vector of per-resource amounts.

    Comparison follows the paper: two vectors must cover the same set of
    resources; ``R_a <= R_b`` iff each component of ``R_a`` is no larger.
    """

    __slots__ = ("_amounts", "_hash")

    def __init__(
        self,
        amounts: Mapping[str, float] | Iterable[Tuple[str, float]] = (),
        **kw: float,
    ):
        data: Dict[str, float] = {k: float(v) for k, v in dict(amounts, **kw).items()}
        if not data:
            raise ModelError("a resource vector must cover at least one resource")
        for name, amount in data.items():
            if not isinstance(name, str) or not name:
                raise ModelError(f"invalid resource name: {name!r}")
            if not math.isfinite(amount) or amount < 0:
                raise ModelError(f"invalid amount for resource {name!r}: {amount!r}")
        self._amounts = dict(sorted(data.items()))
        self._hash = hash(tuple(self._amounts.items()))

    # -- Mapping interface --------------------------------------------------

    def __getitem__(self, key: str) -> float:
        return self._amounts[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._amounts)

    def __len__(self) -> int:
        return len(self._amounts)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return self._amounts == other._amounts

    # -- ordering -------------------------------------------------------------

    def _check_comparable(self, other: "ResourceVector") -> None:
        if set(self._amounts) != set(other._amounts):
            raise IncomparableError(
                f"resource vectors cover different resources: "
                f"{sorted(self._amounts)} vs {sorted(other._amounts)}"
            )

    def __le__(self, other: "ResourceVector") -> bool:
        self._check_comparable(other)
        return all(self._amounts[k] <= other._amounts[k] for k in self._amounts)

    def __ge__(self, other: "ResourceVector") -> bool:
        return other.__le__(self)

    def __lt__(self, other: "ResourceVector") -> bool:
        return self.__le__(other) and self != other

    def __gt__(self, other: "ResourceVector") -> bool:
        return other.__lt__(self)

    # -- arithmetic -------------------------------------------------------------

    def scaled(self, factor: float) -> "ResourceVector":
        """Element-wise scaling (models the evaluation's "fat" sessions)."""
        if factor <= 0 or not math.isfinite(factor):
            raise ModelError(f"invalid scale factor: {factor!r}")
        return ResourceVector({k: v * factor for k, v in self._amounts.items()})

    def merged_sum(self, other: "ResourceVector") -> "ResourceVector":
        """Union of resources, summing amounts on overlaps."""
        merged = dict(self._amounts)
        for name, amount in other.items():
            merged[name] = merged.get(name, 0.0) + amount
        return ResourceVector(merged)

    # -- contention --------------------------------------------------------------

    def satisfiable_under(self, availability: Mapping[str, float]) -> bool:
        """True iff each required amount fits the corresponding availability."""
        for name, required in self._amounts.items():
            if name not in availability:
                raise ModelError(f"no availability reported for resource {name!r}")
            if required > availability[name]:
                return False
        return True

    def contention(
        self,
        availability: Mapping[str, float],
        index: ContentionIndex = ratio_contention_index,
    ) -> "ContentionReport":
        """Per-resource contention indices and the bottleneck (eq. 2-3)."""
        per_resource: Dict[str, float] = {}
        for name, required in self._amounts.items():
            if name not in availability:
                raise ModelError(f"no availability reported for resource {name!r}")
            per_resource[name] = index(required, availability[name])
        bottleneck = max(per_resource, key=lambda n: (per_resource[n], n))
        return ContentionReport(
            per_resource=per_resource,
            bottleneck_resource=bottleneck,
            psi=per_resource[bottleneck],
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in self._amounts.items())
        return f"ResourceVector({inner})"


@dataclass(frozen=True)
class ContentionReport:
    """Outcome of evaluating a requirement vector against availability."""

    per_resource: Mapping[str, float]
    bottleneck_resource: str
    psi: float

    @property
    def feasible(self) -> bool:
        """Feasible under the paper's eq. 2 semantics: psi <= 1 everywhere."""
        return self.psi <= 1.0


@dataclass(frozen=True)
class ResourceObservation:
    """What a Resource Broker reports for one resource (paper §3, §4.3.1).

    ``available``  -- current availability ``r_avail``;
    ``alpha``      -- Availability Change Index ``r_avail / r_avg_avail``
                      over the broker's averaging window (eq. 5); 1.0 when
                      the broker does not track trends.
    ``observed_at``-- simulated time of the snapshot (used by the
                      observation-inaccuracy experiments, paper §5.2.4).
    """

    available: float
    alpha: float = 1.0
    observed_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.available < 0:
            raise ModelError(f"negative availability: {self.available!r}")
        if self.alpha < 0:
            raise ModelError(f"negative availability change index: {self.alpha!r}")


class AvailabilitySnapshot(Mapping[str, ResourceObservation]):
    """An immutable set of per-resource observations used to build one QRG."""

    __slots__ = ("_observations",)

    def __init__(self, observations: Mapping[str, ResourceObservation]):
        for name, obs in observations.items():
            if not isinstance(obs, ResourceObservation):
                raise ModelError(f"observation for {name!r} is not a ResourceObservation")
        self._observations = dict(observations)

    def __getitem__(self, key: str) -> ResourceObservation:
        return self._observations[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._observations)

    def __len__(self) -> int:
        return len(self._observations)

    def availability(self) -> Dict[str, float]:
        """Plain resource -> available mapping."""
        return {name: obs.available for name, obs in self._observations.items()}

    @classmethod
    def from_amounts(cls, amounts: Mapping[str, float]) -> "AvailabilitySnapshot":
        """Build a trend-less snapshot from plain availabilities."""
        return cls({name: ResourceObservation(available=value) for name, value in amounts.items()})
