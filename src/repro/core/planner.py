"""Reservation-plan computation for chain services (paper §4.1-4.2).

Two planners live here:

* :class:`BasicPlanner` -- the paper's main algorithm: pick the highest
  reachable end-to-end QoS level, then the minimax ("shortest" with
  ``+ := max``) path to it, i.e. the feasible plan with the lowest
  bottleneck contention index.
* :class:`RandomPlanner` -- the contention-*unaware* baseline of §5:
  picks the same (highest reachable) end-to-end level but a uniformly
  random feasible path to it.

The tradeoff extension is in :mod:`repro.core.tradeoff`; DAG services are
planned by :mod:`repro.core.dagplan`.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.dijkstra import (
    PathSearchResult,
    enumerate_paths,
    minimax_dijkstra,
    path_bottleneck,
)
from repro.core.errors import PlanningError
from repro.core.plan import ComponentAssignment, ReservationPlan
from repro.core.qrg import IntraEdge, QoSResourceGraph, QRGNode
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


class Planner(Protocol):
    """Anything that turns a QRG into a reservation plan (or None)."""

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        ...  # pragma: no cover - protocol body


#: Causal planner events whose emission implies a metrics counter; a
#: :class:`BatchPlanMemo` replay bumps the counter alongside the event
#: so batch and sequential planning agree on both.
_REPLAYED_EVENT_COUNTERS = {"planner.tradeoff_backoff": "planner.tradeoff_backoffs"}


class BatchPlanMemo:
    """Per-batch plan memo: N sessions sharing one priced QRG plan once.

    Deterministic planners (``planner.deterministic`` is True) return
    the same plan for the same graph object, so repeated
    :meth:`plan` calls against one QRG return the memoised plan; the
    causal events the first call emitted (e.g.
    ``planner.tradeoff_backoff``) are captured and *replayed* on every
    hit, keeping a batch's event stream identical to the sequential
    per-session loop.  Non-deterministic planners (RandomPlanner draws
    a fresh path per call) bypass the memo entirely, preserving their
    per-session draw order.

    Spans and timing histograms are intentionally **not** replayed --
    they record work actually done, and the amortisation is the point.
    """

    def __init__(self, planner) -> None:
        self.planner = planner
        self._memoised = bool(getattr(planner, "deterministic", False))
        self._plans: dict = {}

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """The planner's plan for ``qrg`` (memoised per graph object)."""
        if not self._memoised:
            return self.planner.plan(qrg)
        key = id(qrg)
        hit = self._plans.get(key)
        log = _events.active_event_log()
        if hit is not None:
            plan, events = hit
            if log is not None:
                registry = _metrics.active_registry()
                for event in events:
                    counter = _REPLAYED_EVENT_COUNTERS.get(event.kind)
                    if counter is not None and registry is not None:
                        registry.counter(counter).inc()
                    log.emit(
                        event.kind,
                        session=event.session,
                        resource=event.resource,
                        time=event.time,
                        **event.attributes,
                    )
            return plan
        captured: List = []
        if log is not None:
            log.subscribe(captured.append)
        try:
            plan = self.planner.plan(qrg)
        finally:
            if log is not None:
                log.unsubscribe(captured.append)
        self._plans[key] = (plan, tuple(captured))
        return plan


def plan_batch(planner, qrgs: Sequence[Optional[QoSResourceGraph]]) -> List[Optional[ReservationPlan]]:
    """Plan a batch of (possibly shared, possibly None) priced QRGs.

    The batched planning entry point: N concurrent arrivals priced
    against one availability snapshot hand their QRGs here -- arrivals
    sharing a graph object pay one planner run (deterministic planners
    only; see :class:`BatchPlanMemo`).  ``None`` entries (arrivals whose
    pricing failed) map to ``None`` plans.
    """
    memo = BatchPlanMemo(planner)
    return [None if qrg is None else memo.plan(qrg) for qrg in qrgs]


def _reachable_sinks(
    qrg: QoSResourceGraph, search: PathSearchResult[QRGNode]
) -> List[QRGNode]:
    return [node for node in qrg.sink_nodes() if search.reachable(node)]


def _best_sink(qrg: QoSResourceGraph, sinks: Sequence[QRGNode]) -> Optional[QRGNode]:
    """Highest-ranked sink under the service's end-to-end ranking."""
    if not sinks:
        return None
    by_label = {node.label: node for node in sinks}
    best_label = qrg.service.ranking.best(by_label)
    return by_label[best_label] if best_label is not None else None


def _bottleneck_edge(edges: Sequence[Optional[IntraEdge]]) -> IntraEdge:
    """The intra edge with the largest weight (first such along the path)."""
    best: Optional[IntraEdge] = None
    for edge in edges:
        if edge is None:
            continue
        if best is None or edge.weight > best.weight:
            best = edge
    if best is None:
        raise PlanningError("path contains no intra-component edges")
    return best


def assemble_plan(
    qrg: QoSResourceGraph,
    sink: QRGNode,
    node_path: Sequence[QRGNode],
    edges: Sequence[Optional[IntraEdge]],
) -> ReservationPlan:
    """Turn an explicit QRG path into a :class:`ReservationPlan`."""
    with _trace.span("plan_assemble", service=qrg.service.name) as span:
        assignments = tuple(
            ComponentAssignment.from_edge(edge) for edge in edges if edge is not None
        )
        intra = [edge for edge in edges if edge is not None]
        psi = max((edge.weight for edge in intra), default=0.0)
        bottleneck = _bottleneck_edge(edges)
        ranking = qrg.service.ranking
        span.set(psi=psi, bottleneck=bottleneck.bottleneck_resource, label=sink.label)
        return ReservationPlan(
            service=qrg.service.name,
            assignments=assignments,
            end_to_end_label=sink.label,
            end_to_end_rank=ranking.rank(sink.label),
            numeric_level=ranking.numeric_level(sink.label),
            psi=psi,
            bottleneck_resource=bottleneck.bottleneck_resource,
            bottleneck_alpha=bottleneck.alpha,
            path_signature=tuple(node.label for node in node_path),
        )


class BasicPlanner:
    """The paper's basic runtime algorithm (§4.1).

    ``tie_break=False`` disables the min-edge-weight tie-breaking rule
    (ablation only; the paper always applies it).
    """

    name = "basic"
    #: Same QRG -> same plan; batch planning may memoise (BatchPlanMemo).
    deterministic = True

    def __init__(self, tie_break: bool = True) -> None:
        self.tie_break = tie_break

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        with _trace.span("plan", algorithm=self.name) as span:
            search = minimax_dijkstra(
                qrg.source_node, qrg.successors, tie_break=self.tie_break
            )
            sink = _best_sink(qrg, _reachable_sinks(qrg, search))
            if sink is None:
                span.set(feasible=False)
                return None
            node_path = search.path_to(sink)
            edges = search.edges_to(sink)
            span.set(feasible=True)
            return assemble_plan(qrg, sink, node_path, edges)


class RandomPlanner:
    """Contention-unaware baseline (paper §5).

    Selects the highest reachable end-to-end QoS level -- it is equally
    "greedy" on QoS -- but picks uniformly at random among the feasible
    paths to it, ignoring contention indices entirely.
    """

    name = "random"
    #: Each plan() call draws from the rng; batch planning never memoises.
    deterministic = False

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng()

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        with _trace.span("plan", algorithm=self.name) as span:
            search = minimax_dijkstra(qrg.source_node, qrg.successors, tie_break=False)
            sink = _best_sink(qrg, _reachable_sinks(qrg, search))
            if sink is None:
                span.set(feasible=False)
                return None
            paths = enumerate_paths(qrg.source_node, sink, qrg.successors)
            if not paths:  # pragma: no cover - reachable sink implies >=1 path
                span.set(feasible=False)
                return None
            hops = paths[int(self.rng.integers(len(paths)))]
            node_path = [qrg.source_node] + [node for node, _w, _e in hops]
            edges = [edge for _node, _w, edge in hops]
            span.set(feasible=True)
            return assemble_plan(qrg, sink, node_path, edges)


def feasible_end_to_end_levels(qrg: QoSResourceGraph) -> List[str]:
    """Labels of all reachable end-to-end levels, best first."""
    search = minimax_dijkstra(qrg.source_node, qrg.successors)
    reachable = [node.label for node in _reachable_sinks(qrg, search)]
    return qrg.service.ranking.sorted_best_first(reachable)
