"""Reservation-plan computation for chain services (paper §4.1-4.2).

Two planners live here:

* :class:`BasicPlanner` -- the paper's main algorithm: pick the highest
  reachable end-to-end QoS level, then the minimax ("shortest" with
  ``+ := max``) path to it, i.e. the feasible plan with the lowest
  bottleneck contention index.
* :class:`RandomPlanner` -- the contention-*unaware* baseline of §5:
  picks the same (highest reachable) end-to-end level but a uniformly
  random feasible path to it.

The tradeoff extension is in :mod:`repro.core.tradeoff`; DAG services are
planned by :mod:`repro.core.dagplan`.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.dijkstra import (
    PathSearchResult,
    enumerate_paths,
    minimax_dijkstra,
    path_bottleneck,
)
from repro.core.errors import PlanningError
from repro.core.plan import ComponentAssignment, ReservationPlan
from repro.core.qrg import IntraEdge, QoSResourceGraph, QRGNode
from repro.obs import trace as _trace


class Planner(Protocol):
    """Anything that turns a QRG into a reservation plan (or None)."""

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        ...  # pragma: no cover - protocol body


def _reachable_sinks(
    qrg: QoSResourceGraph, search: PathSearchResult[QRGNode]
) -> List[QRGNode]:
    return [node for node in qrg.sink_nodes() if search.reachable(node)]


def _best_sink(qrg: QoSResourceGraph, sinks: Sequence[QRGNode]) -> Optional[QRGNode]:
    """Highest-ranked sink under the service's end-to-end ranking."""
    if not sinks:
        return None
    by_label = {node.label: node for node in sinks}
    best_label = qrg.service.ranking.best(by_label)
    return by_label[best_label] if best_label is not None else None


def _bottleneck_edge(edges: Sequence[Optional[IntraEdge]]) -> IntraEdge:
    """The intra edge with the largest weight (first such along the path)."""
    best: Optional[IntraEdge] = None
    for edge in edges:
        if edge is None:
            continue
        if best is None or edge.weight > best.weight:
            best = edge
    if best is None:
        raise PlanningError("path contains no intra-component edges")
    return best


def assemble_plan(
    qrg: QoSResourceGraph,
    sink: QRGNode,
    node_path: Sequence[QRGNode],
    edges: Sequence[Optional[IntraEdge]],
) -> ReservationPlan:
    """Turn an explicit QRG path into a :class:`ReservationPlan`."""
    with _trace.span("plan_assemble", service=qrg.service.name) as span:
        assignments = tuple(
            ComponentAssignment.from_edge(edge) for edge in edges if edge is not None
        )
        intra = [edge for edge in edges if edge is not None]
        psi = max((edge.weight for edge in intra), default=0.0)
        bottleneck = _bottleneck_edge(edges)
        ranking = qrg.service.ranking
        span.set(psi=psi, bottleneck=bottleneck.bottleneck_resource, label=sink.label)
        return ReservationPlan(
            service=qrg.service.name,
            assignments=assignments,
            end_to_end_label=sink.label,
            end_to_end_rank=ranking.rank(sink.label),
            numeric_level=ranking.numeric_level(sink.label),
            psi=psi,
            bottleneck_resource=bottleneck.bottleneck_resource,
            bottleneck_alpha=bottleneck.alpha,
            path_signature=tuple(node.label for node in node_path),
        )


class BasicPlanner:
    """The paper's basic runtime algorithm (§4.1).

    ``tie_break=False`` disables the min-edge-weight tie-breaking rule
    (ablation only; the paper always applies it).
    """

    name = "basic"

    def __init__(self, tie_break: bool = True) -> None:
        self.tie_break = tie_break

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        with _trace.span("plan", algorithm=self.name) as span:
            search = minimax_dijkstra(
                qrg.source_node, qrg.successors, tie_break=self.tie_break
            )
            sink = _best_sink(qrg, _reachable_sinks(qrg, search))
            if sink is None:
                span.set(feasible=False)
                return None
            node_path = search.path_to(sink)
            edges = search.edges_to(sink)
            span.set(feasible=True)
            return assemble_plan(qrg, sink, node_path, edges)


class RandomPlanner:
    """Contention-unaware baseline (paper §5).

    Selects the highest reachable end-to-end QoS level -- it is equally
    "greedy" on QoS -- but picks uniformly at random among the feasible
    paths to it, ignoring contention indices entirely.
    """

    name = "random"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng()

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        with _trace.span("plan", algorithm=self.name) as span:
            search = minimax_dijkstra(qrg.source_node, qrg.successors, tie_break=False)
            sink = _best_sink(qrg, _reachable_sinks(qrg, search))
            if sink is None:
                span.set(feasible=False)
                return None
            paths = enumerate_paths(qrg.source_node, sink, qrg.successors)
            if not paths:  # pragma: no cover - reachable sink implies >=1 path
                span.set(feasible=False)
                return None
            hops = paths[int(self.rng.integers(len(paths)))]
            node_path = [qrg.source_node] + [node for node, _w, _e in hops]
            edges = [edge for _node, _w, edge in hops]
            span.set(feasible=True)
            return assemble_plan(qrg, sink, node_path, edges)


def feasible_end_to_end_levels(qrg: QoSResourceGraph) -> List[str]:
    """Labels of all reachable end-to-end levels, best first."""
    search = minimax_dijkstra(qrg.source_node, qrg.successors)
    reachable = [node.label for node in _reachable_sinks(qrg, search)]
    return qrg.service.ranking.sorted_best_first(reachable)
