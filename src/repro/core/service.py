"""Distributed services and their Dependency Graphs (paper §2.2, §4.3.2).

A distributed service is a set of service components plus a Dependency
Graph.  An edge ``c1 -> c2`` means the output of ``c1`` is the input of
``c2`` and the ``Q_out`` of ``c1`` is *equivalent* to the ``Q_in`` of
``c2``.  Equivalence is semantic: two levels (with possibly different
labels, as in the paper's figures) are equivalent when their QoS
*vectors* are equal.

The basic model assumes a chain; the DAG extension (paper §4.3.2) adds
fan-out components (output equivalent to each adjacent input) and fan-in
components (input is the *concatenation* of adjacent outputs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.component import ServiceComponent
from repro.core.errors import ModelError
from repro.core.qos import QoSLevel, QoSRanking, concat_levels


class DependencyGraph:
    """A directed acyclic graph over component names.

    Exactly one source (no incoming edges) and one sink (no outgoing
    edges) are required: the source's ``Q_in`` is the original quality of
    the source data, the sink's ``Q_out`` is the end-to-end QoS.
    """

    def __init__(self, nodes: Iterable[str], edges: Iterable[Tuple[str, str]]) -> None:
        self._nodes: List[str] = list(nodes)
        if len(set(self._nodes)) != len(self._nodes):
            raise ModelError(f"duplicate component names: {self._nodes!r}")
        self._edges: List[Tuple[str, str]] = []
        self._downstream: Dict[str, List[str]] = {n: [] for n in self._nodes}
        self._upstream: Dict[str, List[str]] = {n: [] for n in self._nodes}
        for upstream, downstream in edges:
            for endpoint in (upstream, downstream):
                if endpoint not in self._downstream:
                    raise ModelError(f"edge endpoint {endpoint!r} is not a declared component")
            if upstream == downstream:
                raise ModelError(f"self-loop on component {upstream!r}")
            if (upstream, downstream) in self._edges:
                raise ModelError(f"duplicate edge {(upstream, downstream)!r}")
            self._edges.append((upstream, downstream))
            self._downstream[upstream].append(downstream)
            self._upstream[downstream].append(upstream)
        self._order = self._topological_sort()
        sources = [n for n in self._nodes if not self._upstream[n]]
        sinks = [n for n in self._nodes if not self._downstream[n]]
        if len(sources) != 1:
            raise ModelError(f"dependency graph must have exactly one source, found {sources!r}")
        if len(sinks) != 1:
            raise ModelError(f"dependency graph must have exactly one sink, found {sinks!r}")
        self._source = sources[0]
        self._sink = sinks[0]

    @classmethod
    def chain(cls, nodes: Sequence[str]) -> "DependencyGraph":
        """The basic model's chain topology (paper before §4.3.2)."""
        if not nodes:
            raise ModelError("a chain needs at least one component")
        return cls(nodes, list(zip(nodes, nodes[1:])))

    def _topological_sort(self) -> List[str]:
        in_degree = {n: len(self._upstream[n]) for n in self._nodes}
        ready = [n for n in self._nodes if in_degree[n] == 0]
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for downstream in self._downstream[node]:
                in_degree[downstream] -= 1
                if in_degree[downstream] == 0:
                    ready.append(downstream)
        if len(order) != len(self._nodes):
            cyclic = sorted(set(self._nodes) - set(order))
            raise ModelError(f"dependency graph has a cycle through {cyclic!r}")
        return order

    # -- queries ---------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Component names in declaration order."""
        return tuple(self._nodes)

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """Dependency edges in declaration order."""
        return tuple(self._edges)

    @property
    def source(self) -> str:
        """The unique source component name."""
        return self._source

    @property
    def sink(self) -> str:
        """The unique sink component name."""
        return self._sink

    def upstreams(self, node: str) -> Tuple[str, ...]:
        """Upstream neighbours in declaration order (fan-in order)."""
        return tuple(self._upstream[node])

    def downstreams(self, node: str) -> Tuple[str, ...]:
        """Downstream neighbours in declaration order."""
        return tuple(self._downstream[node])

    def topological_order(self) -> Tuple[str, ...]:
        """Component names in a topological order."""
        return tuple(self._order)

    def is_chain(self) -> bool:
        """True when every component has at most one neighbour per side."""
        return all(
            len(self._upstream[n]) <= 1 and len(self._downstream[n]) <= 1 for n in self._nodes
        )

    def is_fan_in(self, node: str) -> bool:
        """Paper's terminology: adjacent *to* more than one component."""
        return len(self._upstream[node]) > 1

    def is_fan_out(self, node: str) -> bool:
        """Paper's terminology: more than one adjacent component."""
        return len(self._downstream[node]) > 1


class DistributedService:
    """A named service: components + dependency graph + end-to-end ranking.

    ``ranking`` linearly orders the *sink component's output level labels*
    best-first (paper §4.1.1 assumes end-to-end levels are linearly
    ranked by user preference).
    """

    def __init__(
        self,
        name: str,
        components: Iterable[ServiceComponent],
        graph: DependencyGraph,
        ranking: QoSRanking,
    ) -> None:
        if not name:
            raise ModelError("service name must be non-empty")
        self.name = name
        self._components: Dict[str, ServiceComponent] = {}
        for component in components:
            if component.name in self._components:
                raise ModelError(f"duplicate component {component.name!r} in service {name!r}")
            self._components[component.name] = component
        declared = set(self._components)
        graphed = set(graph.nodes)
        if declared != graphed:
            raise ModelError(
                f"component set mismatch in service {name!r}: "
                f"declared {sorted(declared)}, graph has {sorted(graphed)}"
            )
        self.graph = graph
        self.ranking = ranking
        self._validate_ranking()
        self._validate_equivalences()

    # -- access -----------------------------------------------------------

    def component(self, name: str) -> ServiceComponent:
        """Look up a component by name; raises on unknown names."""
        try:
            return self._components[name]
        except KeyError:
            raise ModelError(f"service {self.name!r} has no component {name!r}") from None

    @property
    def components(self) -> Tuple[ServiceComponent, ...]:
        """All components, in topological order."""
        return tuple(self._components[n] for n in self.graph.topological_order())

    @property
    def source_component(self) -> ServiceComponent:
        """The component at the dependency graph's source."""
        return self._components[self.graph.source]

    @property
    def sink_component(self) -> ServiceComponent:
        """The component at the dependency graph's sink (end-to-end QoS)."""
        return self._components[self.graph.sink]

    def end_to_end_levels(self) -> Tuple[QoSLevel, ...]:
        """The sink component's output levels = achievable end-to-end QoS."""
        return self.sink_component.output_levels

    # -- validation -------------------------------------------------------

    def _validate_ranking(self) -> None:
        sink_labels = {level.label for level in self.end_to_end_levels()}
        ranked = set(self.ranking.labels)
        if not ranked <= sink_labels:
            raise ModelError(
                f"ranking of service {self.name!r} mentions unknown end-to-end levels: "
                f"{sorted(ranked - sink_labels)}"
            )
        if not sink_labels <= ranked:
            raise ModelError(
                f"ranking of service {self.name!r} misses end-to-end levels: "
                f"{sorted(sink_labels - ranked)}"
            )

    def _validate_equivalences(self) -> None:
        """Every component must be reachable in QoS terms.

        For each edge (or fan-in group), at least one downstream input
        level must be equivalent to some upstream output (combination);
        otherwise no end-to-end path can ever exist, which is a model
        definition bug worth failing fast on.
        """
        for name in self.graph.topological_order():
            upstream_names = self.graph.upstreams(name)
            if not upstream_names:
                continue
            component = self._components[name]
            combos = list(self.upstream_output_combinations(name))
            matched = any(
                any(level.vector == combined.vector for level in component.input_levels)
                for _parts, combined in combos
            )
            if not matched:
                raise ModelError(
                    f"service {self.name!r}: no input level of component {name!r} is "
                    "equivalent to any upstream output (combination); the service can "
                    "never be instantiated"
                )

    # -- equivalence machinery (QRG construction uses these) -----------------

    def upstream_output_combinations(
        self, name: str
    ) -> Iterable[Tuple[Tuple[Tuple[str, QoSLevel], ...], QoSLevel]]:
        """All combinations of upstream output levels feeding ``name``.

        Yields ``(parts, combined)`` where ``parts`` is a tuple of
        ``(upstream_component, output_level)`` in fan-in order and
        ``combined`` is the (possibly concatenated) equivalent level.
        For a single upstream this is simply each of its output levels.
        """
        upstream_names = self.graph.upstreams(name)
        if not upstream_names:
            return
        if len(upstream_names) == 1:
            upstream = self._components[upstream_names[0]]
            for level in upstream.output_levels:
                yield ((upstream.name, level),), level
            return
        # Fan-in: cartesian product of upstream output levels, concatenated
        # in fan-in (edge declaration) order -- paper §4.3.2.
        def recurse(index: int, chosen: Tuple[Tuple[str, QoSLevel], ...]):
            """Enumerate upstream output combinations recursively."""
            if index == len(upstream_names):
                combined = concat_levels([level for _name, level in chosen])
                yield chosen, combined
                return
            upstream = self._components[upstream_names[index]]
            for level in upstream.output_levels:
                yield from recurse(index + 1, chosen + ((upstream.name, level),))

        yield from recurse(0, ())

    def equivalent_input_levels(self, name: str, combined: QoSLevel) -> List[QoSLevel]:
        """Input levels of ``name`` equivalent to a combined upstream output."""
        component = self._components[name]
        return [level for level in component.input_levels if level.vector == combined.vector]
