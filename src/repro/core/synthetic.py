"""Synthetic service generators (benchmarks, property tests, examples).

Builders for parameterised chain/DAG services with controllable size
(K components, Q levels) and randomised-but-reproducible requirement
tables.  Used by the complexity benchmark backing the paper's O(K*Q^2)
claim (§4.2), by the DAG-heuristic ablation, and by property-based tests
that need many structurally valid services.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.component import Binding, ServiceComponent
from repro.core.errors import ModelError
from repro.core.qos import QoSLevel, QoSRanking, QoSVector, concat_levels
from repro.core.resources import AvailabilitySnapshot
from repro.core.service import DependencyGraph, DistributedService
from repro.core.translation import TabularTranslation


def _levels(prefix: str, count: int, param: str = "q") -> Tuple[QoSLevel, ...]:
    """``count`` levels named ``<prefix>0..`` with descending quality."""
    return tuple(
        QoSLevel(f"{prefix}{i}", QoSVector({param: count - i})) for i in range(count)
    )


def synthetic_chain(
    k: int,
    q: int,
    *,
    rng: Optional[np.random.Generator] = None,
    resources_per_component: int = 2,
    density: float = 1.0,
) -> Tuple[DistributedService, Binding, AvailabilitySnapshot]:
    """A K-component chain with Q levels per side, ready to plan on.

    Every component ``c<i>`` consumes its own resources
    ``r<i>.0..r<i>.<m>``; requirements are uniform in [1, 10); the
    snapshot provisions every resource with 100 units, so all edges are
    feasible.  ``density`` < 1 randomly drops translation entries (but
    never the diagonal, keeping at least one end-to-end path).
    """
    if k < 1 or q < 1:
        raise ModelError(f"need k >= 1 and q >= 1, got k={k}, q={q}")
    if not 0 < density <= 1:
        raise ModelError(f"density must be in (0, 1], got {density!r}")
    rng = rng if rng is not None else np.random.default_rng(0)

    components: List[ServiceComponent] = []
    binding: Dict[Tuple[str, str], str] = {}
    amounts: Dict[str, float] = {}
    source = QoSLevel("SRC", QoSVector({"q": q + 1}))
    previous_outputs: Tuple[QoSLevel, ...] = (source,)
    for i in range(k):
        name = f"c{i}"
        # Inputs mirror the previous component's outputs (equal vectors,
        # fresh labels) so equivalence edges exist.
        inputs = tuple(
            QoSLevel(f"{name}.in{j}", level.vector) for j, level in enumerate(previous_outputs)
        )
        outputs = _levels(f"{name}.out", q, param=f"p{i}")
        slots = tuple(f"r{i}.{m}" for m in range(resources_per_component))
        table: Dict[Tuple[str, str], Dict[str, float]] = {}
        for a, qin in enumerate(inputs):
            for b, qout in enumerate(outputs):
                keep = (a % q) == b or rng.random() < density
                if not keep:
                    continue
                table[(qin.label, qout.label)] = {
                    slot: float(rng.uniform(1.0, 10.0)) for slot in slots
                }
        components.append(ServiceComponent(name, inputs, outputs, TabularTranslation(table)))
        for slot in slots:
            resource_id = f"res:{slot}"
            binding[(name, slot)] = resource_id
            amounts[resource_id] = 100.0
        previous_outputs = outputs

    service = DistributedService(
        "synthetic-chain",
        components,
        DependencyGraph.chain([c.name for c in components]),
        QoSRanking([level.label for level in previous_outputs]),
    )
    return service, Binding(binding), AvailabilitySnapshot.from_amounts(amounts)


def random_availability(
    snapshot: AvailabilitySnapshot,
    rng: np.random.Generator,
    *,
    low: float = 5.0,
    high: float = 100.0,
) -> AvailabilitySnapshot:
    """Redraw every availability uniformly in [low, high)."""
    return AvailabilitySnapshot.from_amounts(
        {rid: float(rng.uniform(low, high)) for rid in snapshot}
    )


def synthetic_diamond_dag(
    branches: int,
    q: int,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[DistributedService, Binding, AvailabilitySnapshot]:
    """Source -> fan-out -> N parallel branches -> fan-in sink (fig. 6 shape).

    Exercises every DAG feature of §4.3.2: fan-out equivalence, fan-in
    concatenation, and pass II's non-convergence resolution.
    """
    if branches < 2:
        raise ModelError(f"a diamond needs >= 2 branches, got {branches}")
    if q < 1:
        raise ModelError(f"need q >= 1, got {q}")
    rng = rng if rng is not None else np.random.default_rng(0)

    binding: Dict[Tuple[str, str], str] = {}
    amounts: Dict[str, float] = {}

    def provision(component: str, slot: str) -> None:
        """Bind one slot to a fresh 100-unit resource."""
        resource_id = f"res:{component}.{slot}"
        binding[(component, slot)] = resource_id
        amounts[resource_id] = 100.0

    def table_for(
        inputs: Sequence[QoSLevel], outputs: Sequence[QoSLevel], slot: str
    ) -> TabularTranslation:
        """A random all-pairs translation table over one slot."""
        return TabularTranslation(
            {
                (qin.label, qout.label): {slot: float(rng.uniform(1.0, 10.0))}
                for qin in inputs
                for qout in outputs
            }
        )

    source_level = QoSLevel("SRC", QoSVector({"q": q + 1}))
    fan_out_outputs = _levels("fan.out", q, param="f")
    fan_out = ServiceComponent(
        "fan", (source_level,), fan_out_outputs, table_for([source_level], fan_out_outputs, "s")
    )
    provision("fan", "s")

    components = [fan_out]
    edges: List[Tuple[str, str]] = []
    branch_outputs: List[Tuple[QoSLevel, ...]] = []
    for b in range(branches):
        name = f"br{b}"
        inputs = tuple(
            QoSLevel(f"{name}.in{j}", level.vector) for j, level in enumerate(fan_out_outputs)
        )
        outputs = _levels(f"{name}.out", q, param=f"b{b}")
        components.append(ServiceComponent(name, inputs, outputs, table_for(inputs, outputs, "s")))
        provision(name, "s")
        edges.append(("fan", name))
        branch_outputs.append(outputs)

    # Fan-in sink: inputs are all concatenations of branch outputs.
    fanin_inputs: List[QoSLevel] = []

    def combos(index: int, chosen: List[QoSLevel]) -> None:
        """Enumerate all branch-output concatenations."""
        if index == branches:
            fanin_inputs.append(concat_levels(chosen))
            return
        for level in branch_outputs[index]:
            combos(index + 1, chosen + [level])

    combos(0, [])
    sink_outputs = _levels("sink.out", q, param="e")
    sink = ServiceComponent(
        "sink", tuple(fanin_inputs), sink_outputs, table_for(fanin_inputs, sink_outputs, "s")
    )
    provision("sink", "s")
    components.append(sink)
    for b in range(branches):
        edges.append((f"br{b}", "sink"))

    graph = DependencyGraph([c.name for c in components], edges)
    service = DistributedService(
        "synthetic-diamond",
        components,
        graph,
        QoSRanking([level.label for level in sink_outputs]),
    )
    return service, Binding(binding), AvailabilitySnapshot.from_amounts(amounts)
