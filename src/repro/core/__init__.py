"""The paper's primary contribution: the QoS-Resource Model and planners.

Public surface:

* model building blocks -- :class:`QoSVector`, :class:`QoSLevel`,
  :class:`QoSRanking`, :class:`ResourceVector`,
  :class:`TabularTranslation`, :class:`ServiceComponent`,
  :class:`DependencyGraph`, :class:`DistributedService`;
* snapshot & graph -- :class:`AvailabilitySnapshot`,
  :func:`build_qrg`, :class:`QoSResourceGraph`;
* planners -- :class:`BasicPlanner`, :class:`RandomPlanner`,
  :class:`TradeoffPlanner`, :class:`TwoPassDagPlanner`,
  :class:`ExhaustiveDagPlanner`, plus the :func:`compute_plan` facade.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.component import Binding, ServiceComponent
from repro.core.dagplan import ExhaustiveDagPlanner, TwoPassDagPlanner
from repro.core.dijkstra import minimax_dijkstra, enumerate_paths, path_bottleneck
from repro.core.errors import (
    AdmissionError,
    BrokerError,
    IncomparableError,
    InfeasibleError,
    ModelError,
    PlanningError,
    ReproError,
    TranslationError,
)
from repro.core.plan import ComponentAssignment, ReservationPlan
from repro.core.planner import BasicPlanner, RandomPlanner, feasible_end_to_end_levels
from repro.core.qos import QoSLevel, QoSRanking, QoSVector, concat_levels
from repro.core.qrg import QoSResourceGraph, QRGNode, build_qrg
from repro.core.resources import (
    AvailabilitySnapshot,
    ContentionReport,
    ResourceObservation,
    ResourceVector,
    headroom_contention_index,
    log_contention_index,
    ratio_contention_index,
)
from repro.core.service import DependencyGraph, DistributedService
from repro.core.tradeoff import TradeoffPlanner, sink_report
from repro.core.translation import (
    CallableTranslation,
    ScaledTranslation,
    TabularTranslation,
    TranslationFunction,
)

__all__ = [
    "AdmissionError",
    "AvailabilitySnapshot",
    "BasicPlanner",
    "Binding",
    "BrokerError",
    "CallableTranslation",
    "ComponentAssignment",
    "ContentionReport",
    "DependencyGraph",
    "DistributedService",
    "ExhaustiveDagPlanner",
    "IncomparableError",
    "InfeasibleError",
    "ModelError",
    "PlanningError",
    "QoSLevel",
    "QoSRanking",
    "QoSResourceGraph",
    "QoSVector",
    "QRGNode",
    "RandomPlanner",
    "ReproError",
    "ReservationPlan",
    "ResourceObservation",
    "ResourceVector",
    "ScaledTranslation",
    "ServiceComponent",
    "TabularTranslation",
    "TradeoffPlanner",
    "TranslationFunction",
    "TranslationError",
    "TwoPassDagPlanner",
    "build_qrg",
    "compute_plan",
    "concat_levels",
    "enumerate_paths",
    "feasible_end_to_end_levels",
    "headroom_contention_index",
    "log_contention_index",
    "minimax_dijkstra",
    "path_bottleneck",
    "ratio_contention_index",
    "sink_report",
]


def compute_plan(
    service: DistributedService,
    binding: Binding,
    snapshot: AvailabilitySnapshot,
    *,
    algorithm: str = "basic",
    source_label: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
    contention_index=ratio_contention_index,
) -> Optional[ReservationPlan]:
    """One-call facade: build the QRG and run the chosen planner.

    ``algorithm`` is one of ``"basic"``, ``"tradeoff"``, ``"random"``,
    ``"dag"`` (two-pass heuristic) or ``"dag-exhaustive"``.  Chain
    algorithms require a chain dependency graph; the DAG planners accept
    any DAG (including chains).  Returns None when no feasible end-to-end
    plan exists under the snapshot.
    """
    qrg = build_qrg(
        service,
        binding,
        snapshot,
        source_label=source_label,
        contention_index=contention_index,
    )
    if algorithm in ("basic", "tradeoff", "random") and not service.graph.is_chain():
        raise PlanningError(
            f"algorithm {algorithm!r} requires a chain dependency graph; "
            "use 'dag' or 'dag-exhaustive' for DAG services"
        )
    if algorithm == "basic":
        return BasicPlanner().plan(qrg)
    if algorithm == "tradeoff":
        return TradeoffPlanner().plan(qrg)
    if algorithm == "random":
        return RandomPlanner(rng=rng).plan(qrg)
    if algorithm == "dag":
        return TwoPassDagPlanner().plan(qrg)
    if algorithm == "dag-exhaustive":
        return ExhaustiveDagPlanner().plan(qrg)
    raise PlanningError(f"unknown planning algorithm {algorithm!r}")
