"""Translation functions: ``T_c(Q_in, Q_out) -> R`` (paper §2.2, eq. 1).

A translation function is supplied by the developer of a service
component as a plug-in (paper §3).  It answers: given input quality
``Q_in``, what resources does the component need to produce output
quality ``Q_out``?  Unsupported pairs return ``None`` -- those (Q_in,
Q_out) edges simply do not exist in the QRG.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Protocol, Tuple, runtime_checkable

from repro.core.errors import ModelError, TranslationError
from repro.core.qos import QoSLevel
from repro.core.resources import ResourceVector


@runtime_checkable
class TranslationFunction(Protocol):
    """The plug-in interface for component developers."""

    def __call__(self, qin: QoSLevel, qout: QoSLevel) -> Optional[ResourceVector]:
        """Resource requirement for the pair, or None when unsupported."""
        ...  # pragma: no cover - protocol body


class TabularTranslation:
    """A translation function backed by an explicit (label, label) table.

    This matches how the paper's evaluation specifies components
    (figure 10): an enumerated table of supported QoS pairs with their
    requirement vectors.
    """

    def __init__(
        self,
        table: Mapping[Tuple[str, str], Mapping[str, float] | ResourceVector],
    ) -> None:
        if not table:
            raise ModelError("translation table must not be empty")
        self._table: Dict[Tuple[str, str], ResourceVector] = {}
        slots: Optional[frozenset] = None
        for (qin_label, qout_label), requirement in table.items():
            if not isinstance(qin_label, str) or not isinstance(qout_label, str):
                raise ModelError(
                    f"translation table keys must be (qin_label, qout_label) strings, "
                    f"got {(qin_label, qout_label)!r}"
                )
            vector = requirement if isinstance(requirement, ResourceVector) else ResourceVector(requirement)
            if slots is None:
                slots = frozenset(vector)
            elif frozenset(vector) != slots:
                raise ModelError(
                    f"inconsistent resource slots in translation table: entry "
                    f"{(qin_label, qout_label)!r} uses {sorted(vector)}, expected {sorted(slots)}"
                )
            self._table[(qin_label, qout_label)] = vector
        self._slots = slots or frozenset()

    @property
    def slots(self) -> frozenset:
        """The resource slot names every entry of this table covers."""
        return self._slots

    @property
    def pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The supported (qin_label, qout_label) pairs, sorted."""
        return tuple(sorted(self._table))

    def __call__(self, qin: QoSLevel, qout: QoSLevel) -> Optional[ResourceVector]:
        return self._table.get((qin.label, qout.label))

    def entry(self, qin_label: str, qout_label: str) -> ResourceVector:
        """Direct table lookup by labels; raises on unsupported pairs."""
        try:
            return self._table[(qin_label, qout_label)]
        except KeyError:
            raise TranslationError(
                f"translation not defined for ({qin_label!r} -> {qout_label!r})"
            ) from None

    def items(self) -> Iterable[Tuple[Tuple[str, str], ResourceVector]]:
        """Iterate ((qin_label, qout_label), requirement) entries."""
        return self._table.items()

    def mapped(
        self, transform: Callable[[Tuple[str, str], ResourceVector], ResourceVector]
    ) -> "TabularTranslation":
        """A new table with every requirement transformed.

        Used by the requirement-diversity experiments (paper §5.2.5) to
        compress the spread of requirement values while preserving means.
        """
        return TabularTranslation({key: transform(key, vec) for key, vec in self._table.items()})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabularTranslation({len(self._table)} pairs, slots={sorted(self._slots)})"


class ScaledTranslation:
    """Wrap a translation function, scaling every requirement by a factor.

    The evaluation's "fat" sessions have requirements ``N`` times the base
    values (paper §5.1); a per-session ScaledTranslation realises that
    without copying the underlying tables.
    """

    def __init__(self, base: TranslationFunction, factor: float) -> None:
        if factor <= 0:
            raise ModelError(f"scale factor must be positive, got {factor!r}")
        self._base = base
        self._factor = float(factor)

    @property
    def factor(self) -> float:
        """The multiplicative requirement scale (N of §5.1)."""
        return self._factor

    @property
    def base(self) -> TranslationFunction:
        """The wrapped translation function."""
        return self._base

    def __call__(self, qin: QoSLevel, qout: QoSLevel) -> Optional[ResourceVector]:
        requirement = self._base(qin, qout)
        if requirement is None:
            return None
        if self._factor == 1.0:
            return requirement
        return requirement.scaled(self._factor)


class CallableTranslation:
    """Adapt a plain callable (e.g. an analytic model) to the protocol.

    ``fn`` receives the two QoS *vectors* and returns a mapping of slot ->
    amount, or None.  Useful for components whose requirement is a formula
    of the QoS parameters rather than a table.
    """

    def __init__(self, fn: Callable[[QoSLevel, QoSLevel], Optional[Mapping[str, float]]]) -> None:
        self._fn = fn

    def __call__(self, qin: QoSLevel, qout: QoSLevel) -> Optional[ResourceVector]:
        result = self._fn(qin, qout)
        if result is None:
            return None
        if isinstance(result, ResourceVector):
            return result
        return ResourceVector(result)
