"""The QoS / success-rate trade-off extension (paper §4.3.1).

Each Resource Broker reports, besides the current availability
``r_avail``, an *Availability Change Index* ``alpha = r_avail /
r_avg_avail`` where ``r_avg_avail`` averages the availabilities the
broker reported during the last ``T`` time units (eq. 5).  After the
minimax Dijkstra run, every sink carries the psi and alpha of the
bottleneck resource on its shortest path.  The policy then is:

* if ``alpha_s0 >= 1`` (bottleneck availability trending up or flat) --
  keep the basic algorithm's choice ``s0``;
* if ``alpha_s0 < 1`` (trending down) -- choose the highest-ranked sink
  ``s`` with ``psi_s <= alpha_s0 * psi_s0``, i.e. back off the bottleneck
  contention by the ratio the availability has dropped.

The paper leaves the corner case "no sink satisfies the inequality"
open; we fall back to the reachable sink with the smallest psi (most
conservative feasible plan), which preserves the intent of reducing
bottleneck pressure.  ``s0`` itself satisfies the inequality whenever
``psi_s0 == 0``, so the fallback only triggers on genuinely contended
graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dijkstra import minimax_dijkstra
from repro.core.plan import ReservationPlan
from repro.core.planner import _best_sink, _bottleneck_edge, _reachable_sinks, assemble_plan
from repro.core.qrg import QoSResourceGraph, QRGNode
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


class TradeoffPlanner:
    """Basic algorithm + the availability-trend trade-off policy."""

    name = "tradeoff"
    #: Same QRG -> same plan (and same backoff events); batch planning
    #: may memoise, replaying the events per session (BatchPlanMemo).
    deterministic = True

    def __init__(self, tie_break: bool = True) -> None:
        self.tie_break = tie_break

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        with _trace.span("plan", algorithm=self.name) as span:
            search = minimax_dijkstra(qrg.source_node, qrg.successors, tie_break=self.tie_break)
            sinks = _reachable_sinks(qrg, search)
            best = _best_sink(qrg, sinks)
            if best is None:
                span.set(feasible=False)
                return None

            # psi and alpha of the bottleneck on the shortest path to each sink.
            sink_psi: Dict[QRGNode, float] = {}
            sink_alpha: Dict[QRGNode, float] = {}
            for sink in sinks:
                edges = search.edges_to(sink)
                bottleneck = _bottleneck_edge(edges)
                sink_psi[sink] = search.distance[sink]
                sink_alpha[sink] = bottleneck.alpha

            alpha0 = sink_alpha[best]
            psi0 = sink_psi[best]
            if alpha0 >= 1.0:
                chosen = best
            else:
                budget = alpha0 * psi0
                candidates = [sink for sink in sinks if sink_psi[sink] <= budget]
                if candidates:
                    chosen = _best_sink(qrg, candidates)
                else:
                    # Fallback (see module docstring): most conservative plan,
                    # ties resolved toward the better QoS level.
                    ranking = qrg.service.ranking
                    chosen = min(sinks, key=lambda s: (sink_psi[s], ranking.rank(s.label)))
            assert chosen is not None
            span.set(feasible=True, traded_off=chosen != best)
            if chosen != best:
                registry = _metrics.active_registry()
                if registry is not None:
                    registry.counter("planner.tradeoff_backoffs").inc()
                log = _events.active_event_log()
                if log is not None:
                    log.emit(
                        "planner.tradeoff_backoff",
                        service=qrg.service.name,
                        from_level=best.label,
                        to_level=chosen.label,
                        psi_best=psi0,
                        psi_chosen=sink_psi[chosen],
                        alpha=alpha0,
                    )
            node_path = search.path_to(chosen)
            edges = search.edges_to(chosen)
            return assemble_plan(qrg, chosen, node_path, edges)


def sink_report(qrg: QoSResourceGraph) -> List[Tuple[str, float, float]]:
    """(label, psi, alpha) per reachable sink, best rank first.

    Exposed for diagnostics and tests of the trade-off policy.
    """
    search = minimax_dijkstra(qrg.source_node, qrg.successors)
    rows: List[Tuple[str, float, float]] = []
    for sink in _reachable_sinks(qrg, search):
        bottleneck = _bottleneck_edge(search.edges_to(sink))
        rows.append((sink.label, search.distance[sink], bottleneck.alpha))
    ranking = qrg.service.ranking
    rows.sort(key=lambda row: ranking.rank(row[0]))
    return rows
