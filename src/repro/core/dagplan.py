"""Planning over DAG dependency graphs (paper §4.3.2).

A feasible plan for a DAG service is an *embedded graph* in the QRG: one
(Q_in, Q_out) pair per component, consistent along every dependency edge
(fan-out outputs equivalent to each adjacent input; fan-in inputs the
concatenation of adjacent outputs).  The goal: reach the highest-ranked
sink with the smallest ``Psi_G`` = max edge weight in the embedding
(eq. 6).

Two planners:

* :class:`TwoPassDagPlanner` -- the paper's heuristic.  Pass I is a
  forward sweep "similar to Dijkstra's algorithm" (here: dynamic
  programming in topological order, which is equivalent for a DAG) with
  *max-merge* at fan-in inputs.  Pass II backtracks from the best
  reachable sink and resolves fan-out *non-convergence* locally: when the
  branches of a fan-out component backtrack to different output nodes,
  the downstream components' backtracked outputs are fixed and the
  fan-out output incurring the lowest contention to reach them is chosen.
  The paper notes two limitations, both reproduced here: the heuristic
  may fail on a sink that pass I deemed reachable (we then retry the next
  best sink), and the result may not be globally optimal.
* :class:`ExhaustiveDagPlanner` -- a branch-and-bound enumeration of all
  embeddings; exact, exponential in the worst case, fine for the small
  component counts the paper targets (K < 10).  Used as the test oracle
  and for the ablation benchmark quantifying the heuristic's gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import PlanningError
from repro.core.plan import ComponentAssignment, ReservationPlan
from repro.core.qrg import FanInGroup, IntraEdge, QoSResourceGraph, QRGNode


@dataclass
class _PassOne:
    """Forward-sweep state: minimax value and predecessor links per node."""

    value: Dict[QRGNode, float]
    intra_pred: Dict[QRGNode, IntraEdge]  # out-node -> chosen intra edge
    equiv_pred: Dict[QRGNode, QRGNode]  # single-upstream in-node -> chosen out-node
    group_pred: Dict[QRGNode, FanInGroup]  # fan-in in-node -> chosen group


def _forward_pass(qrg: QoSResourceGraph) -> _PassOne:
    """Pass I: minimax values in topological order with fan-in max-merge."""
    value: Dict[QRGNode, float] = {qrg.source_node: 0.0}
    intra_pred: Dict[QRGNode, IntraEdge] = {}
    equiv_pred: Dict[QRGNode, QRGNode] = {}
    group_pred: Dict[QRGNode, FanInGroup] = {}
    service = qrg.service

    for name in service.graph.topological_order():
        component = service.component(name)
        # Input node values come from upstream equivalences (except source).
        if name != service.graph.source:
            fan_in = service.graph.is_fan_in(name)
            for level in component.input_levels:
                node = QRGNode(name, "in", level.label)
                if node not in qrg.nodes:
                    continue
                if fan_in:
                    best_value = math.inf
                    best_group: Optional[FanInGroup] = None
                    for group in qrg.groups_for_input(node):
                        part_values = [value.get(part, math.inf) for part in group.parts]
                        merged = max(part_values) if part_values else math.inf
                        key = (merged, tuple(part.label for part in group.parts))
                        best_key = (
                            best_value,
                            tuple(p.label for p in best_group.parts) if best_group else (),
                        )
                        if best_group is None or key < best_key:
                            best_value, best_group = merged, group
                    if best_group is not None and math.isfinite(best_value):
                        value[node] = best_value
                        group_pred[node] = best_group
                else:
                    best_value = math.inf
                    best_pred: Optional[QRGNode] = None
                    for eq in qrg.equiv_into(node):
                        candidate = value.get(eq.src, math.inf)
                        if candidate < best_value or (
                            candidate == best_value
                            and best_pred is not None
                            and eq.src.label < best_pred.label
                        ):
                            best_value, best_pred = candidate, eq.src
                    if best_pred is not None and math.isfinite(best_value):
                        value[node] = best_value
                        equiv_pred[node] = best_pred
        # Output node values from intra edges (paper's tie-break applies).
        for level in component.output_levels:
            node = QRGNode(name, "out", level.label)
            best_value = math.inf
            best_edge: Optional[IntraEdge] = None
            for edge in qrg.intra_into(node):
                upstream_value = value.get(edge.src, math.inf)
                if not math.isfinite(upstream_value):
                    continue
                candidate = max(upstream_value, edge.weight)
                if best_edge is None or candidate < best_value:
                    best_value, best_edge = candidate, edge
                elif candidate == best_value:
                    # Tie-break: smaller incoming edge weight, then smaller
                    # upstream value, then label (deterministic).
                    current = (best_edge.weight, value.get(best_edge.src, math.inf), best_edge.src.label)
                    challenger = (edge.weight, upstream_value, edge.src.label)
                    if challenger < current:
                        best_edge = edge
            if best_edge is not None and math.isfinite(best_value):
                value[node] = best_value
                intra_pred[node] = best_edge
    return _PassOne(value=value, intra_pred=intra_pred, equiv_pred=equiv_pred, group_pred=group_pred)


class _NonConvergence(PlanningError):
    """Pass II could not realise the chosen sink (paper limitation 1)."""


class TwoPassDagPlanner:
    """The paper's two-pass heuristic for DAG dependency graphs."""

    name = "dag-two-pass"

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        sweep = _forward_pass(qrg)
        ranking = qrg.service.ranking
        reachable = [
            node for node in qrg.sink_nodes() if math.isfinite(sweep.value.get(node, math.inf))
        ]
        for label in ranking.sorted_best_first(node.label for node in reachable):
            sink = next(node for node in reachable if node.label == label)
            try:
                return self._backtrack(qrg, sweep, sink)
            except _NonConvergence:
                continue  # paper limitation (1): try the next-best sink
        return None

    # -- pass II -----------------------------------------------------------

    def _backtrack(
        self, qrg: QoSResourceGraph, sweep: _PassOne, sink: QRGNode
    ) -> ReservationPlan:
        service = qrg.service
        order = list(service.graph.topological_order())
        chosen_out: Dict[str, QRGNode] = {service.graph.sink: sink}
        chosen_in: Dict[str, QRGNode] = {}
        # Demands a downstream component places on an upstream's output.
        demands: Dict[str, List[Tuple[str, QRGNode]]] = {n: [] for n in order}

        for name in reversed(order):
            if service.graph.is_fan_out(name):
                out_node = self._resolve_fan_out(qrg, sweep, name, demands[name], chosen_in, chosen_out)
                chosen_out[name] = out_node
            else:
                out_node = chosen_out.get(name)
                if out_node is None:  # pragma: no cover - all components participate
                    raise _NonConvergence(f"component {name!r} received no demand")
            in_edge = sweep.intra_pred.get(out_node)
            if name in chosen_in:
                # A fan-out resolution already revised this component's input.
                in_node = chosen_in[name]
            else:
                if in_edge is None:
                    raise _NonConvergence(f"no feasible input for {out_node}")
                in_node = in_edge.src
                chosen_in[name] = in_node
            # Propagate demands upstream.
            upstream_names = service.graph.upstreams(name)
            if not upstream_names:
                continue
            if len(upstream_names) == 1:
                pred_out = sweep.equiv_pred.get(in_node)
                if pred_out is None:
                    raise _NonConvergence(f"input {in_node} has no reachable upstream output")
                demands[upstream_names[0]].append((name, pred_out))
                if not service.graph.is_fan_out(upstream_names[0]):
                    chosen_out[upstream_names[0]] = pred_out
            else:
                group = sweep.group_pred.get(in_node)
                if group is None:
                    raise _NonConvergence(f"fan-in input {in_node} has no reachable group")
                for part in group.parts:
                    demands[part.component].append((name, part))
                    if not service.graph.is_fan_out(part.component):
                        chosen_out[part.component] = part

        return self._assemble(qrg, sink, chosen_in, chosen_out)

    def _resolve_fan_out(
        self,
        qrg: QoSResourceGraph,
        sweep: _PassOne,
        name: str,
        demand_list: List[Tuple[str, QRGNode]],
        chosen_in: Dict[str, QRGNode],
        chosen_out: Dict[str, QRGNode],
    ) -> QRGNode:
        """Local non-convergence resolution at a fan-out component."""
        service = qrg.service
        demanded = {out for _branch, out in demand_list}
        if not demanded:
            raise _NonConvergence(f"fan-out {name!r} received no demands")
        if len(demanded) == 1:
            return next(iter(demanded))
        # Non-convergence: fix each downstream component's backtracked
        # output, then pick the fan-out output with the lowest contention
        # to reach all of them (paper §4.3.2, figure 8).
        downstreams = service.graph.downstreams(name)
        component = service.component(name)
        best: Optional[Tuple[float, float, str]] = None
        best_choice: Optional[Tuple[QRGNode, Dict[str, Tuple[QRGNode, IntraEdge]]]] = None
        for level in component.output_levels:
            candidate = QRGNode(name, "out", level.label)
            if not math.isfinite(sweep.value.get(candidate, math.inf)):
                continue
            revisions: Dict[str, Tuple[QRGNode, IntraEdge]] = {}
            cost = 0.0
            feasible = True
            for downstream in downstreams:
                fixed_out = chosen_out.get(downstream)
                if fixed_out is None:
                    feasible = False
                    break
                revision = self._revised_input(qrg, sweep, candidate, downstream, fixed_out, chosen_out)
                if revision is None:
                    feasible = False
                    break
                in_node, edge = revision
                revisions[downstream] = (in_node, edge)
                cost = max(cost, edge.weight)
            if not feasible:
                continue
            key = (cost, sweep.value[candidate], candidate.label)
            if best is None or key < best:
                best = key
                best_choice = (candidate, revisions)
        if best_choice is None:
            raise _NonConvergence(f"fan-out {name!r}: no output reaches all fixed downstream outputs")
        candidate, revisions = best_choice
        for downstream, (in_node, _edge) in revisions.items():
            chosen_in[downstream] = in_node
        return candidate

    def _revised_input(
        self,
        qrg: QoSResourceGraph,
        sweep: _PassOne,
        fan_out_node: QRGNode,
        downstream: str,
        fixed_out: QRGNode,
        chosen_out: Dict[str, QRGNode],
    ) -> Optional[Tuple[QRGNode, IntraEdge]]:
        """Downstream input node consistent with ``fan_out_node``.

        Returns the (input node, intra edge to the fixed output) with the
        smallest edge weight, or None when infeasible.
        """
        service = qrg.service
        upstreams = service.graph.upstreams(downstream)
        best: Optional[Tuple[QRGNode, IntraEdge]] = None
        if len(upstreams) == 1:
            for eq in qrg.equiv_from(fan_out_node):
                if eq.dst.component != downstream:
                    continue
                edge = qrg.edge_between(eq.dst, fixed_out)
                if edge is None:
                    continue
                if best is None or (edge.weight, eq.dst.label) < (best[1].weight, best[0].label):
                    best = (eq.dst, edge)
            return best
        # Downstream is itself fan-in: the revised group keeps the other
        # parts as currently chosen and replaces this fan-out's part.
        for group in qrg.fanin_groups:
            if group.input_node.component != downstream:
                continue
            consistent = True
            for part in group.parts:
                if part.component == fan_out_node.component:
                    if part != fan_out_node:
                        consistent = False
                        break
                else:
                    expected = chosen_out.get(part.component)
                    if expected is not None and part != expected:
                        consistent = False
                        break
                    if not math.isfinite(sweep.value.get(part, math.inf)):
                        consistent = False
                        break
            if not consistent:
                continue
            edge = qrg.edge_between(group.input_node, fixed_out)
            if edge is None:
                continue
            if best is None or (edge.weight, group.input_node.label) < (best[1].weight, best[0].label):
                best = (group.input_node, edge)
        return best

    # -- assembly -------------------------------------------------------------

    def _assemble(
        self,
        qrg: QoSResourceGraph,
        sink: QRGNode,
        chosen_in: Dict[str, QRGNode],
        chosen_out: Dict[str, QRGNode],
    ) -> ReservationPlan:
        service = qrg.service
        assignments: List[ComponentAssignment] = []
        signature: List[str] = []
        for name in service.graph.topological_order():
            in_node = chosen_in.get(name)
            out_node = chosen_out.get(name)
            if in_node is None or out_node is None:
                raise _NonConvergence(f"component {name!r} left unassigned")
            edge = qrg.edge_between(in_node, out_node)
            if edge is None:
                raise _NonConvergence(
                    f"revised pair ({in_node}, {out_node}) has no feasible edge"
                )
            assignments.append(ComponentAssignment.from_edge(edge))
            signature.extend([in_node.label, out_node.label])
        psi = max(assignment.weight for assignment in assignments)
        bottleneck = max(assignments, key=lambda a: a.weight)
        ranking = service.ranking
        return ReservationPlan(
            service=service.name,
            assignments=tuple(assignments),
            end_to_end_label=sink.label,
            end_to_end_rank=ranking.rank(sink.label),
            numeric_level=ranking.numeric_level(sink.label),
            psi=psi,
            bottleneck_resource=bottleneck.bottleneck_resource,
            bottleneck_alpha=bottleneck.alpha,
            path_signature=tuple(signature),
        )


class ExhaustiveDagPlanner:
    """Exact embedding search (test oracle / ablation reference).

    Enumerates, in topological order, every consistent assignment of
    (Q_in, Q_out) pairs; prunes branches whose running max weight already
    exceeds the best embedding found for the current sink ranking class.
    """

    name = "dag-exhaustive"

    def plan(self, qrg: QoSResourceGraph) -> Optional[ReservationPlan]:
        """Compute a reservation plan for the QRG (None when infeasible)."""
        service = qrg.service
        order = list(service.graph.topological_order())
        ranking = service.ranking

        best_plan: Dict[str, Tuple[float, List[IntraEdge]]] = {}

        def recurse(index: int, outs: Dict[str, QRGNode], edges: List[IntraEdge], running: float) -> None:
            """Enumerate upstream output combinations recursively."""
            if index == len(order):
                sink_label = outs[service.graph.sink].label
                incumbent = best_plan.get(sink_label)
                if incumbent is None or running < incumbent[0]:
                    best_plan[sink_label] = (running, list(edges))
                return
            name = order[index]
            component = service.component(name)
            if name == service.graph.source:
                candidate_inputs = [qrg.source_node]
            else:
                candidate_inputs = self._consistent_inputs(qrg, name, outs)
            for in_node in candidate_inputs:
                for edge in qrg.intra_from(in_node):
                    new_running = max(running, edge.weight)
                    sink_label_hint = None
                    if name == service.graph.sink:
                        sink_label_hint = edge.dst.label
                        incumbent = best_plan.get(sink_label_hint)
                        if incumbent is not None and new_running >= incumbent[0]:
                            continue
                    outs[name] = edge.dst
                    edges.append(edge)
                    recurse(index + 1, outs, edges, new_running)
                    edges.pop()
                    del outs[name]

        recurse(0, {}, [], 0.0)
        if not best_plan:
            return None
        best_label = ranking.best(best_plan)
        assert best_label is not None
        psi, edges = best_plan[best_label]
        assignments = tuple(ComponentAssignment.from_edge(edge) for edge in edges)
        bottleneck = max(assignments, key=lambda a: a.weight)
        signature: List[str] = []
        for edge in edges:
            signature.extend([edge.src.label, edge.dst.label])
        return ReservationPlan(
            service=service.name,
            assignments=assignments,
            end_to_end_label=best_label,
            end_to_end_rank=ranking.rank(best_label),
            numeric_level=ranking.numeric_level(best_label),
            psi=psi,
            bottleneck_resource=bottleneck.bottleneck_resource,
            bottleneck_alpha=bottleneck.alpha,
            path_signature=tuple(signature),
        )

    def _consistent_inputs(
        self, qrg: QoSResourceGraph, name: str, outs: Dict[str, QRGNode]
    ) -> List[QRGNode]:
        """Input nodes of ``name`` consistent with already-chosen outputs."""
        service = qrg.service
        upstreams = service.graph.upstreams(name)
        if len(upstreams) == 1:
            chosen = outs[upstreams[0]]
            return [eq.dst for eq in qrg.equiv_from(chosen) if eq.dst.component == name]
        result: List[QRGNode] = []
        for group in qrg.fanin_groups:
            if group.input_node.component != name:
                continue
            if all(outs.get(part.component) == part for part in group.parts):
                result.append(group.input_node)
        return result
