"""End-to-end reservation plans -- the planner's output (paper §4.1.2).

A plan fixes, for every participating component, the (Q_in, Q_out) pair
to operate at and therefore the resources to reserve.  The plan records
the end-to-end QoS level it achieves, its bottleneck resource and
contention index Psi, and the paper-style path signature used by the
path-census experiments (Tables 1-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.errors import ModelError
from repro.core.qrg import IntraEdge, QRGNode
from repro.core.resources import ResourceVector


@dataclass(frozen=True)
class ComponentAssignment:
    """The QoS operating point chosen for one component."""

    component: str
    qin_label: str
    qout_label: str
    requirement: ResourceVector  # slot-keyed (component view)
    bound: ResourceVector  # resource-id-keyed (environment view)
    weight: float
    bottleneck_resource: str
    alpha: float

    @classmethod
    def from_edge(cls, edge: IntraEdge) -> "ComponentAssignment":
        """Build an assignment from a chosen QRG intra edge."""
        return cls(
            component=edge.src.component,
            qin_label=edge.src.label,
            qout_label=edge.dst.label,
            requirement=edge.requirement,
            bound=edge.bound,
            weight=edge.weight,
            bottleneck_resource=edge.bottleneck_resource,
            alpha=edge.alpha,
        )


@dataclass(frozen=True)
class ReservationPlan:
    """A complete, feasible end-to-end multi-resource reservation plan."""

    service: str
    assignments: Tuple[ComponentAssignment, ...]
    end_to_end_label: str
    end_to_end_rank: int  # 0 = best
    numeric_level: int  # paper-style: best = N ... worst = 1
    psi: float  # Psi_P: contention index of the plan's bottleneck
    bottleneck_resource: str
    bottleneck_alpha: float
    path_signature: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ModelError("a reservation plan must assign at least one component")

    @property
    def demand(self) -> ResourceVector:
        """Total per-resource-id amounts to reserve (components summed)."""
        totals: Dict[str, float] = {}
        for assignment in self.assignments:
            for resource_id, amount in assignment.bound.items():
                totals[resource_id] = totals.get(resource_id, 0.0) + amount
        return ResourceVector(totals)

    def assignment_for(self, component: str) -> ComponentAssignment:
        """The assignment of one component; raises on unknown names."""
        for assignment in self.assignments:
            if assignment.component == component:
                return assignment
        raise ModelError(f"plan has no assignment for component {component!r}")

    def signature_string(self) -> str:
        """Paper Tables 1-2 style: ``Qa-Qb-Qe-Qh-Ql-Qp``."""
        return "-".join(self.path_signature)

    def describe(self) -> str:
        """Human-readable multi-line description (examples/CLI output)."""
        lines = [
            f"plan for service {self.service!r}: end-to-end QoS {self.end_to_end_label} "
            f"(level {self.numeric_level}), Psi={self.psi:.4f} "
            f"bottleneck={self.bottleneck_resource}"
        ]
        for a in self.assignments:
            amounts = ", ".join(f"{rid}={amt:g}" for rid, amt in a.bound.items())
            lines.append(
                f"  {a.component}: {a.qin_label} -> {a.qout_label}  "
                f"[{amounts}]  psi={a.weight:.4f}"
            )
        return "\n".join(lines)


def chain_path_signature(node_path: Tuple[QRGNode, ...]) -> Tuple[str, ...]:
    """Extract the label sequence of a chain QRG path (for the census)."""
    return tuple(node.label for node in node_path)
