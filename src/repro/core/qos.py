"""QoS vectors, levels, partial order, and end-to-end rankings (paper §2.2).

A *QoS vector* assigns a discrete value to each application-level QoS
parameter (frame rate, image size, ...).  Two vectors are comparable only
when they carry the same parameter set; ``Q_a <= Q_b`` holds iff every
parameter of ``Q_a`` is no larger than the corresponding parameter of
``Q_b`` -- a partial order.

A *QoS level* is a named vector: the paper's ``Q_a``, ``Q_b``, ... nodes.
End-to-end QoS levels are additionally given a *linear* ranking supplied by
the user (paper §4.1.1: "we assume that the end-to-end QoS levels can be
ranked in a linear order, based on a user's preference").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import IncomparableError, ModelError

#: Values a QoS parameter may take.  The paper assumes discrete parameter
#: domains; numbers and strings both occur in practice (e.g. image size
#: "CIF"/"QCIF" vs. frame rate 15/30).
QoSValue = Union[int, float, str]


def _comparable_values(a: QoSValue, b: QoSValue) -> bool:
    if isinstance(a, str) != isinstance(b, str):
        return False
    return True


class QoSVector(Mapping[str, QoSValue]):
    """An immutable, hashable QoS vector.

    Supports the partial order of the paper: ``<=`` / ``>=`` require
    identical parameter sets and compare parameter-wise.  String-valued
    parameters compare by an explicit order only when both vectors came
    from the same :class:`QoSParameter` domain; bare strings compare
    lexicographically (callers who need a custom order should map the
    domain to integers, which is what :class:`QoSParameter` does).
    """

    __slots__ = ("_values", "_hash")

    def __init__(
        self,
        values: Mapping[str, QoSValue] | Iterable[Tuple[str, QoSValue]] = (),
        **kw: QoSValue,
    ):
        data: Dict[str, QoSValue] = dict(values, **kw)
        if not data:
            raise ModelError("a QoS vector must have at least one parameter")
        for name, value in data.items():
            if not isinstance(name, str) or not name:
                raise ModelError(f"invalid QoS parameter name: {name!r}")
            if not isinstance(value, (int, float, str)):
                raise ModelError(f"invalid QoS value for {name!r}: {value!r}")
        self._values: Dict[str, QoSValue] = dict(sorted(data.items()))
        self._hash = hash(tuple(self._values.items()))

    # -- Mapping interface ------------------------------------------------

    def __getitem__(self, key: str) -> QoSValue:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- identity ---------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QoSVector):
            return NotImplemented
        return self._values == other._values

    # -- partial order ------------------------------------------------------

    def _check_comparable(self, other: "QoSVector") -> None:
        if set(self._values) != set(other._values):
            raise IncomparableError(
                f"QoS vectors have different parameter sets: "
                f"{sorted(self._values)} vs {sorted(other._values)}"
            )
        for name in self._values:
            if not _comparable_values(self._values[name], other._values[name]):
                raise IncomparableError(
                    f"QoS parameter {name!r} mixes string and numeric values"
                )

    def __le__(self, other: "QoSVector") -> bool:
        self._check_comparable(other)
        return all(self._values[k] <= other._values[k] for k in self._values)  # type: ignore[operator]

    def __ge__(self, other: "QoSVector") -> bool:
        return other.__le__(self)

    def __lt__(self, other: "QoSVector") -> bool:
        return self.__le__(other) and self != other

    def __gt__(self, other: "QoSVector") -> bool:
        return other.__lt__(self)

    def comparable_with(self, other: "QoSVector") -> bool:
        """True when ``<=`` between the two vectors is defined."""
        try:
            self._check_comparable(other)
        except IncomparableError:
            return False
        return True

    # -- composition ---------------------------------------------------------

    def concat(self, other: "QoSVector", prefixes: Tuple[str, str] = ("", "")) -> "QoSVector":
        """Concatenate two vectors (paper §4.3.2, fan-in components).

        Overlapping parameter names must be disambiguated with
        ``prefixes``; an undisambiguated collision is an error.
        """
        left = {prefixes[0] + k: v for k, v in self._values.items()}
        right = {prefixes[1] + k: v for k, v in other._values.items()}
        overlap = set(left) & set(right)
        if overlap:
            raise ModelError(
                f"cannot concatenate QoS vectors: parameter collision on {sorted(overlap)}; "
                "supply distinct prefixes"
            )
        return QoSVector({**left, **right})

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"QoSVector({inner})"


@dataclass(frozen=True)
class QoSLevel:
    """A named QoS vector -- one node of the QoS-Resource Graph.

    The ``label`` is the paper's node name (``Qa``, ``Qb``, ...); it is
    the identity used by translation tables and reported in plans.
    """

    label: str
    vector: QoSVector

    def __post_init__(self) -> None:
        if not self.label:
            raise ModelError("QoS level label must be non-empty")

    def __str__(self) -> str:
        return self.label


def concat_levels(levels: Sequence[QoSLevel], sep: str = "|") -> QoSLevel:
    """Concatenate upstream output levels into one fan-in input level.

    The label is the joined constituent labels (``"Qn|Qp"``); parameters
    are prefixed with the constituent index to avoid collisions.
    """
    if not levels:
        raise ModelError("cannot concatenate an empty sequence of QoS levels")
    if len(levels) == 1:
        return levels[0]
    label = sep.join(level.label for level in levels)
    merged: Dict[str, QoSValue] = {}
    for index, level in enumerate(levels):
        for name, value in level.vector.items():
            merged[f"u{index}.{name}"] = value
    return QoSLevel(label, QoSVector(merged))


class QoSRanking:
    """A linear ranking of end-to-end QoS levels (best first or by score).

    The paper indexes end-to-end levels as *level 3 > level 2 > level 1*.
    We store an explicit best-to-worst label order and expose both rank
    comparison and the numeric level used in the evaluation's "average
    end-to-end QoS level" metric (best level = ``len(order)``).
    """

    def __init__(self, best_to_worst: Sequence[str]) -> None:
        order = list(best_to_worst)
        if not order:
            raise ModelError("ranking must contain at least one level")
        if len(set(order)) != len(order):
            raise ModelError(f"duplicate labels in ranking: {order!r}")
        self._order = order
        self._rank = {label: index for index, label in enumerate(order)}

    @property
    def labels(self) -> Tuple[str, ...]:
        """Level labels, best first."""
        return tuple(self._order)

    def __contains__(self, label: str) -> bool:
        return label in self._rank

    def rank(self, label: str) -> int:
        """0 for the best level, 1 for the next, ..."""
        try:
            return self._rank[label]
        except KeyError:
            raise ModelError(f"level {label!r} is not in the end-to-end ranking") from None

    def numeric_level(self, label: str) -> int:
        """Paper-style numeric level: best = N, worst = 1."""
        return len(self._order) - self.rank(label)

    def better(self, a: str, b: str) -> bool:
        """True when level ``a`` ranks strictly above level ``b``."""
        return self.rank(a) < self.rank(b)

    def best(self, labels: Iterable[str]) -> Optional[str]:
        """The highest-ranked label among ``labels`` (None when empty)."""
        known = [label for label in labels if label in self._rank]
        if not known:
            return None
        return min(known, key=self._rank.__getitem__)

    def sorted_best_first(self, labels: Iterable[str]) -> list[str]:
        """The known labels sorted from best to worst."""
        return sorted((l for l in labels if l in self._rank), key=self._rank.__getitem__)

    def __repr__(self) -> str:
        return f"QoSRanking({' > '.join(self._order)})"
