"""The QoS-Resource Graph (paper §4.1.1).

A QRG is a per-session snapshot graph:

* **nodes** -- the ``Q_in`` / ``Q_out`` levels of every participating
  component (plus, implicitly, the source data quality, which is the
  source component's selected input level);
* **intra-component edges** -- from a ``Q_in`` node to a ``Q_out`` node of
  the same component, existing iff the translated requirement is
  satisfiable under current availability, weighted by the contention
  index of the edge's bottleneck resource (eq. 2-3);
* **equivalence edges** -- from a component's ``Q_out`` node to the
  equivalent ``Q_in`` node of a downstream component, weight 0.

For DAG services, a fan-in component's input node corresponds to a
*group* of upstream output nodes (its concatenation parts); the group
structure is kept explicitly for the two-pass heuristic of §4.3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.component import Binding
from repro.core.errors import ModelError, PlanningError
from repro.obs import trace as _trace
from repro.core.qos import QoSLevel
from repro.core.resources import (
    AvailabilitySnapshot,
    ContentionIndex,
    ResourceVector,
    ratio_contention_index,
)
from repro.core.service import DistributedService


@dataclass(frozen=True, order=True)
class QRGNode:
    """Identity of one QRG node: (component, side, level label)."""

    component: str
    kind: str  # "in" | "out"
    label: str

    def __post_init__(self) -> None:
        if self.kind not in ("in", "out"):
            raise ModelError(f"invalid QRG node kind: {self.kind!r}")

    def __str__(self) -> str:
        return f"{self.component}.{self.kind}:{self.label}"


@dataclass(frozen=True)
class IntraEdge:
    """A feasible (Q_in -> Q_out) edge of one component.

    ``requirement`` is slot-keyed (the component's view); ``bound`` is
    resource-id-keyed (the environment's view, after applying the
    session's binding).  ``weight`` is the max per-resource contention
    index; ``bottleneck_resource`` the arg-max resource id; ``alpha`` the
    Availability Change Index of that resource (1.0 without trend data).
    """

    src: QRGNode
    dst: QRGNode
    requirement: ResourceVector
    bound: ResourceVector
    weight: float
    bottleneck_resource: str
    alpha: float
    per_resource: Mapping[str, float] = field(hash=False, default=None)  # type: ignore[assignment]


@dataclass(frozen=True)
class EquivEdge:
    """A zero-weight equivalence edge (upstream Q_out -> downstream Q_in)."""

    src: QRGNode
    dst: QRGNode


@dataclass(frozen=True)
class FanInGroup:
    """One way to realise a fan-in input node from upstream outputs.

    ``parts`` lists the upstream output nodes whose concatenation equals
    the input node's level, in fan-in order.  The input node is usable
    only when *all* parts are reachable (AND semantics, paper §4.3.2).
    """

    input_node: QRGNode
    parts: Tuple[QRGNode, ...]


class QoSResourceGraph:
    """The constructed snapshot graph plus lookup indices."""

    def __init__(
        self,
        service: DistributedService,
        source_node: QRGNode,
        nodes: Dict[QRGNode, QoSLevel],
        intra_edges: List[IntraEdge],
        equiv_edges: List[EquivEdge],
        fanin_groups: List[FanInGroup],
        snapshot: AvailabilitySnapshot,
    ) -> None:
        self.service = service
        self.source_node = source_node
        self.nodes = nodes
        self.intra_edges = intra_edges
        self.equiv_edges = equiv_edges
        self.fanin_groups = fanin_groups
        self.snapshot = snapshot
        # Adjacency indices.
        self._out_intra: Dict[QRGNode, List[IntraEdge]] = {}
        self._in_intra: Dict[QRGNode, List[IntraEdge]] = {}
        for edge in intra_edges:
            self._out_intra.setdefault(edge.src, []).append(edge)
            self._in_intra.setdefault(edge.dst, []).append(edge)
        self._out_equiv: Dict[QRGNode, List[EquivEdge]] = {}
        self._in_equiv: Dict[QRGNode, List[EquivEdge]] = {}
        for eq in equiv_edges:
            self._out_equiv.setdefault(eq.src, []).append(eq)
            self._in_equiv.setdefault(eq.dst, []).append(eq)
        self._groups_by_input: Dict[QRGNode, List[FanInGroup]] = {}
        for group in fanin_groups:
            self._groups_by_input.setdefault(group.input_node, []).append(group)

    # -- topology queries --------------------------------------------------

    def sink_nodes(self) -> List[QRGNode]:
        """Output nodes of the sink component (end-to-end QoS levels)."""
        sink = self.service.sink_component
        return [QRGNode(sink.name, "out", level.label) for level in sink.output_levels]

    def intra_from(self, node: QRGNode) -> List[IntraEdge]:
        """Intra-component edges leaving ``node``."""
        return self._out_intra.get(node, [])

    def intra_into(self, node: QRGNode) -> List[IntraEdge]:
        """Intra-component edges entering ``node``."""
        return self._in_intra.get(node, [])

    def equiv_from(self, node: QRGNode) -> List[EquivEdge]:
        """Equivalence edges leaving ``node``."""
        return self._out_equiv.get(node, [])

    def equiv_into(self, node: QRGNode) -> List[EquivEdge]:
        """Equivalence edges entering ``node``."""
        return self._in_equiv.get(node, [])

    def groups_for_input(self, node: QRGNode) -> List[FanInGroup]:
        """Fan-in groups realising a fan-in input node."""
        return self._groups_by_input.get(node, [])

    def successors(self, node: QRGNode) -> List[Tuple[QRGNode, float, Optional[IntraEdge]]]:
        """(next node, edge weight, intra edge or None) -- for Dijkstra."""
        result: List[Tuple[QRGNode, float, Optional[IntraEdge]]] = []
        for edge in self.intra_from(node):
            result.append((edge.dst, edge.weight, edge))
        for eq in self.equiv_from(node):
            result.append((eq.dst, 0.0, None))
        return result

    def edge_between(self, src: QRGNode, dst: QRGNode) -> Optional[IntraEdge]:
        """The intra edge from ``src`` to ``dst``, or None."""
        for edge in self.intra_from(src):
            if edge.dst == dst:
                return edge
        return None

    def count_nodes(self) -> int:
        """Number of QRG nodes."""
        return len(self.nodes)

    def count_edges(self) -> int:
        """Number of QRG edges (intra + equivalence)."""
        return len(self.intra_edges) + len(self.equiv_edges)


def resolve_source_level(
    service: DistributedService, source_label: Optional[str] = None
) -> QoSLevel:
    """The session's source data quality level (paper §4.1.1)."""
    source_component = service.source_component
    if source_label is None:
        if len(source_component.input_levels) != 1:
            raise PlanningError(
                f"source component {source_component.name!r} has several input levels "
                f"({[l.label for l in source_component.input_levels]}); pass source_label"
            )
        return source_component.input_levels[0]
    return source_component.input_level(source_label)


def price_component_edges(
    component,
    binding: Binding,
    snapshot: AvailabilitySnapshot,
    *,
    allowed_input_labels: Optional[frozenset] = None,
    contention_index: ContentionIndex = ratio_contention_index,
) -> List[IntraEdge]:
    """Feasible, priced (Q_in -> Q_out) edges of ONE component.

    This is the *local* half of QRG construction: it needs only the
    component's own definition, its slot binding, and the availability of
    the resources it touches -- which is why, in the distributed model
    store of §3, each host's QoSProxy can compute its own component's
    fragment and ship it to the main proxy.
    """
    availability = snapshot.availability()
    edges: List[IntraEdge] = []
    for qin, qout, requirement in component.supported_pairs():
        if allowed_input_labels is not None and qin.label not in allowed_input_labels:
            continue
        bound = binding.bind_requirement(component.name, requirement)
        for resource_id in bound:
            if resource_id not in availability:
                raise PlanningError(
                    f"snapshot lacks resource {resource_id!r} needed by "
                    f"component {component.name!r}"
                )
        if not bound.satisfiable_under(availability):
            continue
        report = bound.contention(availability, contention_index)
        alpha = snapshot[report.bottleneck_resource].alpha
        edges.append(
            IntraEdge(
                src=QRGNode(component.name, "in", qin.label),
                dst=QRGNode(component.name, "out", qout.label),
                requirement=requirement,
                bound=bound,
                weight=report.psi,
                bottleneck_resource=report.bottleneck_resource,
                alpha=alpha,
                per_resource=dict(report.per_resource),
            )
        )
    return edges


def assemble_qrg(
    service: DistributedService,
    source_level: QoSLevel,
    intra_edges: List[IntraEdge],
    snapshot: AvailabilitySnapshot,
) -> QoSResourceGraph:
    """The *structural* half: nodes + equivalence edges + fan-in groups.

    ``intra_edges`` may come from local pricing (:func:`build_qrg`) or
    from fragments shipped by remote proxies (the distributed approach).
    Edges from input levels other than the selected source level of the
    source component are dropped here, so remote pricers need not know
    which source level the session selected.
    """
    source_node = QRGNode(service.graph.source, "in", source_level.label)
    nodes: Dict[QRGNode, QoSLevel] = {}
    equiv_edges: List[EquivEdge] = []
    fanin_groups: List[FanInGroup] = []

    kept_edges = [
        edge
        for edge in intra_edges
        if edge.src.component != service.graph.source or edge.src == source_node
    ]

    for name in service.graph.topological_order():
        component = service.component(name)
        if name == service.graph.source:
            input_levels: Tuple[QoSLevel, ...] = (source_level,)
        else:
            input_levels = component.input_levels
        for level in input_levels:
            nodes[QRGNode(name, "in", level.label)] = level
        for level in component.output_levels:
            nodes[QRGNode(name, "out", level.label)] = level

        upstream_names = service.graph.upstreams(name)
        if not upstream_names:
            continue
        fan_in = len(upstream_names) > 1
        for parts, combined in service.upstream_output_combinations(name):
            matches = service.equivalent_input_levels(name, combined)
            for match in matches:
                input_node = QRGNode(name, "in", match.label)
                part_nodes = tuple(
                    QRGNode(upstream, "out", level.label) for upstream, level in parts
                )
                if fan_in:
                    fanin_groups.append(FanInGroup(input_node=input_node, parts=part_nodes))
                    for part_node in part_nodes:
                        equiv_edges.append(EquivEdge(src=part_node, dst=input_node))
                else:
                    equiv_edges.append(EquivEdge(src=part_nodes[0], dst=input_node))

    return QoSResourceGraph(
        service=service,
        source_node=source_node,
        nodes=nodes,
        intra_edges=kept_edges,
        equiv_edges=equiv_edges,
        fanin_groups=fanin_groups,
        snapshot=snapshot,
    )


def build_qrg(
    service: DistributedService,
    binding: Binding,
    snapshot: AvailabilitySnapshot,
    *,
    source_label: Optional[str] = None,
    contention_index: ContentionIndex = ratio_contention_index,
) -> QoSResourceGraph:
    """Construct the QRG for one session (paper §4.1.1).

    Parameters
    ----------
    service:
        The QoS-Resource Model definition.
    binding:
        Per-session mapping of (component, slot) -> concrete resource id.
    snapshot:
        Per-resource observations (availability + availability change
        index) collected from the Resource Brokers.
    source_label:
        Which input level of the source component is the session's source
        data quality.  Defaults to the source component's sole input
        level; required when it has several.
    contention_index:
        The psi definition (paper footnote 2 allows alternatives).
    """
    with _trace.span("qrg_build", service=service.name) as span:
        source_level = resolve_source_level(service, source_label)
        intra_edges: List[IntraEdge] = []
        for name in service.graph.topological_order():
            component = service.component(name)
            allowed = (
                frozenset({source_level.label}) if name == service.graph.source else None
            )
            intra_edges.extend(
                price_component_edges(
                    component,
                    binding,
                    snapshot,
                    allowed_input_labels=allowed,
                    contention_index=contention_index,
                )
            )
        qrg = assemble_qrg(service, source_level, intra_edges, snapshot)
        span.set(nodes=qrg.count_nodes(), edges=qrg.count_edges())
        return qrg
