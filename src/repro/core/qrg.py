"""The QoS-Resource Graph (paper §4.1.1).

A QRG is a per-session snapshot graph:

* **nodes** -- the ``Q_in`` / ``Q_out`` levels of every participating
  component (plus, implicitly, the source data quality, which is the
  source component's selected input level);
* **intra-component edges** -- from a ``Q_in`` node to a ``Q_out`` node of
  the same component, existing iff the translated requirement is
  satisfiable under current availability, weighted by the contention
  index of the edge's bottleneck resource (eq. 2-3);
* **equivalence edges** -- from a component's ``Q_out`` node to the
  equivalent ``Q_in`` node of a downstream component, weight 0.

For DAG services, a fan-in component's input node corresponds to a
*group* of upstream output nodes (its concatenation parts); the group
structure is kept explicitly for the two-pass heuristic of §4.3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

import numpy as _np

from repro.core.component import Binding
from repro.core.errors import ModelError, PlanningError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.core.qos import QoSLevel
from repro.core.resources import (
    AvailabilitySnapshot,
    ContentionIndex,
    ResourceVector,
    headroom_contention_index,
    ratio_contention_index,
)
from repro.core.service import DistributedService


@dataclass(frozen=True, order=True)
class QRGNode:
    """Identity of one QRG node: (component, side, level label)."""

    component: str
    kind: str  # "in" | "out"
    label: str

    def __post_init__(self) -> None:
        if self.kind not in ("in", "out"):
            raise ModelError(f"invalid QRG node kind: {self.kind!r}")
        # Nodes are hashed constantly (adjacency indices, planner maps);
        # the cached value keeps repeated hashing O(1).
        object.__setattr__(
            self, "_hash", hash((self.component, self.kind, self.label))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"{self.component}.{self.kind}:{self.label}"


@dataclass(frozen=True)
class IntraEdge:
    """A feasible (Q_in -> Q_out) edge of one component.

    ``requirement`` is slot-keyed (the component's view); ``bound`` is
    resource-id-keyed (the environment's view, after applying the
    session's binding).  ``weight`` is the max per-resource contention
    index; ``bottleneck_resource`` the arg-max resource id; ``alpha`` the
    Availability Change Index of that resource (1.0 without trend data).
    """

    src: QRGNode
    dst: QRGNode
    requirement: ResourceVector
    bound: ResourceVector
    weight: float
    bottleneck_resource: str
    alpha: float
    per_resource: Mapping[str, float] = field(hash=False, default=None)  # type: ignore[assignment]


@dataclass(frozen=True)
class EquivEdge:
    """A zero-weight equivalence edge (upstream Q_out -> downstream Q_in)."""

    src: QRGNode
    dst: QRGNode


@dataclass(frozen=True)
class FanInGroup:
    """One way to realise a fan-in input node from upstream outputs.

    ``parts`` lists the upstream output nodes whose concatenation equals
    the input node's level, in fan-in order.  The input node is usable
    only when *all* parts are reachable (AND semantics, paper §4.3.2).
    """

    input_node: QRGNode
    parts: Tuple[QRGNode, ...]


class QoSResourceGraph:
    """The constructed snapshot graph plus lookup indices."""

    def __init__(
        self,
        service: DistributedService,
        source_node: QRGNode,
        nodes: Dict[QRGNode, QoSLevel],
        intra_edges: List[IntraEdge],
        equiv_edges: List[EquivEdge],
        fanin_groups: List[FanInGroup],
        snapshot: AvailabilitySnapshot,
    ) -> None:
        self.service = service
        self.source_node = source_node
        self.nodes = nodes
        self.intra_edges = intra_edges
        self.equiv_edges = equiv_edges
        self.fanin_groups = fanin_groups
        self.snapshot = snapshot
        # Adjacency indices.
        self._out_intra: Dict[QRGNode, List[IntraEdge]] = {}
        self._in_intra: Dict[QRGNode, List[IntraEdge]] = {}
        for edge in intra_edges:
            self._out_intra.setdefault(edge.src, []).append(edge)
            self._in_intra.setdefault(edge.dst, []).append(edge)
        self._out_equiv: Dict[QRGNode, List[EquivEdge]] = {}
        self._in_equiv: Dict[QRGNode, List[EquivEdge]] = {}
        for eq in equiv_edges:
            self._out_equiv.setdefault(eq.src, []).append(eq)
            self._in_equiv.setdefault(eq.dst, []).append(eq)
        self._groups_by_input: Dict[QRGNode, List[FanInGroup]] = {}
        for group in fanin_groups:
            self._groups_by_input.setdefault(group.input_node, []).append(group)

    # -- topology queries --------------------------------------------------

    def sink_nodes(self) -> List[QRGNode]:
        """Output nodes of the sink component (end-to-end QoS levels)."""
        sink = self.service.sink_component
        return [QRGNode(sink.name, "out", level.label) for level in sink.output_levels]

    def intra_from(self, node: QRGNode) -> List[IntraEdge]:
        """Intra-component edges leaving ``node``."""
        return self._out_intra.get(node, [])

    def intra_into(self, node: QRGNode) -> List[IntraEdge]:
        """Intra-component edges entering ``node``."""
        return self._in_intra.get(node, [])

    def equiv_from(self, node: QRGNode) -> List[EquivEdge]:
        """Equivalence edges leaving ``node``."""
        return self._out_equiv.get(node, [])

    def equiv_into(self, node: QRGNode) -> List[EquivEdge]:
        """Equivalence edges entering ``node``."""
        return self._in_equiv.get(node, [])

    def groups_for_input(self, node: QRGNode) -> List[FanInGroup]:
        """Fan-in groups realising a fan-in input node."""
        return self._groups_by_input.get(node, [])

    def successors(self, node: QRGNode) -> List[Tuple[QRGNode, float, Optional[IntraEdge]]]:
        """(next node, edge weight, intra edge or None) -- for Dijkstra."""
        result: List[Tuple[QRGNode, float, Optional[IntraEdge]]] = []
        for edge in self.intra_from(node):
            result.append((edge.dst, edge.weight, edge))
        for eq in self.equiv_from(node):
            result.append((eq.dst, 0.0, None))
        return result

    def edge_between(self, src: QRGNode, dst: QRGNode) -> Optional[IntraEdge]:
        """The intra edge from ``src`` to ``dst``, or None."""
        for edge in self.intra_from(src):
            if edge.dst == dst:
                return edge
        return None

    def count_nodes(self) -> int:
        """Number of QRG nodes."""
        return len(self.nodes)

    def count_edges(self) -> int:
        """Number of QRG edges (intra + equivalence)."""
        return len(self.intra_edges) + len(self.equiv_edges)


def resolve_source_level(
    service: DistributedService, source_label: Optional[str] = None
) -> QoSLevel:
    """The session's source data quality level (paper §4.1.1)."""
    source_component = service.source_component
    if source_label is None:
        if len(source_component.input_levels) != 1:
            raise PlanningError(
                f"source component {source_component.name!r} has several input levels "
                f"({[l.label for l in source_component.input_levels]}); pass source_label"
            )
        return source_component.input_levels[0]
    return source_component.input_level(source_label)


def price_component_edges(
    component,
    binding: Binding,
    snapshot: AvailabilitySnapshot,
    *,
    allowed_input_labels: Optional[frozenset] = None,
    contention_index: ContentionIndex = ratio_contention_index,
) -> List[IntraEdge]:
    """Feasible, priced (Q_in -> Q_out) edges of ONE component.

    This is the *local* half of QRG construction: it needs only the
    component's own definition, its slot binding, and the availability of
    the resources it touches -- which is why, in the distributed model
    store of §3, each host's QoSProxy can compute its own component's
    fragment and ship it to the main proxy.
    """
    availability = snapshot.availability()
    edges: List[IntraEdge] = []
    for qin, qout, requirement in component.supported_pairs():
        if allowed_input_labels is not None and qin.label not in allowed_input_labels:
            continue
        bound = binding.bind_requirement(component.name, requirement)
        for resource_id in bound:
            if resource_id not in availability:
                raise PlanningError(
                    f"snapshot lacks resource {resource_id!r} needed by "
                    f"component {component.name!r}"
                )
        if not bound.satisfiable_under(availability):
            continue
        report = bound.contention(availability, contention_index)
        alpha = snapshot[report.bottleneck_resource].alpha
        edges.append(
            IntraEdge(
                src=QRGNode(component.name, "in", qin.label),
                dst=QRGNode(component.name, "out", qout.label),
                requirement=requirement,
                bound=bound,
                weight=report.psi,
                bottleneck_resource=report.bottleneck_resource,
                alpha=alpha,
                per_resource=dict(report.per_resource),
            )
        )
    return edges


def assemble_qrg(
    service: DistributedService,
    source_level: QoSLevel,
    intra_edges: List[IntraEdge],
    snapshot: AvailabilitySnapshot,
) -> QoSResourceGraph:
    """The *structural* half: nodes + equivalence edges + fan-in groups.

    ``intra_edges`` may come from local pricing (:func:`build_qrg`) or
    from fragments shipped by remote proxies (the distributed approach).
    Edges from input levels other than the selected source level of the
    source component are dropped here, so remote pricers need not know
    which source level the session selected.
    """
    source_node = QRGNode(service.graph.source, "in", source_level.label)
    nodes: Dict[QRGNode, QoSLevel] = {}
    equiv_edges: List[EquivEdge] = []
    fanin_groups: List[FanInGroup] = []

    kept_edges = [
        edge
        for edge in intra_edges
        if edge.src.component != service.graph.source or edge.src == source_node
    ]

    for name in service.graph.topological_order():
        component = service.component(name)
        if name == service.graph.source:
            input_levels: Tuple[QoSLevel, ...] = (source_level,)
        else:
            input_levels = component.input_levels
        for level in input_levels:
            nodes[QRGNode(name, "in", level.label)] = level
        for level in component.output_levels:
            nodes[QRGNode(name, "out", level.label)] = level

        upstream_names = service.graph.upstreams(name)
        if not upstream_names:
            continue
        fan_in = len(upstream_names) > 1
        for parts, combined in service.upstream_output_combinations(name):
            matches = service.equivalent_input_levels(name, combined)
            for match in matches:
                input_node = QRGNode(name, "in", match.label)
                part_nodes = tuple(
                    QRGNode(upstream, "out", level.label) for upstream, level in parts
                )
                if fan_in:
                    fanin_groups.append(FanInGroup(input_node=input_node, parts=part_nodes))
                    for part_node in part_nodes:
                        equiv_edges.append(EquivEdge(src=part_node, dst=input_node))
                else:
                    equiv_edges.append(EquivEdge(src=part_nodes[0], dst=input_node))

    return QoSResourceGraph(
        service=service,
        source_node=source_node,
        nodes=nodes,
        intra_edges=kept_edges,
        equiv_edges=equiv_edges,
        fanin_groups=fanin_groups,
        snapshot=snapshot,
    )


# ---------------------------------------------------------------------------
# Skeleton / pricing split (availability-independent vs per-snapshot).
#
# Only two things about a QRG depend on the availability snapshot: which
# intra-component edges survive the feasibility filter, and the psi
# weights (paper §4.1).  Everything else -- the node set, the equivalence
# edges, the fan-in groups, and the *bound* requirement vector of every
# candidate edge -- is a pure function of (service, binding, source
# level).  A :class:`QRGSkeleton` captures that invariant half once, so
# repeated sessions with the same (service, binding) pay only the cheap
# per-snapshot pricing pass.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeTemplate:
    """One candidate (Q_in -> Q_out) edge before feasibility/pricing.

    ``requirement`` is slot-keyed, ``bound`` resource-id-keyed -- exactly
    the two vectors an :class:`IntraEdge` carries, minus the
    snapshot-dependent weight fields.  ``bound_items`` repeats the bound
    vector as a flat tuple so the per-snapshot pricing loop iterates
    without Mapping-protocol overhead.
    """

    src: QRGNode
    dst: QRGNode
    requirement: ResourceVector
    bound: ResourceVector
    bound_items: Tuple[Tuple[str, float], ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.bound_items:
            object.__setattr__(self, "bound_items", tuple(self.bound.items()))


@dataclass(frozen=True)
class QRGSkeleton:
    """The availability-independent half of a QRG.

    Immutable and reusable across snapshots: :func:`price_skeleton`
    turns it plus one :class:`AvailabilitySnapshot` into a full
    :class:`QoSResourceGraph` identical to a from-scratch
    :func:`build_qrg`.
    """

    service: DistributedService
    source_node: QRGNode
    source_level: QoSLevel
    nodes: Tuple[Tuple[QRGNode, QoSLevel], ...]
    edge_templates: Tuple[EdgeTemplate, ...]
    equiv_edges: Tuple[EquivEdge, ...]
    fanin_groups: Tuple[FanInGroup, ...]


def component_edge_templates(
    component,
    binding: Binding,
    *,
    allowed_input_labels: Optional[frozenset] = None,
) -> List[EdgeTemplate]:
    """Unpriced candidate edges of ONE component (the local half)."""
    templates: List[EdgeTemplate] = []
    for qin, qout, requirement in component.supported_pairs():
        if allowed_input_labels is not None and qin.label not in allowed_input_labels:
            continue
        templates.append(
            EdgeTemplate(
                src=QRGNode(component.name, "in", qin.label),
                dst=QRGNode(component.name, "out", qout.label),
                requirement=requirement,
                bound=binding.bind_requirement(component.name, requirement),
            )
        )
    return templates


def build_skeleton(
    service: DistributedService,
    binding: Binding,
    *,
    source_label: Optional[str] = None,
) -> QRGSkeleton:
    """Construct the availability-independent skeleton of a QRG.

    Mirrors :func:`build_qrg` exactly, minus everything that needs an
    availability snapshot: nodes, equivalence edges and fan-in groups
    are complete; intra-component edges are kept as *templates* (with
    their bound requirement vectors already computed) awaiting the
    feasibility filter and psi weights of :func:`price_skeleton`.
    """
    source_level = resolve_source_level(service, source_label)
    source_node = QRGNode(service.graph.source, "in", source_level.label)

    templates: List[EdgeTemplate] = []
    nodes: Dict[QRGNode, QoSLevel] = {}
    equiv_edges: List[EquivEdge] = []
    fanin_groups: List[FanInGroup] = []

    for name in service.graph.topological_order():
        component = service.component(name)
        allowed = (
            frozenset({source_level.label}) if name == service.graph.source else None
        )
        templates.extend(
            component_edge_templates(component, binding, allowed_input_labels=allowed)
        )

        if name == service.graph.source:
            input_levels: Tuple[QoSLevel, ...] = (source_level,)
        else:
            input_levels = component.input_levels
        for level in input_levels:
            nodes[QRGNode(name, "in", level.label)] = level
        for level in component.output_levels:
            nodes[QRGNode(name, "out", level.label)] = level

        upstream_names = service.graph.upstreams(name)
        if not upstream_names:
            continue
        fan_in = len(upstream_names) > 1
        for parts, combined in service.upstream_output_combinations(name):
            matches = service.equivalent_input_levels(name, combined)
            for match in matches:
                input_node = QRGNode(name, "in", match.label)
                part_nodes = tuple(
                    QRGNode(upstream, "out", level.label) for upstream, level in parts
                )
                if fan_in:
                    fanin_groups.append(FanInGroup(input_node=input_node, parts=part_nodes))
                    for part_node in part_nodes:
                        equiv_edges.append(EquivEdge(src=part_node, dst=input_node))
                else:
                    equiv_edges.append(EquivEdge(src=part_nodes[0], dst=input_node))

    return QRGSkeleton(
        service=service,
        source_node=source_node,
        source_level=source_level,
        nodes=tuple(nodes.items()),
        edge_templates=tuple(templates),
        equiv_edges=tuple(equiv_edges),
        fanin_groups=tuple(fanin_groups),
    )


#: Mean bound resources per edge template above which the dense numpy
#: pricing pass beats the scalar loop (empirical crossover; see
#: :class:`_SkeletonPricingArrays.prefer_vector`).
_VECTOR_MIN_MEAN_WIDTH = 5.0


class _SkeletonPricingArrays:
    """Dense numpy layout of a skeleton's edge templates (lazy, cached).

    ``required``/``bound_mask`` are (edges x resources) with columns in
    ascending resource-id order -- the order the vectorized bottleneck
    tie-break relies on.  Built once per skeleton; pricing then reduces
    to one masked kernel evaluation per snapshot.
    """

    __slots__ = (
        "resource_ids",
        "resource_set",
        "required",
        "bound_mask",
        "edge_rids",
        "flat_rows",
        "flat_columns",
        "prefer_vector",
    )

    def __init__(self, templates: Tuple[EdgeTemplate, ...]) -> None:
        ids = sorted({rid for template in templates for rid, _ in template.bound_items})
        index = {rid: column for column, rid in enumerate(ids)}
        self.resource_ids: Tuple[str, ...] = tuple(ids)
        self.resource_set: FrozenSet[str] = frozenset(ids)
        self.required = _np.zeros((len(templates), len(ids)))
        self.bound_mask = _np.zeros((len(templates), len(ids)), dtype=bool)
        #: Per edge: its bound resource ids, in bound order.
        self.edge_rids: List[Tuple[str, ...]] = []
        #: Flat (row, column) gather indices over every edge's bound
        #: items, concatenated in edge order -- one fancy-indexing pull
        #: recovers all per-resource values without per-element boxing.
        flat_rows: List[int] = []
        flat_columns: List[int] = []
        for row, template in enumerate(templates):
            self.edge_rids.append(tuple(rid for rid, _ in template.bound_items))
            for rid, amount in template.bound_items:
                self.required[row, index[rid]] = amount
                self.bound_mask[row, index[rid]] = True
                flat_rows.append(row)
                flat_columns.append(index[rid])
        self.flat_rows = _np.array(flat_rows, dtype=_np.intp)
        self.flat_columns = _np.array(flat_columns, dtype=_np.intp)
        #: Whether the dense kernel beats the scalar loop for this
        #: shape.  The per-edge python work (per-resource dict + edge
        #: object) is identical on both paths, so the kernel only pays
        #: off once it replaces enough scalar index calls per edge;
        #: measured crossover is ~5 bound resources per template.
        self.prefer_vector = bool(templates) and (
            len(flat_rows) / len(templates) >= _VECTOR_MIN_MEAN_WIDTH
        )


def _new_intra_edge(
    src: QRGNode,
    dst: QRGNode,
    requirement: ResourceVector,
    bound: ResourceVector,
    weight: float,
    bottleneck_resource: str,
    alpha: float,
    per_resource: Dict[str, float],
) -> IntraEdge:
    """Construct an :class:`IntraEdge` without the frozen-dataclass
    ``object.__setattr__``-per-field ceremony (~2.4x cheaper).

    Pricing creates one instance per feasible edge per session, which
    makes construction itself a measurable share of the planning hot
    path.  Field set and semantics are identical to the generated
    ``__init__`` (IntraEdge has no ``__post_init__``).
    """
    edge = object.__new__(IntraEdge)
    edge.__dict__.update(
        src=src,
        dst=dst,
        requirement=requirement,
        bound=bound,
        weight=weight,
        bottleneck_resource=bottleneck_resource,
        alpha=alpha,
        per_resource=per_resource,
    )
    return edge


def _ratio_kernel(required: _np.ndarray, available: _np.ndarray) -> _np.ndarray:
    """Vectorized :func:`ratio_contention_index` (bit-identical)."""
    return _np.where(available > 0.0, required / available, _np.inf)


def _headroom_kernel(required: _np.ndarray, available: _np.ndarray) -> _np.ndarray:
    """Vectorized :func:`headroom_contention_index` (bit-identical)."""
    headroom = available - required
    return _np.where(headroom > 0.0, required / headroom, _np.inf)


#: Contention indices with a bit-identical vectorized form.  ``log`` is
#: absent on purpose: ``numpy.log1p`` and ``math.log1p`` disagree in the
#: last ulp on some inputs, and pricing must stay byte-identical to the
#: scalar path.  Unknown (caller-supplied) indices also fall back.
_VECTOR_KERNELS = {
    ratio_contention_index: _ratio_kernel,
    headroom_contention_index: _headroom_kernel,
}


def _pricing_arrays(skeleton: "QRGSkeleton") -> _SkeletonPricingArrays:
    """The skeleton's cached dense layout (built on first use)."""
    arrays = getattr(skeleton, "_pricing_arrays", None)
    if arrays is None:
        arrays = _SkeletonPricingArrays(skeleton.edge_templates)
        object.__setattr__(skeleton, "_pricing_arrays", arrays)
    return arrays


def _price_edges_scalar(
    skeleton: "QRGSkeleton",
    snapshot: AvailabilitySnapshot,
    availability: Mapping[str, float],
    contention_index: ContentionIndex,
) -> List[IntraEdge]:
    """Reference pricing loop: feasibility filter + psi weights.

    The vectorized path must match this edge-for-edge, bit-for-bit; it
    remains the executable spec (and the path for contention indices
    without a registered kernel, and for snapshots missing resources --
    the error message must name the first missing resource in template
    order).
    """
    intra_edges: List[IntraEdge] = []
    # Inlined equivalent of bound.satisfiable_under + bound.contention
    # (this loop runs per session; the Mapping-protocol round trips are
    # measurable at that frequency).
    for template in skeleton.edge_templates:
        feasible = True
        for resource_id, required in template.bound_items:
            available = availability.get(resource_id)
            if available is None:
                raise PlanningError(
                    f"snapshot lacks resource {resource_id!r} needed by "
                    f"component {template.src.component!r}"
                )
            if required > available:
                feasible = False
        if not feasible:
            continue
        per_resource: Dict[str, float] = {}
        best: Optional[Tuple[float, str]] = None
        for resource_id, required in template.bound_items:
            value = contention_index(required, availability[resource_id])
            per_resource[resource_id] = value
            if best is None or (value, resource_id) > best:
                best = (value, resource_id)
        assert best is not None
        psi, bottleneck = best
        intra_edges.append(
            _new_intra_edge(
                template.src,
                template.dst,
                template.requirement,
                template.bound,
                psi,
                bottleneck,
                snapshot[bottleneck].alpha,
                per_resource,
            )
        )
    return intra_edges


def _price_edges_vectorized(
    skeleton: "QRGSkeleton",
    arrays: _SkeletonPricingArrays,
    snapshot: AvailabilitySnapshot,
    availability: Mapping[str, float],
    kernel,
) -> List[IntraEdge]:
    """One masked kernel evaluation prices every candidate edge at once.

    Division only involves the same (required, available) float pairs as
    the scalar index functions, so the values are bit-identical; psi and
    the bottleneck are pure selections over them.
    """
    available = _np.array(
        [availability[rid] for rid in arrays.resource_ids], dtype=float
    )
    with _np.errstate(divide="ignore", invalid="ignore"):
        values = kernel(arrays.required, available)
    values = _np.where(arrays.bound_mask, values, -_np.inf)
    infeasible = ((arrays.required > available) & arrays.bound_mask).any(axis=1)
    # The scalar tie-break takes the max (value, resource_id) tuple;
    # columns are in ascending resource-id order, so among equal values
    # the largest column must win.  argmax returns the *first* max, so
    # scan each row reversed.
    last_column = values.shape[1] - 1
    best_column = last_column - _np.argmax(values[:, ::-1], axis=1)
    psi = values[_np.arange(values.shape[0]), best_column]

    # Bulk-convert to python scalars (one C pass each); per-element
    # ndarray indexing in the edge loop would dominate the runtime.
    flat_values = values[arrays.flat_rows, arrays.flat_columns].tolist()
    infeasible_list = infeasible.tolist()
    best_column_list = best_column.tolist()
    psi_list = psi.tolist()

    # One alpha lookup per *resource*, not per edge.
    alphas = [snapshot[rid].alpha for rid in arrays.resource_ids]

    intra_edges: List[IntraEdge] = []
    position = 0
    for row, template in enumerate(skeleton.edge_templates):
        rids = arrays.edge_rids[row]
        next_position = position + len(rids)
        if infeasible_list[row]:
            position = next_position
            continue
        per_resource = dict(zip(rids, flat_values[position:next_position]))
        position = next_position
        best = best_column_list[row]
        intra_edges.append(
            _new_intra_edge(
                template.src,
                template.dst,
                template.requirement,
                template.bound,
                psi_list[row],
                arrays.resource_ids[best],
                alphas[best],
                per_resource,
            )
        )
    return intra_edges


def price_skeleton(
    skeleton: QRGSkeleton,
    snapshot: AvailabilitySnapshot,
    *,
    contention_index: ContentionIndex = ratio_contention_index,
    vectorize: Optional[bool] = None,
) -> QoSResourceGraph:
    """The cheap per-snapshot pass: feasibility filter + psi weights.

    Produces a graph equal (same nodes, edges, weights) to calling
    :func:`build_qrg` from scratch against the same snapshot.  Indices
    with a registered vectorized kernel (``ratio``, ``headroom``) can
    price every candidate edge in one numpy pass over the skeleton's
    cached dense layout; by default (``vectorize=None``) the pass is
    used when the skeleton's shape makes it profitable (wide templates
    -- see ``_VECTOR_MIN_MEAN_WIDTH``).  Other indices, snapshots
    missing a required resource, and ``vectorize=False`` take the
    scalar reference loop.  Both paths produce bit-identical graphs (a
    property-tested invariant).
    """
    availability = snapshot.availability()
    kernel = _VECTOR_KERNELS.get(contention_index)
    use_vector = False
    if kernel is not None and skeleton.edge_templates and vectorize is not False:
        arrays = _pricing_arrays(skeleton)
        use_vector = (
            arrays.prefer_vector if vectorize is None else True
        ) and arrays.resource_set.issubset(availability.keys())
    if use_vector:
        intra_edges = _price_edges_vectorized(
            skeleton, arrays, snapshot, availability, kernel
        )
    else:
        intra_edges = _price_edges_scalar(
            skeleton, snapshot, availability, contention_index
        )
    return QoSResourceGraph(
        service=skeleton.service,
        source_node=skeleton.source_node,
        nodes=dict(skeleton.nodes),
        intra_edges=intra_edges,
        equiv_edges=list(skeleton.equiv_edges),
        fanin_groups=list(skeleton.fanin_groups),
        snapshot=snapshot,
    )


#: Cache key: (service name, source label, extra discriminators, binding items).
SkeletonKey = Tuple


class QRGSkeletonCache:
    """Memoises :func:`build_skeleton` results across sessions.

    Keyed *by value* on (service name, source label, caller-supplied
    extras, binding contents) -- bindings are rebuilt per session, so
    identity-based caching would never hit.  The cache trusts the caller
    to keep one service name pointing at one definition; anything that
    swaps a definition under a live cache must call :meth:`invalidate`
    (the explicit invalidation hook).

    ``hits`` / ``misses`` are plain counters for benchmarks; with a
    metrics registry installed the cache also increments the
    ``qrg.skeleton_cache`` counter (label ``outcome=hit|miss``).
    """

    def __init__(self) -> None:
        self._skeletons: Dict[SkeletonKey, QRGSkeleton] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def binding_key(binding: Binding) -> Tuple:
        """Hashable by-value key of a session binding."""
        return tuple(sorted(binding.items()))

    def skeleton_for(
        self,
        service: DistributedService,
        binding: Binding,
        *,
        source_label: Optional[str] = None,
        extra: Tuple = (),
    ) -> QRGSkeleton:
        """The (possibly cached) skeleton for (service, binding).

        ``extra`` lets callers add discriminators that change the service
        definition without changing its name -- e.g. the coordinator's
        per-session ``demand_scale``.
        """
        key: SkeletonKey = (service.name, source_label, extra, self.binding_key(binding))
        skeleton = self._skeletons.get(key)
        registry = _metrics.active_registry()
        if skeleton is None:
            self.misses += 1
            if registry is not None:
                registry.counter("qrg.skeleton_cache", outcome="miss").inc()
            skeleton = build_skeleton(service, binding, source_label=source_label)
            self._skeletons[key] = skeleton
        else:
            self.hits += 1
            if registry is not None:
                registry.counter("qrg.skeleton_cache", outcome="hit").inc()
        return skeleton

    def invalidate(self, service_name: Optional[str] = None) -> int:
        """Drop cached skeletons; returns how many were dropped.

        With ``service_name`` only that service's entries go; without it
        the whole cache is cleared.  Call this whenever a service
        definition changes behind a name the cache has seen.
        """
        if service_name is None:
            dropped = len(self._skeletons)
            self._skeletons.clear()
            return dropped
        stale = [key for key in self._skeletons if key[0] == service_name]
        for key in stale:
            del self._skeletons[key]
        return len(stale)

    def invalidate_resources(self, resource_ids) -> int:
        """Drop skeletons whose binding touches any of ``resource_ids``.

        The per-host invalidation hook: when a host fails (or its
        resources are rebound), only the skeletons bound to its
        resources are stale -- every other service keeps its warm
        entry, so fault recovery does not cold-start the whole cache.
        Returns how many skeletons were dropped.
        """
        doomed = set(resource_ids)
        if not doomed:
            return 0
        # Key element 3 is the binding's ((component, slot), resource_id)
        # items, so membership is decidable without the skeletons.
        stale = [
            key
            for key in self._skeletons
            if any(rid in doomed for _slot, rid in key[3])
        ]
        for key in stale:
            del self._skeletons[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._skeletons)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (for benchmarks and reports)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._skeletons)}


def build_qrg(
    service: DistributedService,
    binding: Binding,
    snapshot: AvailabilitySnapshot,
    *,
    source_label: Optional[str] = None,
    contention_index: ContentionIndex = ratio_contention_index,
    skeleton_cache: Optional[QRGSkeletonCache] = None,
) -> QoSResourceGraph:
    """Construct the QRG for one session (paper §4.1.1).

    Parameters
    ----------
    service:
        The QoS-Resource Model definition.
    binding:
        Per-session mapping of (component, slot) -> concrete resource id.
    snapshot:
        Per-resource observations (availability + availability change
        index) collected from the Resource Brokers.
    source_label:
        Which input level of the source component is the session's source
        data quality.  Defaults to the source component's sole input
        level; required when it has several.
    contention_index:
        The psi definition (paper footnote 2 allows alternatives).
    skeleton_cache:
        Reuse availability-independent skeletons across calls (the graph
        is identical either way; only construction cost changes).
    """
    with _trace.span("qrg_build", service=service.name) as span:
        if skeleton_cache is not None:
            skeleton = skeleton_cache.skeleton_for(
                service, binding, source_label=source_label
            )
        else:
            skeleton = build_skeleton(service, binding, source_label=source_label)
        qrg = price_skeleton(skeleton, snapshot, contention_index=contention_index)
        span.set(nodes=qrg.count_nodes(), edges=qrg.count_edges())
        return qrg
