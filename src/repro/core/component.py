"""Service components (paper §2.1-2.2).

A service component is a functional unit of a distributed service.  It
declares its enumerable input and output QoS levels and carries the
translation function that prices each supported (Q_in, Q_out) pair in
resources.  The *resource slots* a component consumes (e.g. ``hS`` or
``lPS``) are abstract here; a session binds them to concrete brokered
resources via a :class:`Binding`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core.errors import ModelError
from repro.core.qos import QoSLevel
from repro.core.resources import ResourceVector
from repro.core.translation import TabularTranslation, TranslationFunction


@dataclass(frozen=True)
class ServiceComponent:
    """One node of a distributed service's Dependency Graph.

    Parameters
    ----------
    name:
        Unique component name within the service (``VideoSender``, ...).
    input_levels / output_levels:
        The enumerable ``Q_in`` / ``Q_out`` levels (paper assumes discrete
        parameter values, hence enumerability).
    translation:
        The plug-in ``T_c``; pairs it returns None for do not exist.
    """

    name: str
    input_levels: Tuple[QoSLevel, ...]
    output_levels: Tuple[QoSLevel, ...]
    translation: TranslationFunction

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("component name must be non-empty")
        if not self.input_levels:
            raise ModelError(f"component {self.name!r} has no input QoS levels")
        if not self.output_levels:
            raise ModelError(f"component {self.name!r} has no output QoS levels")
        for side, levels in (("input", self.input_levels), ("output", self.output_levels)):
            labels = [level.label for level in levels]
            if len(set(labels)) != len(labels):
                raise ModelError(
                    f"component {self.name!r} has duplicate {side} level labels: {labels!r}"
                )

    # -- lookups ---------------------------------------------------------

    def input_level(self, label: str) -> QoSLevel:
        """Look up an input level by label; raises on unknown labels."""
        for level in self.input_levels:
            if level.label == label:
                return level
        raise ModelError(f"component {self.name!r} has no input level {label!r}")

    def output_level(self, label: str) -> QoSLevel:
        """Look up an output level by label; raises on unknown labels."""
        for level in self.output_levels:
            if level.label == label:
                return level
        raise ModelError(f"component {self.name!r} has no output level {label!r}")

    def supported_pairs(self) -> Iterable[Tuple[QoSLevel, QoSLevel, ResourceVector]]:
        """All (qin, qout, requirement) triples the translation supports."""
        for qin in self.input_levels:
            for qout in self.output_levels:
                requirement = self.translation(qin, qout)
                if requirement is not None:
                    yield qin, qout, requirement

    def slots(self) -> frozenset:
        """Resource slot names this component consumes.

        Derived from the translation table when available, otherwise from
        probing all supported pairs.
        """
        if isinstance(self.translation, TabularTranslation):
            return self.translation.slots
        names: set = set()
        for _qin, _qout, requirement in self.supported_pairs():
            names.update(requirement)
        return frozenset(names)

    def with_translation(self, translation: TranslationFunction) -> "ServiceComponent":
        """A copy of this component with a different translation plug-in."""
        return ServiceComponent(
            name=self.name,
            input_levels=self.input_levels,
            output_levels=self.output_levels,
            translation=translation,
        )


class Binding:
    """Maps each component's resource slots to concrete resource ids.

    A *resource id* names one brokered resource in the environment, e.g.
    ``"cpu:H2"`` or ``"net:H2->H1"``.  Bindings are per *session*: the
    same proxy component binds ``hP`` to a different host's CPU pool
    depending on which domain the requesting client lives in (paper §5.1).
    """

    def __init__(self, mapping: Mapping[Tuple[str, str], str]) -> None:
        self._mapping: Dict[Tuple[str, str], str] = {}
        for (component, slot), resource_id in mapping.items():
            if not resource_id:
                raise ModelError(f"empty resource id for {(component, slot)!r}")
            self._mapping[(component, slot)] = resource_id

    def resource_id(self, component: str, slot: str) -> str:
        """Concrete resource id bound to a (component, slot) pair."""
        try:
            return self._mapping[(component, slot)]
        except KeyError:
            raise ModelError(
                f"no binding for slot {slot!r} of component {component!r}"
            ) from None

    def bind_requirement(self, component: str, requirement: ResourceVector) -> ResourceVector:
        """Rewrite a slot-keyed requirement into a resource-id-keyed one.

        Two slots of one component bound to the same resource id have
        their amounts summed.
        """
        amounts: Dict[str, float] = {}
        for slot, amount in requirement.items():
            rid = self.resource_id(component, slot)
            amounts[rid] = amounts.get(rid, 0.0) + amount
        return ResourceVector(amounts)

    def resource_ids(self) -> frozenset:
        """The registered resource ids, sorted."""
        return frozenset(self._mapping.values())

    def items(self):
        """Iterate ((qin_label, qout_label), requirement) entries."""
        return self._mapping.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Binding({self._mapping!r})"
