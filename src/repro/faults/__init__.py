"""Fault injection and the fault-tolerant reservation protocol (PR 4).

Public surface:

* :class:`FaultConfig` / :class:`FaultPlan` -- seeded fault schedules;
* :class:`FaultInjector` -- the per-run decision point at the protocol
  boundaries;
* :class:`FaultTolerantCoordinator` (alias :class:`FaultyCoordinator`)
  and :class:`FaultTolerantDistributedCoordinator` -- the tolerant
  establishment paths, byte-identical to the plain coordinators under a
  zero plan;
* :func:`capacity_conservation` / :func:`assert_capacity_conserved` --
  the broker-vs-proxy bookkeeping invariant.
"""

from repro.faults.coordinator import (
    FaultTolerantCoordinator,
    FaultTolerantDistributedCoordinator,
    FaultyCoordinator,
    Lease,
)
from repro.faults.injector import MESSAGE_CHANNELS, FaultInjector
from repro.faults.invariants import (
    CapacityConservationError,
    ConservationReport,
    assert_capacity_conserved,
    capacity_conservation,
)
from repro.faults.plan import (
    FAULT_SEED_INDEX,
    FaultConfig,
    FaultPlan,
    FaultWindow,
    InjectedFault,
)

__all__ = [
    "FAULT_SEED_INDEX",
    "MESSAGE_CHANNELS",
    "CapacityConservationError",
    "ConservationReport",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "FaultTolerantCoordinator",
    "FaultTolerantDistributedCoordinator",
    "FaultWindow",
    "FaultyCoordinator",
    "InjectedFault",
    "Lease",
    "assert_capacity_conserved",
    "capacity_conservation",
]
