"""Deterministic fault schedules (the *what goes wrong, when* of PR 4).

The paper (§3-§4.2) assumes a fully reservation-enabled environment:
every QoSProxy and Resource Broker answers instantly and truthfully.
This module relaxes that assumption with a *seeded*, fully
reproducible fault model:

* :class:`FaultConfig` -- the knobs: per-message drop/delay rates,
  per-host crash and partition (Poisson) rates with outage durations,
  stale-report injection, and the recovery policy (retries, backoff,
  replans, lease TTL) of the fault-tolerant coordinator;
* :class:`FaultPlan` -- a concrete schedule: the crash/partition
  *windows* are materialised up front from the seed (one Poisson
  process per host per window kind), while per-message faults are
  decided online by the :class:`~repro.faults.injector.FaultInjector`
  from named seeded streams.

Determinism contract: a plan (and every decision the injector derives
from it) is a pure function of ``(config, seed, horizon, hosts)``.
Per-run seeds are derived with the existing
:func:`repro.sim.derive_run_seed` machinery (``SeedSequence`` spawn
keys), so parallel sweeps remain byte-identical to serial ones and the
fault streams never perturb the workload/planner streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ModelError
from repro.des.rng import RandomStreams

__all__ = [
    "FAULT_SEED_INDEX",
    "FaultConfig",
    "FaultPlan",
    "FaultWindow",
    "InjectedFault",
]

#: Spawn-key index reserved for deriving a run's fault seed from its
#: config seed via :func:`repro.sim.derive_run_seed` -- far outside the
#: small indexes batches use, so fault streams are independent of every
#: workload/planner stream yet reproducible from the one config seed.
FAULT_SEED_INDEX = 0xFA017


@dataclass(frozen=True)
class FaultConfig:
    """Fault rates and the recovery policy of the tolerant protocol.

    All rates default to zero: a default-constructed config is the
    *all-zero* plan, under which the fault-tolerant coordinator is
    required (and regression-tested) to behave byte-identically to the
    plain :class:`~repro.runtime.coordinator.ReservationCoordinator`.
    """

    #: Probability that any one protocol message (phase-1 availability
    #: exchange, phase-3 reserve, its ack, or a rollback release) is lost.
    drop_rate: float = 0.0
    #: Probability a delivered message is delayed, and the mean of the
    #: exponential delay added (only advances the clock on the DES path).
    delay_rate: float = 0.0
    delay_mean: float = 0.5
    #: Expected broker-host crashes per host per 60 TU, and how long a
    #: crashed host stays down before restarting.
    crash_rate: float = 0.0
    crash_duration: float = 20.0
    #: Expected network partitions per host per 60 TU, and their length.
    partition_rate: float = 0.0
    partition_duration: float = 8.0
    #: Probability a phase-1 availability report is served from a stale
    #: snapshot, and how old that snapshot is (TU).
    stale_rate: float = 0.0
    stale_age: float = 4.0
    # -- recovery policy -------------------------------------------------
    #: Bounded retries per phase per proxy before the attempt fails over.
    max_retries: int = 2
    #: How many times a failed establishment may re-plan (fresh
    #: observations, failed hosts excluded) before giving up.
    max_replans: int = 1
    #: Seeded exponential backoff: base * 2**attempt, capped, plus
    #: multiplicative jitter drawn from U[0, backoff_jitter].
    backoff_base: float = 0.25
    backoff_cap: float = 4.0
    backoff_jitter: float = 0.5
    #: Reserve/commit lease: an uncommitted (orphaned) segment is
    #: reclaimed by the reaper this many TU after it was reserved.
    lease_ttl: float = 30.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "stale_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must be in [0, 1], got {value!r}")
        for name in ("crash_rate", "partition_rate"):
            if getattr(self, name) < 0:
                raise ModelError(f"{name} must be >= 0, got {getattr(self, name)!r}")
        for name in (
            "delay_mean",
            "crash_duration",
            "partition_duration",
            "stale_age",
            "backoff_base",
            "backoff_cap",
            "lease_ttl",
        ):
            if getattr(self, name) <= 0:
                raise ModelError(f"{name} must be positive, got {getattr(self, name)!r}")
        if self.max_retries < 0 or self.max_replans < 0:
            raise ModelError("max_retries and max_replans must be >= 0")
        if self.backoff_jitter < 0:
            raise ModelError(f"backoff_jitter must be >= 0, got {self.backoff_jitter!r}")

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever fire (the byte-identity mode)."""
        return (
            self.drop_rate == 0.0
            and self.delay_rate == 0.0
            and self.crash_rate == 0.0
            and self.partition_rate == 0.0
            and self.stale_rate == 0.0
        )


@dataclass(frozen=True)
class FaultWindow:
    """One contiguous outage: ``host`` is unreachable in [start, end)."""

    kind: str  # "broker_crash" | "proxy_partition"
    host: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """First instant at which the host answers again (restart)."""
        return self.start + self.duration

    def covers(self, instant: float) -> bool:
        """True while the outage is in effect at ``instant``."""
        return self.start <= instant < self.end


@dataclass(frozen=True)
class InjectedFault:
    """The record one injected fault leaves behind (and in the log)."""

    kind: str
    host: Optional[str]
    session: Optional[str]
    time: float
    detail: Tuple[Tuple[str, object], ...] = ()

    def detail_dict(self) -> Dict[str, object]:
        """The detail pairs as a plain dict (event-attribute form)."""
        return dict(self.detail)


@dataclass(frozen=True)
class FaultPlan:
    """A fully materialised, seeded fault schedule for one run."""

    config: FaultConfig
    seed: int
    horizon: float
    hosts: Tuple[str, ...] = ()
    windows: Tuple[FaultWindow, ...] = ()
    _by_host: Dict[str, Tuple[FaultWindow, ...]] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        by_host: Dict[str, List[FaultWindow]] = {}
        for window in self.windows:
            by_host.setdefault(window.host, []).append(window)
        object.__setattr__(
            self,
            "_by_host",
            {host: tuple(sorted(ws, key=lambda w: w.start)) for host, ws in by_host.items()},
        )

    @classmethod
    def zero(cls) -> "FaultPlan":
        """The empty plan: nothing ever fails."""
        return cls(config=FaultConfig(), seed=0, horizon=0.0)

    @classmethod
    def generate(
        cls,
        config: FaultConfig,
        *,
        seed: int,
        horizon: float,
        hosts: Sequence[str],
    ) -> "FaultPlan":
        """Materialise the crash/partition windows from the seed.

        One Poisson arrival process per (host, window kind), each on its
        own named stream, so adding hosts or changing one rate never
        perturbs the other hosts' schedules.
        """
        if horizon < 0:
            raise ModelError(f"horizon must be >= 0, got {horizon!r}")
        streams = RandomStreams(seed)
        windows: List[FaultWindow] = []
        specs = (
            ("broker_crash", config.crash_rate, config.crash_duration),
            ("proxy_partition", config.partition_rate, config.partition_duration),
        )
        for host in sorted(hosts):
            for kind, rate, duration in specs:
                if rate <= 0:
                    continue
                mean_gap = 60.0 / rate
                at = streams.exponential(f"{kind}:{host}", mean_gap)
                while at < horizon:
                    windows.append(
                        FaultWindow(kind=kind, host=host, start=at, duration=duration)
                    )
                    # The next outage can only start once this one ended.
                    at += duration + streams.exponential(f"{kind}:{host}", mean_gap)
        return cls(
            config=config,
            seed=seed,
            horizon=float(horizon),
            hosts=tuple(sorted(hosts)),
            windows=tuple(sorted(windows, key=lambda w: (w.start, w.host, w.kind))),
        )

    @property
    def is_zero(self) -> bool:
        """True when neither windows nor per-message faults can fire."""
        return self.config.is_zero and not self.windows

    def windows_for(self, host: str) -> Tuple[FaultWindow, ...]:
        """The host's outage windows, ordered by start time."""
        return self._by_host.get(host, ())

    def active_window(self, host: str, instant: float) -> Optional[FaultWindow]:
        """The outage covering ``instant`` on ``host``, if any."""
        for window in self._by_host.get(host, ()):
            if window.covers(instant):
                return window
            if window.start > instant:
                break
        return None
