"""Seeded fault injection at the protocol boundaries.

The :class:`FaultInjector` is the single decision point the
fault-tolerant coordinator consults at every phase-1/phase-3 message
boundary.  It combines

* the :class:`~repro.faults.plan.FaultPlan`'s pre-materialised
  crash/partition windows (checked against the DES clock), and
* online per-message draws (drop, delay, stale report) from named
  streams of a :class:`~repro.des.rng.RandomStreams` family seeded with
  the plan's seed -- never touching the workload/planner streams.

Every fault that actually *fires* is recorded on :attr:`injected` and
emitted as a ``fault.injected`` event (plus a ``faults.injected``
counter), so an exported trace document contains the complete fault
history of a run -- the acceptance invariant of PR 4.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.faults.plan import FaultConfig, FaultPlan, FaultWindow, InjectedFault
from repro.des.rng import RandomStreams
from repro.obs import events as _events
from repro.obs import metrics as _metrics

__all__ = ["FaultInjector", "MESSAGE_CHANNELS"]

#: The protocol messages a drop/delay draw can hit, in the order the
#: coordinator sends them.  Kept explicit so traces stay interpretable.
MESSAGE_CHANNELS = ("availability", "reserve", "ack", "release")

Clock = Callable[[], float]


class FaultInjector:
    """Decides, deterministically, which protocol interactions fail."""

    def __init__(
        self,
        plan: FaultPlan,
        *,
        clock: Optional[Clock] = None,
    ) -> None:
        self.plan = plan
        self.config: FaultConfig = plan.config
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        self._streams = RandomStreams(plan.seed)
        #: Every fault that fired, in causal order.
        self.injected: List[InjectedFault] = []

    @classmethod
    def disabled(cls) -> "FaultInjector":
        """An injector that never fires (the zero-fault identity mode)."""
        return cls(FaultPlan.zero())

    # -- bookkeeping -------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever fire through this injector."""
        return self.plan.is_zero

    @property
    def now(self) -> float:
        """The injector's current clock reading."""
        return self._clock()

    def _record(
        self,
        kind: str,
        *,
        host: Optional[str] = None,
        session: Optional[str] = None,
        **detail: object,
    ) -> InjectedFault:
        """Record one fired fault and surface it to the obs layer."""
        fault = InjectedFault(
            kind=kind,
            host=host,
            session=session,
            time=self.now,
            detail=tuple(sorted(detail.items())),
        )
        self.injected.append(fault)
        _events.emit(
            "fault.injected",
            session=session,
            time=fault.time,
            fault=kind,
            host=host,
            **detail,
        )
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("faults.injected", kind=kind).inc()
        return fault

    def injected_counts(self) -> dict:
        """kind -> number of fired faults (sorted by kind)."""
        counts: dict = {}
        for fault in self.injected:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return dict(sorted(counts.items()))

    # -- decisions ---------------------------------------------------------

    def outage(self, host: str) -> Optional[FaultWindow]:
        """The crash/partition window covering ``host`` right now."""
        return self.plan.active_window(host, self.now)

    def message_fault(
        self, channel: str, host: str, session: Optional[str]
    ) -> Optional[str]:
        """Whether the message on ``channel`` to/from ``host`` is lost.

        Returns the fault kind (``broker_crash`` / ``proxy_partition`` /
        ``message_drop``) when the message never arrives, else None.
        Outage windows are consulted first (no randomness), then the
        per-message drop draw.
        """
        if channel not in MESSAGE_CHANNELS:
            raise ValueError(f"unknown message channel {channel!r}")
        window = self.outage(host)
        if window is not None:
            self._record(window.kind, host=host, session=session, channel=channel,
                         until=window.end)
            return window.kind
        if self.config.drop_rate > 0 and (
            float(self._streams.stream("drop").random()) < self.config.drop_rate
        ):
            self._record("message_drop", host=host, session=session, channel=channel)
            return "message_drop"
        return None

    def message_delay(self, channel: str, host: str, session: Optional[str]) -> float:
        """Extra delivery delay for a message that *did* arrive (TU)."""
        if self.config.delay_rate > 0 and (
            float(self._streams.stream("delay").random()) < self.config.delay_rate
        ):
            amount = self._streams.exponential("delay-amount", self.config.delay_mean)
            self._record(
                "message_delay", host=host, session=session, channel=channel,
                delay=amount,
            )
            return amount
        return 0.0

    def stale_age_for(self, host: str, session: Optional[str]) -> Optional[float]:
        """Age of a stale availability report, when that fault fires."""
        if self.config.stale_rate > 0 and (
            float(self._streams.stream("stale").random()) < self.config.stale_rate
        ):
            age = self.config.stale_age
            self._record("stale_report", host=host, session=session, age=age)
            return age
        return None

    def backoff(self, attempt: int) -> float:
        """Seeded exponential backoff with jitter for retry ``attempt``."""
        base = min(
            self.config.backoff_base * (2.0 ** attempt), self.config.backoff_cap
        )
        if self.config.backoff_jitter > 0:
            base *= 1.0 + self._streams.uniform(
                "backoff", 0.0, self.config.backoff_jitter
            )
        return base
