"""Capacity-conservation invariant of the fault-tolerant protocol.

The brokers and the QoSProxies keep *independent* books: a broker knows
how much of its capacity is reserved and by which reservation handles;
a proxy knows which reservations it holds per live session (plus, under
faults, the coordinator knows which of those are uncommitted leases
awaiting the reaper).  The conservation invariant says the two views
must always agree:

    for every stateful resource,
        broker.reserved == sum of amounts of the reservations the
                           proxies hold for it (live sessions + pending
                           leases)

A violation in either direction is a leak: capacity held by a broker
that no proxy will ever release (an orphan the reaper cannot see), or a
proxy believing it holds capacity the broker already freed (double
release / double teardown).  The checker is pure inspection -- safe to
run at any instant of a simulation, including mid-fault.

Two-level network resources: a :class:`~repro.brokers.path.PathBroker`
keeps no books of its own -- its reservations live entirely in the
per-link brokers (which the registry also lists, and which several
paths share).  The checker therefore skips path brokers on the broker
side and *expands* each proxy-held
:class:`~repro.brokers.path.PathReservation` into its constituent link
reservations, so both sides are compared in the same (stateful-broker)
coordinate system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from repro.brokers.path import PathBroker, PathReservation
from repro.brokers.registry import BrokerRegistry
from repro.core.errors import ReproError

__all__ = [
    "CapacityConservationError",
    "ConservationReport",
    "ReconcileReport",
    "capacity_conservation",
    "assert_capacity_conserved",
    "reconcile_shard_events",
]

#: Absolute slack for float accumulation over many reserve/release pairs.
_TOLERANCE = 1e-6


class CapacityConservationError(ReproError):
    """Raised by :func:`assert_capacity_conserved` on a broken invariant."""


@dataclass
class ConservationReport:
    """The two books side by side, plus every per-resource mismatch."""

    broker_reserved: Dict[str, float] = field(default_factory=dict)
    proxy_held: Dict[str, float] = field(default_factory=dict)
    broker_outstanding: int = 0
    proxy_outstanding: int = 0
    mismatches: List[Tuple[str, float, float]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every broker's book matches the proxies' book."""
        return not self.mismatches and self.broker_outstanding == self.proxy_outstanding

    def describe(self) -> str:
        """Human-readable one-paragraph verdict (test failure messages)."""
        if self.ok:
            return (
                f"capacity conserved: {self.broker_outstanding} reservations, "
                f"{sum(self.broker_reserved.values()):g} units held"
            )
        lines = [
            f"capacity NOT conserved: brokers hold {self.broker_outstanding} "
            f"reservations, proxies track {self.proxy_outstanding}"
        ]
        for resource, broker_amount, proxy_amount in self.mismatches:
            lines.append(
                f"  {resource}: broker reserved {broker_amount:g} vs "
                f"proxy-held {proxy_amount:g}"
            )
        return "\n".join(lines)


def _expand(reservation: Union[PathReservation, object]):
    """A reservation as its stateful-broker parts (links for paths)."""
    if isinstance(reservation, PathReservation):
        return reservation.link_reservations
    return (reservation,)


def capacity_conservation(
    registry: BrokerRegistry, proxies: Union[Mapping[str, object], Iterable[object]]
) -> ConservationReport:
    """Compare broker-side and proxy-side reservation books.

    ``proxies`` accepts either the coordinator's host->proxy mapping or
    any iterable of :class:`~repro.runtime.proxy.QoSProxy` instances.
    Pending (orphaned) leases need no special casing: their reservations
    still sit in the owning proxy's per-session table until the reaper
    or a teardown releases them, so they are counted on both sides.
    """
    report = ConservationReport()
    for broker in registry.brokers():
        if isinstance(broker, PathBroker):
            continue  # stateless composite; its links are listed separately
        report.broker_reserved[broker.resource_id] = broker.reserved
        report.broker_outstanding += broker.outstanding()

    proxy_iter = proxies.values() if isinstance(proxies, Mapping) else proxies
    for proxy in proxy_iter:
        for session_id in list(getattr(proxy, "_held", {})):
            for held in proxy.held_for(session_id):
                for reservation in _expand(held):
                    report.proxy_held[reservation.resource_id] = (
                        report.proxy_held.get(reservation.resource_id, 0.0)
                        + reservation.amount
                    )
                    report.proxy_outstanding += 1

    for resource_id in sorted(set(report.broker_reserved) | set(report.proxy_held)):
        broker_amount = report.broker_reserved.get(resource_id, 0.0)
        proxy_amount = report.proxy_held.get(resource_id, 0.0)
        if abs(broker_amount - proxy_amount) > _TOLERANCE:
            report.mismatches.append((resource_id, broker_amount, proxy_amount))
    return report


def assert_capacity_conserved(
    registry: BrokerRegistry, proxies: Union[Mapping[str, object], Iterable[object]]
) -> ConservationReport:
    """Run the checker and raise on any leak; returns the report."""
    report = capacity_conservation(registry, proxies)
    if not report.ok:
        raise CapacityConservationError(report.describe())
    return report


# -- offline cross-shard reconciliation ---------------------------------------
#
# The live checker above needs the broker and proxy objects in hand; a
# cluster spreads them over N processes.  What every shard *does* export
# is its causal event log (``repro-serve --flight-dir`` + SIGQUIT, or a
# trace document), and the lifecycle events carry enough arithmetic to
# re-derive each shard's books offline:
#
#     broker.grant     requested / available / capacity
#     broker.release   amount
#     lease.reserved / lease.committed / lease.aborted / lease.expired
#
# :func:`reconcile_shard_events` merges the per-shard logs and verifies
# the *global* conservation story of the two-phase protocol: no shard
# released more than it granted, no resource was granted by two shards
# (ownership is exclusive by construction of the shard map), no grant
# exceeded the availability the broker reported at that instant, and
# every 2PC round that ended in an abort or an expired lease left zero
# net capacity behind on that shard.  Positive net balances are *not*
# violations -- they are the sessions still live when the log was
# dumped -- but they are reported so a leak that survives teardown has
# somewhere to show up.


@dataclass
class ReconcileReport:
    """The merged cross-shard ledger and every global-invariant breach."""

    #: Shard labels, in the order given.
    shards: List[str] = field(default_factory=list)
    #: label -> number of broker.grant / broker.release events seen.
    grants: Dict[str, int] = field(default_factory=dict)
    releases: Dict[str, int] = field(default_factory=dict)
    #: label -> resource -> net granted-minus-released units still out.
    outstanding: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Shards whose logs hit their capacity bound (checks are partial).
    truncated: List[str] = field(default_factory=list)
    #: Sessions whose events span more than one shard (trace-id joined).
    cross_shard_sessions: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no global invariant is broken."""
        return not self.violations

    def describe(self) -> str:
        """Human-readable verdict (CI gate output, test messages)."""
        total_grants = sum(self.grants.values())
        total_releases = sum(self.releases.values())
        still_out = sum(
            amount for per in self.outstanding.values() for amount in per.values()
        )
        lines = [
            f"reconciled {len(self.shards)} shard log(s): "
            f"{total_grants} grants, {total_releases} releases, "
            f"{still_out:g} units outstanding, "
            f"{self.cross_shard_sessions} cross-shard session(s)"
        ]
        for label in self.truncated:
            lines.append(
                f"  note: {label} log is truncated; its balances are partial"
            )
        if self.ok:
            lines.append("  conservation holds across shards")
        else:
            lines.append(f"  {len(self.violations)} violation(s):")
            for violation in self.violations:
                lines.append(f"    {violation}")
        return "\n".join(lines)


def _event_field(event: object, name: str, default: object = None) -> object:
    """Read a field off a ReservationEvent or its to_dict() form."""
    if isinstance(event, Mapping):
        return event.get(name, default)
    return getattr(event, name, default)


def reconcile_shard_events(
    shard_events: Mapping[str, Iterable[object]]
) -> ReconcileReport:
    """Verify global conservation over merged per-shard event logs.

    ``shard_events`` maps a shard label to that shard's causally ordered
    events -- :class:`~repro.obs.events.ReservationEvent` instances or
    their ``to_dict()`` form (flight dumps, trace documents); the two
    may be mixed freely.  Pure inspection: nothing is mutated.
    """
    report = ReconcileReport(shards=list(shard_events))
    #: resource -> set of shard labels that granted on it.
    granting_shards: Dict[str, set] = {}
    #: (label, session) -> net units; (label, session) -> lease outcomes.
    session_net: Dict[Tuple[str, str], float] = {}
    session_leases: Dict[Tuple[str, str], set] = {}
    #: session -> set of shard labels it touched (cross-shard count).
    session_shards: Dict[str, set] = {}

    for label, events in shard_events.items():
        report.grants[label] = 0
        report.releases[label] = 0
        balances: Dict[str, float] = {}
        truncated = False
        for event in events:
            kind = _event_field(event, "kind")
            session = _event_field(event, "session")
            resource = _event_field(event, "resource")
            attributes = _event_field(event, "attributes", {}) or {}
            if kind == "log.truncated":
                truncated = True
                continue
            if session:
                session_shards.setdefault(str(session), set()).add(label)
            if kind == "broker.grant":
                requested = float(attributes.get("requested", 0.0))
                available = attributes.get("available")
                report.grants[label] += 1
                balances[resource] = balances.get(resource, 0.0) + requested
                granting_shards.setdefault(resource, set()).add(label)
                if session:
                    key = (label, str(session))
                    session_net[key] = session_net.get(key, 0.0) + requested
                if available is not None and requested > float(available) + _TOLERANCE:
                    report.violations.append(
                        f"{label}: {resource} granted {requested:g} with only "
                        f"{float(available):g} available (over-grant)"
                    )
            elif kind == "broker.release":
                amount = float(attributes.get("amount", 0.0))
                report.releases[label] += 1
                balances[resource] = balances.get(resource, 0.0) - amount
                if session:
                    key = (label, str(session))
                    session_net[key] = session_net.get(key, 0.0) - amount
            elif kind in ("lease.aborted", "lease.expired"):
                if session:
                    session_leases.setdefault((label, str(session)), set()).add(
                        "rolled_back"
                    )
            elif kind == "lease.committed":
                if session:
                    session_leases.setdefault((label, str(session)), set()).add(
                        "committed"
                    )
        if truncated:
            report.truncated.append(label)
        per_resource: Dict[str, float] = {}
        for resource in sorted(balances):
            net = balances[resource]
            if net < -_TOLERANCE and not truncated:
                report.violations.append(
                    f"{label}: {resource} released {-net:g} more than was "
                    "granted (double release)"
                )
            elif net > _TOLERANCE:
                per_resource[resource] = net
        report.outstanding[label] = per_resource

    for resource in sorted(granting_shards):
        owners = granting_shards[resource]
        if len(owners) > 1:
            report.violations.append(
                f"{resource}: granted by {len(owners)} shards "
                f"({', '.join(sorted(owners))}); shard ownership is exclusive"
            )

    # A 2PC round that ended in an abort or a reaped lease (and was
    # never committed on that shard) must have returned every unit it
    # held there -- a positive remainder is a leaked lease, a negative
    # one a double rollback.
    for (label, session), outcomes in sorted(session_leases.items()):
        if "committed" in outcomes or label in report.truncated:
            continue
        net = session_net.get((label, session), 0.0)
        if abs(net) > _TOLERANCE:
            report.violations.append(
                f"{label}: session {session} was rolled back but nets "
                f"{net:g} units (lease leak)"
            )

    report.cross_shard_sessions = sum(
        1 for labels in session_shards.values() if len(labels) > 1
    )
    return report
