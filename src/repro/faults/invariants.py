"""Capacity-conservation invariant of the fault-tolerant protocol.

The brokers and the QoSProxies keep *independent* books: a broker knows
how much of its capacity is reserved and by which reservation handles;
a proxy knows which reservations it holds per live session (plus, under
faults, the coordinator knows which of those are uncommitted leases
awaiting the reaper).  The conservation invariant says the two views
must always agree:

    for every stateful resource,
        broker.reserved == sum of amounts of the reservations the
                           proxies hold for it (live sessions + pending
                           leases)

A violation in either direction is a leak: capacity held by a broker
that no proxy will ever release (an orphan the reaper cannot see), or a
proxy believing it holds capacity the broker already freed (double
release / double teardown).  The checker is pure inspection -- safe to
run at any instant of a simulation, including mid-fault.

Two-level network resources: a :class:`~repro.brokers.path.PathBroker`
keeps no books of its own -- its reservations live entirely in the
per-link brokers (which the registry also lists, and which several
paths share).  The checker therefore skips path brokers on the broker
side and *expands* each proxy-held
:class:`~repro.brokers.path.PathReservation` into its constituent link
reservations, so both sides are compared in the same (stateful-broker)
coordinate system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from repro.brokers.path import PathBroker, PathReservation
from repro.brokers.registry import BrokerRegistry
from repro.core.errors import ReproError

__all__ = [
    "CapacityConservationError",
    "ConservationReport",
    "capacity_conservation",
    "assert_capacity_conserved",
]

#: Absolute slack for float accumulation over many reserve/release pairs.
_TOLERANCE = 1e-6


class CapacityConservationError(ReproError):
    """Raised by :func:`assert_capacity_conserved` on a broken invariant."""


@dataclass
class ConservationReport:
    """The two books side by side, plus every per-resource mismatch."""

    broker_reserved: Dict[str, float] = field(default_factory=dict)
    proxy_held: Dict[str, float] = field(default_factory=dict)
    broker_outstanding: int = 0
    proxy_outstanding: int = 0
    mismatches: List[Tuple[str, float, float]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every broker's book matches the proxies' book."""
        return not self.mismatches and self.broker_outstanding == self.proxy_outstanding

    def describe(self) -> str:
        """Human-readable one-paragraph verdict (test failure messages)."""
        if self.ok:
            return (
                f"capacity conserved: {self.broker_outstanding} reservations, "
                f"{sum(self.broker_reserved.values()):g} units held"
            )
        lines = [
            f"capacity NOT conserved: brokers hold {self.broker_outstanding} "
            f"reservations, proxies track {self.proxy_outstanding}"
        ]
        for resource, broker_amount, proxy_amount in self.mismatches:
            lines.append(
                f"  {resource}: broker reserved {broker_amount:g} vs "
                f"proxy-held {proxy_amount:g}"
            )
        return "\n".join(lines)


def _expand(reservation: Union[PathReservation, object]):
    """A reservation as its stateful-broker parts (links for paths)."""
    if isinstance(reservation, PathReservation):
        return reservation.link_reservations
    return (reservation,)


def capacity_conservation(
    registry: BrokerRegistry, proxies: Union[Mapping[str, object], Iterable[object]]
) -> ConservationReport:
    """Compare broker-side and proxy-side reservation books.

    ``proxies`` accepts either the coordinator's host->proxy mapping or
    any iterable of :class:`~repro.runtime.proxy.QoSProxy` instances.
    Pending (orphaned) leases need no special casing: their reservations
    still sit in the owning proxy's per-session table until the reaper
    or a teardown releases them, so they are counted on both sides.
    """
    report = ConservationReport()
    for broker in registry.brokers():
        if isinstance(broker, PathBroker):
            continue  # stateless composite; its links are listed separately
        report.broker_reserved[broker.resource_id] = broker.reserved
        report.broker_outstanding += broker.outstanding()

    proxy_iter = proxies.values() if isinstance(proxies, Mapping) else proxies
    for proxy in proxy_iter:
        for session_id in list(getattr(proxy, "_held", {})):
            for held in proxy.held_for(session_id):
                for reservation in _expand(held):
                    report.proxy_held[reservation.resource_id] = (
                        report.proxy_held.get(reservation.resource_id, 0.0)
                        + reservation.amount
                    )
                    report.proxy_outstanding += 1

    for resource_id in sorted(set(report.broker_reserved) | set(report.proxy_held)):
        broker_amount = report.broker_reserved.get(resource_id, 0.0)
        proxy_amount = report.proxy_held.get(resource_id, 0.0)
        if abs(broker_amount - proxy_amount) > _TOLERANCE:
            report.mismatches.append((resource_id, broker_amount, proxy_amount))
    return report


def assert_capacity_conserved(
    registry: BrokerRegistry, proxies: Union[Mapping[str, object], Iterable[object]]
) -> ConservationReport:
    """Run the checker and raise on any leak; returns the report."""
    report = capacity_conservation(registry, proxies)
    if not report.ok:
        raise CapacityConservationError(report.describe())
    return report
