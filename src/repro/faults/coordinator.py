"""Fault-tolerant session establishment (the recovery half of PR 4).

:class:`FaultTolerantCoordinator` layers the recovery policy of
:class:`~repro.faults.plan.FaultConfig` on the three-phase protocol of
:class:`~repro.runtime.coordinator.ReservationCoordinator`:

* every phase-1 availability exchange and phase-3 segment dispatch is
  routed past the :class:`~repro.faults.injector.FaultInjector`; a lost
  message is a *timeout* (``segment.timeout``), answered with bounded
  retries under seeded exponential backoff (``segment.retry``);
* phase 3 becomes two-phase reserve/commit: each applied segment is a
  :class:`Lease` until the whole session commits.  A lease whose
  rollback-release (or whose ack) is lost is *orphaned* -- registered
  with the coordinator's reaper and reclaimed when its TTL expires
  (``lease.expired``), so no capacity leaks past the lease TTL;
* a failed establishment degrades gracefully (§4.3): re-plan on fresh
  observations (accepting a lower sink), excluding a host whose proxy
  stopped answering (``session.replanned``), up to ``max_replans``.

Byte-identity contract: with a zero :class:`FaultPlan` every entry point
delegates verbatim to the parent coordinator -- same code path, same
spans, same events, same results -- which the regression tests assert.

The establishment core is a *generator* yielding backoff delays: the
synchronous driver (:meth:`FaultTolerantCoordinator._establish`)
discards them (retries happen at the same instant), while the DES
driver (:meth:`FaultTolerantCoordinator.establish_process`) turns each
into a real ``env.timeout`` so crash/partition windows can pass while a
session backs off.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.brokers.registry import AnyReservation, BrokerRegistry
from repro.core.component import Binding
from repro.core.errors import AdmissionError, ModelError
from repro.core.resources import AvailabilitySnapshot, ResourceObservation
from repro.faults.injector import FaultInjector
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.runtime.coordinator import (
    EstablishmentResult,
    ObservationSchedule,
    ReservationCoordinator,
)
from repro.runtime.distributed import ComponentHost, DistributedCoordinator, FragmentRequest
from repro.runtime.messages import AvailabilityRequest, PlanSegment
from repro.runtime.model_store import ModelStore
from repro.runtime.proxy import QoSProxy

__all__ = ["Lease", "FaultTolerantCoordinator", "FaultyCoordinator",
           "FaultTolerantDistributedCoordinator"]


@dataclass(frozen=True)
class Lease(object):
    """One segment's reservations between reserve and commit.

    Holds the *exact* reservation handles the segment created (not "all
    reservations of the session"), so reaping an orphaned lease can
    never release a later, committed reservation of the same session.
    """

    lease_id: str
    session_id: str
    host: str
    reservations: Tuple[AnyReservation, ...]
    reserved_at: float
    ttl: float

    @property
    def expires_at(self) -> float:
        """Instant after which the host-side reaper reclaims the lease."""
        return self.reserved_at + self.ttl


class FaultTolerantCoordinator(ReservationCoordinator):
    """The three-phase protocol with timeouts, retries, leases, replans."""

    def __init__(
        self,
        registry: BrokerRegistry,
        model_store: ModelStore,
        proxies: Mapping[str, QoSProxy],
        *,
        injector: Optional[FaultInjector] = None,
        env=None,
    ) -> None:
        super().__init__(registry, model_store, proxies)
        self.injector = injector if injector is not None else FaultInjector.disabled()
        self._env = env
        #: Orphaned leases awaiting the reaper, keyed by lease id.
        self._leases: Dict[str, Lease] = {}
        self._lease_seq = itertools.count(1)
        #: Total orphaned leases reclaimed (watchdogs + explicit reaps).
        self.leases_reaped = 0

    # -- clock / bookkeeping ----------------------------------------------

    @property
    def now(self) -> float:
        """The coordinator's clock (DES time when attached to an env)."""
        return self._env.now if self._env is not None else self.injector.now

    def pending_leases(self) -> Tuple[Lease, ...]:
        """Orphaned leases not yet reclaimed, in lease-id order."""
        return tuple(self._leases[key] for key in sorted(self._leases))

    # -- entry points ------------------------------------------------------

    def _establish(self, *args, **kwargs) -> EstablishmentResult:
        """Synchronous driver: backoff delays collapse to the same instant."""
        if self.injector.is_zero:
            return super()._establish(*args, **kwargs)
        if kwargs.pop("snapshot", None) is not None:
            raise ModelError(
                "snapshot= establishment is unsupported under fault injection: "
                "phase 1 must run per session so message faults apply"
            )
        gen = self._ft_establish(*args, **kwargs)
        while True:
            try:
                next(gen)
            except StopIteration as stop:
                return stop.value

    def establish_batch(self, requests, planner, **kwargs):
        """Batched establishment under the fault boundary.

        With a zero injector this is the parent's amortised batch path
        verbatim.  With faults enabled every arrival runs the tolerant
        protocol individually -- faults are injected per message, so a
        shared snapshot or memoised plan would mask exactly the
        timeouts, stale reports, and retries the fault plan asks for.
        """
        if self.injector.is_zero:
            return super().establish_batch(requests, planner, **kwargs)
        kwargs.pop("snapshot", None)
        return [
            self.establish(
                request.session_id,
                request.service_name,
                request.binding,
                planner,
                component_hosts=request.component_hosts,
                source_label=request.source_label,
                demand_scale=request.demand_scale,
                **kwargs,
            )
            for request in list(requests)
        ]

    def establish_process(self, env, latency: float, /, *args, **kwargs):
        """DES driver: backoff delays become real simulated waiting."""
        if self.injector.is_zero:
            result = yield from super().establish_process(env, latency, *args, **kwargs)
            return result
        if latency < 0:
            raise ValueError(f"negative latency: {latency!r}")
        now = env.now
        schedule = kwargs.pop("observed_at", None)

        def frozen_schedule(resource_id: str) -> Optional[float]:
            """Observation schedule pinned to the request instant."""
            base = schedule(resource_id) if schedule is not None else None
            return now if base is None else base

        if latency:
            yield env.timeout(latency)
        session_id, service_name = args[0], args[1]
        registry = _metrics.active_registry()
        started = _time.perf_counter() if registry is not None else 0.0
        with _trace.span("establish", session=session_id, service=service_name) as span:
            gen = self._ft_establish(*args, observed_at=frozen_schedule, **kwargs)
            while True:
                try:
                    delay = next(gen)
                except StopIteration as stop:
                    result = stop.value
                    break
                if delay:
                    yield env.timeout(delay)
            span.set(outcome="established" if result.success else result.reason)
            if registry is not None:
                outcome = "established" if result.success else result.reason
                registry.counter("coordinator.establish", outcome=outcome).inc()
                if result.failed_resource is not None:
                    registry.counter(
                        "coordinator.admission_failures", resource=result.failed_resource
                    ).inc()
                registry.histogram("coordinator.establish_seconds").observe(
                    _time.perf_counter() - started
                )
        return result

    # -- the fault-tolerant protocol core ----------------------------------

    def _ft_establish(
        self,
        session_id: str,
        service_name: str,
        binding: Binding,
        planner,
        *,
        component_hosts: Optional[Mapping[str, str]] = None,
        source_label: Optional[str] = None,
        demand_scale: float = 1.0,
        observed_at: Optional[ObservationSchedule] = None,
        contention_index=None,
    ):
        """Generator running the tolerant protocol; yields backoff delays."""
        config = self.injector.config
        service = self._service_at_scale(service_name, demand_scale)
        resource_ids = sorted(binding.resource_ids())
        excluded: Set[str] = set()
        replans = 0
        while True:
            # Phase 1: availability, with per-proxy timeouts and retries.
            # An unreachable (or replan-excluded) host is represented by
            # zero availability for its resources: the planner then
            # routes around it exactly as §4.3 degrades -- and rejects
            # when the binding leaves no alternative.
            observations: Dict[str, ResourceObservation] = {}
            with _trace.span("phase1_availability", resources=len(resource_ids)):
                request = AvailabilityRequest(
                    session_id=session_id, resource_ids=tuple(resource_ids)
                )
                for proxy in self._participating_proxies(resource_ids):
                    owned = [rid for rid in resource_ids if proxy.owns(rid)]
                    if proxy.host in excluded:
                        observations.update(self._zero_observations(owned))
                        continue
                    delivered = False
                    for attempt in range(config.max_retries + 1):
                        fault = self.injector.message_fault(
                            "availability", proxy.host, session_id
                        )
                        if fault is None:
                            schedule = observed_at
                            age = self.injector.stale_age_for(proxy.host, session_id)
                            if age is not None:
                                schedule = self._stale_schedule(observed_at, age)
                            report = proxy.report_availability(
                                request, observed_at=schedule
                            )
                            delay = self.injector.message_delay(
                                "availability", proxy.host, session_id
                            )
                            if delay:
                                yield delay
                            observations.update(report.observations)
                            delivered = True
                            break
                        self._note_timeout(
                            session_id, proxy.host, "availability", fault, attempt
                        )
                        if attempt < config.max_retries:
                            self._note_retry(
                                session_id, proxy.host, "availability", attempt + 1
                            )
                            yield self.injector.backoff(attempt)
                    if not delivered:
                        observations.update(self._zero_observations(owned))
                snapshot = AvailabilitySnapshot(observations)
            observed_instant = max(
                (obs.observed_at for obs in observations.values()), default=None
            )

            # Phase 2: identical to the plain coordinator (shared helper).
            plan, failure = self._phase2_plan(
                session_id,
                service,
                service_name,
                binding,
                planner,
                snapshot,
                observed_instant,
                source_label=source_label,
                demand_scale=demand_scale,
                contention_index=contention_index,
            )
            if failure is not None:
                return failure

            # Phase 3: two-phase reserve/commit per segment.
            segments = self._segments(session_id, plan)
            committed: List[Lease] = []
            failed_resource: Optional[str] = None
            failed_host: Optional[str] = None
            with _trace.span("phase3_dispatch", segments=len(segments)) as dispatch_span:
                for proxy, segment in segments:
                    outcome, detail = yield from self._dispatch_segment(
                        session_id, proxy, segment
                    )
                    if outcome == "committed":
                        committed.append(detail)
                        continue
                    if outcome == "admission_failed":
                        failed_resource = detail
                    else:
                        failed_host = detail
                    break
                if failed_resource is None and failed_host is None:
                    dispatch_span.set(committed=len(committed))
                    self._start_components(session_id, component_hosts)
                    self._emit_admitted(session_id, service_name, plan, observed_instant)
                    return EstablishmentResult(session_id, True, plan)
                for lease in committed:
                    self._release_or_orphan(lease)
                dispatch_span.set(
                    rolled_back=len(committed),
                    failed_resource=failed_resource,
                    failed_host=failed_host,
                )

            # Graceful degradation: re-plan (fresh observations = lower
            # sink per §4.3), excluding a host that stopped answering.
            reason = "admission_failed" if failed_resource is not None else "host_unreachable"
            if failed_host is not None:
                excluded.add(failed_host)
                # The unreachable host's skeletons are stale (replans and
                # later sessions see it as zero availability, and a
                # recovered host may rebind); every other service keeps
                # its warm cache entry -- see the per-host regression
                # test in tests/test_faults.py.
                self.invalidate_qrg_cache_for_host(failed_host)
            if replans < config.max_replans:
                replans += 1
                self._note_replan(session_id, reason, replans, excluded)
                continue
            if reason == "admission_failed":
                self._emit_admission_rejected(
                    session_id, service_name, plan, observations, observed_instant,
                    failed_resource,
                )
                return EstablishmentResult(
                    session_id,
                    False,
                    plan,
                    reason="admission_failed",
                    failed_resource=failed_resource,
                )
            log = _events.active_event_log()
            if log is not None:
                log.emit(
                    "session.rejected",
                    session=session_id,
                    time=observed_instant,
                    service=service_name,
                    reason="host_unreachable",
                    host=failed_host,
                    available=snapshot.availability(),
                )
            return EstablishmentResult(
                session_id, False, plan, reason="host_unreachable"
            )

    def _dispatch_segment(self, session_id: str, proxy: QoSProxy, segment: PlanSegment):
        """One segment's reserve/ack exchange with bounded retries.

        Returns ``("committed", Lease)``, ``("admission_failed",
        resource_id)``, or ``("unreachable", host)``.  A reservation
        whose ack was lost exists host-side but is unknown to the main
        proxy: it is compensated with a release order -- and orphaned
        for the reaper when that release is lost too.
        """
        config = self.injector.config
        for attempt in range(config.max_retries + 1):
            fault = self.injector.message_fault("reserve", proxy.host, session_id)
            if fault is None:
                before = len(proxy.held_for(session_id))
                try:
                    proxy.apply_segment(segment)
                except AdmissionError as exc:
                    return ("admission_failed", exc.resource_id)
                made = proxy.held_for(session_id)[before:]
                lease = self._new_lease(session_id, proxy.host, made)
                ack_fault = self.injector.message_fault("ack", proxy.host, session_id)
                if ack_fault is None:
                    delay = self.injector.message_delay("ack", proxy.host, session_id)
                    if delay:
                        yield delay
                    return ("committed", lease)
                self._note_timeout(session_id, proxy.host, "ack", ack_fault, attempt)
                self._release_or_orphan(lease)
            else:
                self._note_timeout(session_id, proxy.host, "reserve", fault, attempt)
            if attempt < config.max_retries:
                self._note_retry(session_id, proxy.host, "reserve", attempt + 1)
                yield self.injector.backoff(attempt)
        return ("unreachable", proxy.host)

    # -- leases and the orphan reaper ---------------------------------------

    def _new_lease(self, session_id: str, host: str, reservations) -> Lease:
        return Lease(
            lease_id=f"{session_id}/{host}#{next(self._lease_seq)}",
            session_id=session_id,
            host=host,
            reservations=tuple(reservations),
            reserved_at=self.now,
            ttl=self.injector.config.lease_ttl,
        )

    def _release_or_orphan(self, lease: Lease) -> None:
        """Roll a lease back -- or orphan it when the release is lost."""
        fault = self.injector.message_fault("release", lease.host, lease.session_id)
        if fault is None:
            self.proxies[lease.host].release_reservations(
                lease.session_id, lease.reservations
            )
            return
        self._orphan(lease)

    def _orphan(self, lease: Lease) -> None:
        self._leases[lease.lease_id] = lease
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("coordinator.leases_orphaned").inc()
        if self._env is not None:
            self._env.process(self._lease_watchdog(lease))

    def _lease_watchdog(self, lease: Lease):
        """DES process reclaiming one orphan when its TTL expires."""
        yield self._env.timeout(max(0.0, lease.expires_at - self._env.now))
        if lease.lease_id in self._leases:
            self._reap(lease)

    def _reap(self, lease: Lease) -> None:
        self._leases.pop(lease.lease_id, None)
        self.leases_reaped += 1
        proxy = self.proxies.get(lease.host)
        released = (
            proxy.release_reservations(lease.session_id, lease.reservations)
            if proxy is not None
            else 0
        )
        _events.emit(
            "lease.expired",
            session=lease.session_id,
            time=self.now,
            host=lease.host,
            lease=lease.lease_id,
            released=released,
        )
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("coordinator.leases_expired").inc()

    def reap_orphans(self, *, now: Optional[float] = None, force: bool = False) -> int:
        """Reclaim expired orphans (all of them with ``force``).

        The DES watchdogs normally do this on time; the explicit form
        serves the synchronous driver and end-of-run cleanup before
        :meth:`~repro.brokers.registry.BrokerRegistry.assert_quiescent`.
        """
        instant = self.now if now is None else now
        reaped = 0
        for key in sorted(self._leases):
            lease = self._leases.get(key)
            if lease is None:
                continue
            if force or instant >= lease.expires_at:
                self._reap(lease)
                reaped += 1
        return reaped

    def teardown(self, session_id: str) -> int:
        """Tear the session down and retire its orphaned leases.

        The orphans' reservations still sit in the proxies' held lists,
        so the parent teardown releases them; dropping the lease records
        first turns the pending watchdogs into no-ops.
        """
        for key in [
            k for k, lease in self._leases.items() if lease.session_id == session_id
        ]:
            del self._leases[key]
        return super().teardown(session_id)

    # -- small helpers -------------------------------------------------------

    def _zero_observations(self, resource_ids) -> Dict[str, ResourceObservation]:
        """What an unreachable host's resources look like to the planner."""
        now = self.now
        return {
            resource_id: ResourceObservation(available=0.0, alpha=1.0, observed_at=now)
            for resource_id in resource_ids
        }

    def _stale_schedule(self, base: Optional[ObservationSchedule], age: float):
        """An observation schedule aged by an injected stale report."""
        when = max(0.0, self.now - age)

        def schedule(resource_id: str) -> Optional[float]:
            earlier = base(resource_id) if base is not None else None
            return when if earlier is None else min(earlier, when)

        return schedule

    def _note_timeout(
        self, session_id: str, host: str, phase: str, fault: str, attempt: int
    ) -> None:
        _events.emit(
            "segment.timeout",
            session=session_id,
            time=self.now,
            host=host,
            phase=phase,
            fault=fault,
            attempt=attempt,
        )
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("coordinator.segment_timeouts", phase=phase).inc()

    def _note_retry(self, session_id: str, host: str, phase: str, attempt: int) -> None:
        _events.emit(
            "segment.retry",
            session=session_id,
            time=self.now,
            host=host,
            phase=phase,
            attempt=attempt,
        )
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("coordinator.segment_retries", phase=phase).inc()

    def _note_replan(
        self, session_id: str, reason: str, attempt: int, excluded: Set[str]
    ) -> None:
        _events.emit(
            "session.replanned",
            session=session_id,
            time=self.now,
            reason=reason,
            attempt=attempt,
            excluded=sorted(excluded),
        )
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("coordinator.replans", reason=reason).inc()


#: The name the issue tracker uses for the zero-fault regression tests.
FaultyCoordinator = FaultTolerantCoordinator


class FaultTolerantDistributedCoordinator(DistributedCoordinator):
    """The distributed (§3) coordinator behind the same fault boundary.

    Fragment collection plays phase 1 (the component host answers or it
    does not), dispatch plays phase 3 with the same reserve/ack/lease
    machinery.  The distributed flavour has no DES entry point, so the
    synchronous recovery policy applies: bounded retries at the same
    instant, orphans reclaimed by :meth:`reap_orphans`.  With a zero
    injector, byte-identical delegation to the parent.
    """

    def __init__(
        self,
        registry: BrokerRegistry,
        structure_store: ModelStore,
        proxies: Mapping[str, ComponentHost],
        *,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(registry, structure_store, proxies)
        self.injector = injector if injector is not None else FaultInjector.disabled()
        self._leases: Dict[str, Lease] = {}
        self._lease_seq = itertools.count(1)

    def establish(self, session_id, service_name, binding, planner, **kwargs):
        if self.injector.is_zero:
            return super().establish(session_id, service_name, binding, planner, **kwargs)
        config = self.injector.config
        service = self.structure_store.service(service_name)
        demand_scale = kwargs.get("demand_scale", 1.0)
        fragments = []
        for component in service.components:
            proxy = self.host_of_component(component.name)
            fragment = None
            for attempt in range(config.max_retries + 1):
                fault = self.injector.message_fault(
                    "availability", proxy.host, session_id
                )
                if fault is None:
                    fragment = proxy.price_fragment(
                        FragmentRequest(session_id, component.name, demand_scale),
                        binding,
                        observed_at=kwargs.get("observed_at"),
                        contention_index=kwargs.get("contention_index"),
                    )
                    break
                if attempt < config.max_retries:
                    self.injector.backoff(attempt)
            if fragment is None:
                # Without the host-side translation function there is no
                # QRG fragment to plan with: the session cannot proceed.
                return EstablishmentResult(
                    session_id, False, None, reason="host_unreachable"
                )
            fragments.append(fragment)
        return self._dispatch_fragments(
            session_id, planner, service, fragments,
            source_label=kwargs.get("source_label"),
        )

    def _dispatch_fragments(
        self, session_id, planner, service, fragments, *, source_label=None
    ):
        from repro.core.errors import PlanningError
        from repro.core.qrg import assemble_qrg, resolve_source_level

        observations: Dict[str, ResourceObservation] = {}
        for fragment in fragments:
            observations.update(fragment.observations)
        snapshot = AvailabilitySnapshot(observations)
        try:
            source_level = resolve_source_level(service, source_label)
        except PlanningError as exc:
            return EstablishmentResult(session_id, False, None, reason=f"qrg: {exc}")
        intra_edges = [edge for fragment in fragments for edge in fragment.edges]
        qrg = assemble_qrg(service, source_level, intra_edges, snapshot)
        plan = planner.plan(qrg)
        if plan is None:
            return EstablishmentResult(session_id, False, None, reason="no_feasible_plan")

        demands_by_host: Dict[str, Dict[str, float]] = {}
        demand = plan.demand
        for fragment in fragments:
            for resource_id in fragment.observations:
                if resource_id in demand:
                    demands_by_host.setdefault(fragment.proxy_host, {})[resource_id] = (
                        demand[resource_id]
                    )
        config = self.injector.config
        committed: List[Lease] = []
        for host in sorted(demands_by_host):
            proxy = self.proxies[host]
            segment = PlanSegment(
                session_id=session_id, proxy_host=host, demands=demands_by_host[host]
            )
            lease = None
            failed_resource = None
            for attempt in range(config.max_retries + 1):
                fault = self.injector.message_fault("reserve", host, session_id)
                if fault is None:
                    before = len(proxy.held_for(session_id))
                    try:
                        self._apply_segment(proxy, segment)
                    except AdmissionError as exc:
                        failed_resource = exc.resource_id
                        break
                    made = proxy.held_for(session_id)[before:]
                    candidate = Lease(
                        lease_id=f"{session_id}/{host}#{next(self._lease_seq)}",
                        session_id=session_id,
                        host=host,
                        reservations=tuple(made),
                        reserved_at=self.injector.now,
                        ttl=config.lease_ttl,
                    )
                    if self.injector.message_fault("ack", host, session_id) is None:
                        lease = candidate
                        break
                    self._release_or_orphan(candidate)
                if attempt < config.max_retries:
                    self.injector.backoff(attempt)
            if lease is None:
                for earlier in committed:
                    self._release_or_orphan(earlier)
                reason = (
                    "admission_failed" if failed_resource is not None else "host_unreachable"
                )
                return EstablishmentResult(
                    session_id, False, plan, reason=reason,
                    failed_resource=failed_resource,
                )
            committed.append(lease)
        return EstablishmentResult(session_id, True, plan)

    def _release_or_orphan(self, lease: Lease) -> None:
        if self.injector.message_fault("release", lease.host, lease.session_id) is None:
            self.proxies[lease.host].release_reservations(
                lease.session_id, lease.reservations
            )
            return
        self._leases[lease.lease_id] = lease

    def pending_leases(self) -> Tuple[Lease, ...]:
        """Orphaned leases not yet reclaimed, in lease-id order."""
        return tuple(self._leases[key] for key in sorted(self._leases))

    def reap_orphans(self, *, now: Optional[float] = None, force: bool = False) -> int:
        """Reclaim expired orphans (all of them with ``force``)."""
        instant = self.injector.now if now is None else now
        reaped = 0
        for key in sorted(self._leases):
            lease = self._leases[key]
            if force or instant >= lease.expires_at:
                del self._leases[key]
                proxy = self.proxies.get(lease.host)
                if proxy is not None:
                    proxy.release_reservations(lease.session_id, lease.reservations)
                reaped += 1
        return reaped

    def teardown(self, session_id: str) -> int:
        """Tear the session down and retire its orphaned leases."""
        for key in [
            k for k, lease in self._leases.items() if lease.session_id == session_id
        ]:
            del self._leases[key]
        return super().teardown(session_id)
