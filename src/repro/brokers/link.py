"""Per-link bandwidth brokers -- the lower network level (paper §3).

One broker per physical link, playing the role of the paper's
"RSVP-enabled bandwidth broker on each router [that] treats each network
link as a separate resource".  :class:`~repro.brokers.path.PathBroker`
aggregates several of these into one end-to-end resource.
"""

from __future__ import annotations

from typing import Optional

from repro.brokers.base import Clock, ResourceBroker


class LinkBandwidthBroker(ResourceBroker):
    """Bandwidth broker for one network link between two endpoints."""

    def __init__(
        self,
        link_id: str,
        endpoint_a: str,
        endpoint_b: str,
        capacity: float,
        *,
        clock: Optional[Clock] = None,
        trend_window: float = 3.0,
    ) -> None:
        if not link_id:
            raise ValueError("link_id must be non-empty")
        if endpoint_a == endpoint_b:
            raise ValueError(f"link {link_id!r} connects {endpoint_a!r} to itself")
        super().__init__(
            resource_id=f"link:{link_id}",
            capacity=capacity,
            clock=clock,
            trend_window=trend_window,
        )
        self.link_id = link_id
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b

    def connects(self, a: str, b: str) -> bool:
        """True when this (bidirectional) link joins ``a`` and ``b``."""
        return {a, b} == {self.endpoint_a, self.endpoint_b}
