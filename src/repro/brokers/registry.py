"""Broker directory and transactional multi-resource reservation.

The registry maps resource ids to brokers.  QoSProxies use it to collect
:class:`~repro.core.resources.AvailabilitySnapshot` instances for QRG
construction, and to execute a computed plan's demand as one
*transaction*: either every resource of the plan is reserved, or none is
(a failed resource fails the whole session -- paper §4.1 "the failure to
reserve one resource leads to the reservation failure for the whole
distributed service session").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.brokers.base import Reservation, ResourceBroker
from repro.brokers.path import PathBroker, PathReservation
from repro.core.errors import AdmissionError, BrokerError
from repro.core.resources import AvailabilitySnapshot, ResourceObservation, ResourceVector

AnyBroker = Union[ResourceBroker, PathBroker]
AnyReservation = Union[Reservation, PathReservation]


@dataclass
class ReservationTransaction:
    """All reservations one session holds, releasable as a unit."""

    session_id: str
    reservations: List[AnyReservation] = field(default_factory=list)

    @property
    def resource_ids(self) -> Tuple[str, ...]:
        """The registered resource ids, sorted."""
        return tuple(reservation.resource_id for reservation in self.reservations)

    def total_amount(self) -> float:
        """Sum of reserved amounts across the transaction."""
        return sum(reservation.amount for reservation in self.reservations)


class BrokerRegistry:
    """Directory of every brokered resource in the environment."""

    def __init__(self) -> None:
        self._brokers: Dict[str, AnyBroker] = {}

    def register(self, broker: AnyBroker) -> None:
        """Register one entry; duplicate registration raises."""
        if broker.resource_id in self._brokers:
            raise BrokerError(f"duplicate broker for resource {broker.resource_id!r}")
        self._brokers[broker.resource_id] = broker

    def broker(self, resource_id: str) -> AnyBroker:
        """Look up the broker for ``resource_id``; raises if unknown."""
        try:
            return self._brokers[resource_id]
        except KeyError:
            raise BrokerError(f"no broker registered for resource {resource_id!r}") from None

    def __contains__(self, resource_id: str) -> bool:
        return resource_id in self._brokers

    def resource_ids(self) -> Tuple[str, ...]:
        """The registered resource ids, sorted."""
        return tuple(sorted(self._brokers))

    def brokers(self) -> Iterable[AnyBroker]:
        """Iterate all registered brokers in resource-id order."""
        return (self._brokers[rid] for rid in sorted(self._brokers))

    def subset(self, resource_ids: Iterable[str]) -> "BrokerRegistry":
        """A registry over a slice of this one, sharing broker objects.

        The cluster layer partitions one environment's directory into
        shard-owned views: reservations made through a subset are
        visible in the parent (same broker instances), so per-shard
        conservation checks compose into the global one.
        """
        view = BrokerRegistry()
        for resource_id in resource_ids:
            view.register(self.broker(resource_id))
        return view

    # -- snapshots -------------------------------------------------------------

    def snapshot(
        self,
        resource_ids: Iterable[str],
        *,
        observed_at: Optional[Callable[[str], Optional[float]]] = None,
    ) -> AvailabilitySnapshot:
        """Collect observations for the given resources.

        ``observed_at``, when provided, maps a resource id to the (past)
        time at which it should be observed -- the §5.2.4 staleness
        model; returning None observes the present.
        """
        observations: Dict[str, ResourceObservation] = {}
        for resource_id in resource_ids:
            broker = self.broker(resource_id)
            when = observed_at(resource_id) if observed_at is not None else None
            if when is None:
                observations[resource_id] = broker.observe()
            else:
                observations[resource_id] = broker.observe_stale(when)
        return AvailabilitySnapshot(observations)

    # -- transactions -------------------------------------------------------------

    def reserve_all(self, demand: ResourceVector, session_id: str) -> ReservationTransaction:
        """Reserve every resource of ``demand`` or nothing.

        On any admission failure all reservations made so far are rolled
        back and the AdmissionError propagates.
        """
        transaction = ReservationTransaction(session_id=session_id)
        try:
            # Deterministic order keeps failure attribution stable.
            for resource_id in sorted(demand):
                broker = self.broker(resource_id)
                transaction.reservations.append(broker.reserve(demand[resource_id], session_id))
        except AdmissionError:
            self.release_all(transaction)
            raise
        return transaction

    def release_all(self, transaction: ReservationTransaction) -> None:
        """Release every reservation of a transaction (idempotent-safe)."""
        while transaction.reservations:
            reservation = transaction.reservations.pop()
            self.broker(reservation.resource_id).release(reservation)

    # -- invariants (used by tests and the simulation's self-checks) -----------

    def total_outstanding(self) -> int:
        """Total number of live reservations across all brokers."""
        return sum(broker.outstanding() for broker in self._brokers.values())

    def assert_quiescent(self) -> None:
        """Raise unless every broker is back at full capacity."""
        for broker in self._brokers.values():
            if broker.outstanding() != 0 or abs(broker.available - broker.capacity) > 1e-6:
                raise BrokerError(
                    f"broker {broker.resource_id!r} not quiescent: "
                    f"{broker.outstanding()} reservations, "
                    f"{broker.available:g}/{broker.capacity:g} available"
                )
