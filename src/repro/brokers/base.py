"""The Resource Broker interface and reservation bookkeeping (paper §3).

The paper lists three basic broker operations: (1) report current
availability of the resource, (2) make and enforce reservations, and
(3) terminate or cancel reservations.  Reservations here are admission
controlled: a request either fits within current availability and is
granted immediately, or it raises :class:`AdmissionError` -- there is no
queueing, matching the paper's session semantics where one failed
resource fails the whole session.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.brokers.history import AvailabilityHistory
from repro.core.errors import AdmissionError, BrokerError
from repro.core.resources import ResourceObservation
from repro.obs import events as _events
from repro.obs import metrics as _metrics

#: A clock callable, normally ``lambda: env.now`` of the DES environment.
Clock = Callable[[], float]

_reservation_ids = itertools.count(1)


@dataclass(frozen=True)
class Reservation:
    """A granted reservation: the handle used to terminate/cancel it."""

    reservation_id: int
    resource_id: str
    amount: float
    session_id: str
    made_at: float


class ResourceBroker:
    """Base implementation of an admission-controlled capacity pool.

    Subclasses specialise what the resource *is* (host-local pool,
    network link, end-to-end path); the accounting, availability
    reporting, and trend tracking are shared.
    """

    def __init__(
        self,
        resource_id: str,
        capacity: float,
        *,
        clock: Optional[Clock] = None,
        trend_window: float = 3.0,
    ) -> None:
        if capacity <= 0:
            raise BrokerError(f"capacity of {resource_id!r} must be positive, got {capacity!r}")
        self.resource_id = resource_id
        self._capacity = float(capacity)
        self._reserved = 0.0
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        self._reservations: Dict[int, Reservation] = {}
        self.history = AvailabilityHistory(window=trend_window)
        self.history.record_change(self._clock(), self._capacity)
        #: Labels attached to this broker's metrics; subclasses extend.
        self._metric_labels: Dict[str, str] = {"resource": resource_id}

    # -- reporting (broker operation 1) -------------------------------------

    @property
    def capacity(self) -> float:
        """Total capacity of this resource."""
        return self._capacity

    @property
    def reserved(self) -> float:
        """Amount currently reserved."""
        return self._reserved

    @property
    def available(self) -> float:
        """Amount currently available (capacity - reserved)."""
        return self._capacity - self._reserved

    def observe(self) -> ResourceObservation:
        """Report availability + Availability Change Index (eq. 5)."""
        now = self._clock()
        available = self.available
        alpha = self.history.alpha(now, available)
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "broker.probe",
                resource=self.resource_id,
                time=now,
                available=available,
                alpha=alpha,
            )
        return ResourceObservation(available=available, alpha=alpha, observed_at=now)

    def observe_stale(self, when: float) -> ResourceObservation:
        """Availability as it was at time ``when`` (paper §5.2.4).

        The alpha index is still computed from the broker's *report* log
        (the trend reports arrive on their own schedule), against the
        stale value.
        """
        value = self.history.value_at(when)
        if value is None:
            value = self.available
        alpha = self.history.alpha(self._clock(), value)
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "broker.probe",
                resource=self.resource_id,
                time=when,
                available=value,
                alpha=alpha,
                stale=True,
            )
        return ResourceObservation(available=value, alpha=alpha, observed_at=when)

    # -- reserving (broker operation 2) ---------------------------------------

    def can_reserve(self, amount: float) -> bool:
        """True when a reservation of ``amount`` would be admitted."""
        return 0 < amount <= self.available + 1e-9

    def reserve(self, amount: float, session_id: str) -> Reservation:
        """Grant ``amount`` to ``session_id`` or raise AdmissionError."""
        if amount <= 0:
            raise BrokerError(f"reservation amount must be positive, got {amount!r}")
        if amount > self.available + 1e-9:
            registry = _metrics.active_registry()
            if registry is not None:
                registry.counter("broker.rejections", **self._metric_labels).inc()
            log = _events.active_event_log()
            if log is not None:
                log.emit(
                    "broker.reject",
                    session=session_id,
                    resource=self.resource_id,
                    time=self._clock(),
                    requested=float(amount),
                    available=self.available,
                    capacity=self._capacity,
                )
            raise AdmissionError(
                f"{self.resource_id}: requested {amount:g} exceeds availability "
                f"{self.available:g} (capacity {self._capacity:g})",
                resource_id=self.resource_id,
            )
        now = self._clock()
        available_before = self.available
        reservation = Reservation(
            reservation_id=next(_reservation_ids),
            resource_id=self.resource_id,
            amount=float(amount),
            session_id=session_id,
            made_at=now,
        )
        self._reserved += reservation.amount
        self._reservations[reservation.reservation_id] = reservation
        self.history.record_change(now, self.available)
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("broker.grants", **self._metric_labels).inc()
            registry.gauge("broker.utilization", **self._metric_labels).set(
                self.utilization()
            )
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "broker.grant",
                session=session_id,
                resource=self.resource_id,
                time=now,
                requested=reservation.amount,
                available=available_before,
                capacity=self._capacity,
                utilization=self.utilization(),
            )
        return reservation

    # -- terminating (broker operation 3) ---------------------------------------

    def release(self, reservation: Reservation) -> None:
        """Terminate or cancel a reservation, returning its capacity."""
        stored = self._reservations.pop(reservation.reservation_id, None)
        if stored is None:
            raise BrokerError(
                f"{self.resource_id}: unknown reservation {reservation.reservation_id} "
                "(double release?)"
            )
        self._reserved -= stored.amount
        if self._reserved < -1e-9:  # pragma: no cover - accounting invariant
            raise BrokerError(f"{self.resource_id}: negative reserved amount")
        self._reserved = max(self._reserved, 0.0)
        now = self._clock()
        self.history.record_change(now, self.available)
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("broker.releases", **self._metric_labels).inc()
            registry.gauge("broker.utilization", **self._metric_labels).set(
                self.utilization()
            )
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "broker.release",
                session=stored.session_id,
                resource=self.resource_id,
                time=now,
                amount=stored.amount,
                available=self.available,
                capacity=self._capacity,
                utilization=self.utilization(),
            )

    def outstanding(self) -> int:
        """Number of live reservations (diagnostics / invariants)."""
        return len(self._reservations)

    def utilization(self) -> float:
        """Fraction of capacity currently reserved."""
        return self._reserved / self._capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.resource_id} "
            f"{self._reserved:g}/{self._capacity:g} reserved>"
        )
