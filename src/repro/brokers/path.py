"""End-to-end network path brokers -- the higher network level (paper §3).

A PathBroker treats all the links between two end hosts as *one*
resource.  Its reported availability is the minimum of the per-link
availabilities reported by the lower-level link brokers; a reservation
of ``x`` units is applied to *every* link along the route,
transactionally (if any link admission fails, already-made link
reservations are rolled back and the whole path reservation fails).

To be compatible with RSVP the paper has the receiver-side broker
initiate the end-to-end reservation; here that surfaces as the path
broker living in the registry under a ``net:`` resource id that the
receiving host's QoSProxy owns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.brokers.base import Clock, Reservation
from repro.brokers.history import AvailabilityHistory
from repro.brokers.link import LinkBandwidthBroker
from repro.core.errors import AdmissionError, BrokerError
from repro.core.resources import ResourceObservation
from repro.obs import events as _events
from repro.obs import metrics as _metrics

_path_reservation_ids = itertools.count(1)


@dataclass(frozen=True)
class PathReservation:
    """A composite reservation: one per-link reservation per hop."""

    reservation_id: int
    resource_id: str
    amount: float
    session_id: str
    made_at: float
    link_reservations: Tuple[Reservation, ...]


class PathBroker:
    """Two-level end-to-end network resource broker (paper §3)."""

    def __init__(
        self,
        resource_id: str,
        links: Sequence[LinkBandwidthBroker],
        *,
        clock: Optional[Clock] = None,
        trend_window: float = 3.0,
    ) -> None:
        if not links:
            raise BrokerError(f"path broker {resource_id!r} needs at least one link")
        self.resource_id = resource_id
        self.links: Tuple[LinkBandwidthBroker, ...] = tuple(links)
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        self.history = AvailabilityHistory(window=trend_window)
        self.history.record_change(self._clock(), self.available)
        #: Labels attached to this broker's metrics (mirrors ResourceBroker).
        self._metric_labels = {"resource": resource_id, "hops": str(len(self.links))}

    # -- reporting -----------------------------------------------------------

    @property
    def available(self) -> float:
        """Minimum link availability along the route."""
        return min(link.available for link in self.links)

    @property
    def capacity(self) -> float:
        """Bottleneck capacity of the route (for utilisation metrics)."""
        return min(link.capacity for link in self.links)

    @property
    def reserved(self) -> float:
        """Amount currently reserved."""
        return self.capacity - self.available

    def bottleneck_link(self) -> LinkBandwidthBroker:
        """The link with the least available bandwidth on the route."""
        return min(self.links, key=lambda link: (link.available, link.link_id))

    def observe(self) -> ResourceObservation:
        """Report current availability plus the Availability Change Index."""
        now = self._clock()
        available = self.available
        alpha = self.history.alpha(now, available)
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "broker.probe",
                resource=self.resource_id,
                time=now,
                available=available,
                alpha=alpha,
            )
        return ResourceObservation(available=available, alpha=alpha, observed_at=now)

    def observe_stale(self, when: float) -> ResourceObservation:
        """Report availability as it was at time ``when`` (§5.2.4)."""
        values: List[float] = []
        for link in self.links:
            value = link.history.value_at(when)
            values.append(link.available if value is None else value)
        available = min(values)
        alpha = self.history.alpha(self._clock(), available)
        return ResourceObservation(available=available, alpha=alpha, observed_at=when)

    # -- reserving -------------------------------------------------------------

    def can_reserve(self, amount: float) -> bool:
        """True when a reservation of ``amount`` would be admitted."""
        return 0 < amount <= self.available + 1e-9

    def reserve(self, amount: float, session_id: str) -> PathReservation:
        """Reserve ``amount`` on every link of the route, atomically."""
        if amount <= 0:
            raise BrokerError(f"reservation amount must be positive, got {amount!r}")
        available_before = self.available
        made: List[Reservation] = []
        try:
            for link in self.links:
                made.append(link.reserve(amount, session_id))
        except AdmissionError:
            for link_reservation in reversed(made):
                broker = self._link_by_id(link_reservation.resource_id)
                broker.release(link_reservation)
            registry = _metrics.active_registry()
            if registry is not None:
                registry.counter("broker.rejections", **self._metric_labels).inc()
            log = _events.active_event_log()
            if log is not None:
                log.emit(
                    "broker.reject",
                    session=session_id,
                    resource=self.resource_id,
                    time=self._clock(),
                    requested=float(amount),
                    available=self.available,
                    capacity=self.capacity,
                    bottleneck_link=self.bottleneck_link().link_id,
                )
            raise AdmissionError(
                f"{self.resource_id}: {amount:g} exceeds availability "
                f"{self.available:g} on link {self.bottleneck_link().link_id}",
                resource_id=self.resource_id,
            ) from None
        now = self._clock()
        self.history.record_change(now, self.available)
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("broker.grants", **self._metric_labels).inc()
            registry.gauge("broker.utilization", **self._metric_labels).set(
                self.utilization()
            )
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "broker.grant",
                session=session_id,
                resource=self.resource_id,
                time=now,
                requested=float(amount),
                available=available_before,
                capacity=self.capacity,
                utilization=self.utilization(),
            )
        return PathReservation(
            reservation_id=next(_path_reservation_ids),
            resource_id=self.resource_id,
            amount=float(amount),
            session_id=session_id,
            made_at=now,
            link_reservations=tuple(made),
        )

    def release(self, reservation: PathReservation) -> None:
        """Terminate or cancel a reservation, returning its capacity."""
        for link_reservation in reservation.link_reservations:
            self._link_by_id(link_reservation.resource_id).release(link_reservation)
        now = self._clock()
        self.history.record_change(now, self.available)
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("broker.releases", **self._metric_labels).inc()
            registry.gauge("broker.utilization", **self._metric_labels).set(
                self.utilization()
            )
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "broker.release",
                session=reservation.session_id,
                resource=self.resource_id,
                time=now,
                amount=reservation.amount,
                available=self.available,
                capacity=self.capacity,
                utilization=self.utilization(),
            )

    def outstanding(self) -> int:
        """Number of live reservations (diagnostics / invariants)."""
        return max(link.outstanding() for link in self.links)

    def utilization(self) -> float:
        """Fraction of capacity currently reserved."""
        return max(link.utilization() for link in self.links)

    def _link_by_id(self, resource_id: str) -> LinkBandwidthBroker:
        for link in self.links:
            if link.resource_id == resource_id:
                return link
        raise BrokerError(f"{self.resource_id}: no link {resource_id!r} on route")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hops = "+".join(link.link_id for link in self.links)
        return f"<PathBroker {self.resource_id} via {hops} avail={self.available:g}>"
