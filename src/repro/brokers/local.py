"""Host-local resource brokers (paper §3: CPU, memory, disk I/O, ...).

The paper cites DSRT for CPU and Cello for disk I/O as concrete
enforcers; in the reservation-enabled simulation the broker *is* the
enforcer, so a local broker is simply an admission-controlled pool tied
to a host, with a resource *kind* tag for reporting.
"""

from __future__ import annotations

from typing import Optional

from repro.brokers.base import Clock, ResourceBroker


class LocalResourceBroker(ResourceBroker):
    """Broker for one kind of local resource on one host."""

    def __init__(
        self,
        host: str,
        kind: str,
        capacity: float,
        *,
        clock: Optional[Clock] = None,
        trend_window: float = 3.0,
    ) -> None:
        if not host or not kind:
            raise ValueError("host and kind must be non-empty")
        super().__init__(
            resource_id=f"{kind}:{host}",
            capacity=capacity,
            clock=clock,
            trend_window=trend_window,
        )
        self.host = host
        self.kind = kind
        # Host/kind dimensions let the metrics layer aggregate local
        # pools across the grid (e.g. all "cpu" grants per host).
        self._metric_labels.update(host=host, kind=kind)
