"""Advance (book-ahead) reservations -- the paper's stated next step.

Section 6 of the paper: "An advance resource reservation mechanism is
proposed in [12] ... One of our next steps is to extend our
multi-resource reservation framework to support advance reservations."
This module provides that extension:

* :class:`TimelineBroker` -- a broker whose reservations occupy a time
  *interval* ``[start, end)`` instead of "from now until released".
  Availability is a piecewise-constant function of time; admission
  checks the *minimum* availability over the requested interval.
* :func:`advance_snapshot` -- builds an
  :class:`~repro.core.resources.AvailabilitySnapshot` for a future
  window, so the unchanged planning algorithms (basic/tradeoff/DAG)
  plan *advance* multi-resource reservations with zero modification --
  exactly the compositionality the paper's QRG design allows.

The Availability Change Index of an advance broker compares the
requested window against the broker's recent report history, like the
immediate brokers do (eq. 5).
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.brokers.base import Clock
from repro.brokers.history import AvailabilityHistory
from repro.core.errors import AdmissionError, BrokerError
from repro.core.resources import AvailabilitySnapshot, ResourceObservation

_advance_ids = itertools.count(1)


@dataclass(frozen=True)
class AdvanceReservation:
    """A granted book-ahead reservation for ``[start, end)``."""

    reservation_id: int
    resource_id: str
    amount: float
    session_id: str
    start: float
    end: float
    made_at: float


class TimelineBroker:
    """Admission-controlled capacity over a time axis.

    The committed load is a step function maintained as a sorted list of
    breakpoints; queries and admissions are O(log n + window span) in
    the number of breakpoints.
    """

    def __init__(
        self,
        resource_id: str,
        capacity: float,
        *,
        clock: Optional[Clock] = None,
        trend_window: float = 3.0,
    ) -> None:
        if capacity <= 0:
            raise BrokerError(f"capacity of {resource_id!r} must be positive")
        self.resource_id = resource_id
        self._capacity = float(capacity)
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        # breakpoints: times[i] is where load becomes loads[i]; the load
        # before times[0] is 0.  Invariant: strictly increasing times.
        self._times: List[float] = []
        self._loads: List[float] = []
        self._reservations: Dict[int, AdvanceReservation] = {}
        self.history = AvailabilityHistory(window=trend_window)

    # -- queries -----------------------------------------------------------

    @property
    def capacity(self) -> float:
        """Total capacity of this resource."""
        return self._capacity

    def load_at(self, when: float) -> float:
        """Committed load at instant ``when``."""
        index = bisect.bisect_right(self._times, when) - 1
        return self._loads[index] if index >= 0 else 0.0

    def available_at(self, when: float) -> float:
        """Availability at one instant."""
        return self._capacity - self.load_at(when)

    def available_over(self, start: float, end: float) -> float:
        """Minimum availability across ``[start, end)``."""
        self._check_window(start, end)
        worst = self.load_at(start)
        left = bisect.bisect_right(self._times, start)
        right = bisect.bisect_left(self._times, end)
        for index in range(left, right):
            worst = max(worst, self._loads[index])
        return self._capacity - worst

    def observe_window(self, start: float, end: float) -> ResourceObservation:
        """Availability + change index for a future window (eq. 5 analogue)."""
        available = self.available_over(start, end)
        alpha = self.history.alpha(self._clock(), available)
        return ResourceObservation(available=available, alpha=alpha, observed_at=self._clock())

    def outstanding(self) -> int:
        """Number of live reservations (diagnostics / invariants)."""
        return len(self._reservations)

    # -- booking -------------------------------------------------------------

    def reserve(
        self, amount: float, session_id: str, start: float, end: float
    ) -> AdvanceReservation:
        """Book ``amount`` over ``[start, end)`` or raise AdmissionError."""
        if amount <= 0:
            raise BrokerError(f"reservation amount must be positive, got {amount!r}")
        self._check_window(start, end)
        if amount > self.available_over(start, end) + 1e-9:
            raise AdmissionError(
                f"{self.resource_id}: {amount:g} over [{start:g}, {end:g}) exceeds "
                f"window availability {self.available_over(start, end):g}",
                resource_id=self.resource_id,
            )
        self._apply(start, end, amount)
        reservation = AdvanceReservation(
            reservation_id=next(_advance_ids),
            resource_id=self.resource_id,
            amount=float(amount),
            session_id=session_id,
            start=float(start),
            end=float(end),
            made_at=self._clock(),
        )
        self._reservations[reservation.reservation_id] = reservation
        return reservation

    def cancel(self, reservation: AdvanceReservation) -> None:
        """Cancel a booking, returning its capacity over its window."""
        stored = self._reservations.pop(reservation.reservation_id, None)
        if stored is None:
            raise BrokerError(
                f"{self.resource_id}: unknown advance reservation "
                f"{reservation.reservation_id} (double cancel?)"
            )
        self._apply(stored.start, stored.end, -stored.amount)

    # -- internals ------------------------------------------------------------

    def _check_window(self, start: float, end: float) -> None:
        if not end > start:
            raise BrokerError(f"empty reservation window [{start!r}, {end!r})")

    def _ensure_breakpoint(self, when: float) -> int:
        """Index of the breakpoint at exactly ``when``, inserting if needed."""
        index = bisect.bisect_left(self._times, when)
        if index < len(self._times) and self._times[index] == when:
            return index
        previous_load = self._loads[index - 1] if index > 0 else 0.0
        self._times.insert(index, when)
        self._loads.insert(index, previous_load)
        return index

    def _apply(self, start: float, end: float, delta: float) -> None:
        first = self._ensure_breakpoint(start)
        last = self._ensure_breakpoint(end)
        for index in range(first, last):
            self._loads[index] += delta
        self._coalesce()

    def _coalesce(self) -> None:
        """Drop redundant breakpoints (load equal to the preceding one).

        The implicit load before the first breakpoint is 0, so leading
        zero-load breakpoints are redundant too.
        """
        times: List[float] = []
        loads: List[float] = []
        previous = 0.0
        for when, load in zip(self._times, self._loads):
            if abs(load - previous) > 1e-12:
                times.append(when)
                loads.append(load)
                previous = load
        self._times, self._loads = times, loads

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimelineBroker {self.resource_id} capacity={self._capacity:g} "
            f"breakpoints={len(self._times)}>"
        )


class AdvanceRegistry:
    """Directory of timeline brokers + windowed snapshots/transactions."""

    def __init__(self) -> None:
        self._brokers: Dict[str, TimelineBroker] = {}

    def register(self, broker: TimelineBroker) -> None:
        """Register one entry; duplicate registration raises."""
        if broker.resource_id in self._brokers:
            raise BrokerError(f"duplicate advance broker for {broker.resource_id!r}")
        self._brokers[broker.resource_id] = broker

    def broker(self, resource_id: str) -> TimelineBroker:
        """Look up the broker for ``resource_id``; raises if unknown."""
        try:
            return self._brokers[resource_id]
        except KeyError:
            raise BrokerError(f"no advance broker for resource {resource_id!r}") from None

    def __contains__(self, resource_id: str) -> bool:
        return resource_id in self._brokers

    def snapshot(self, resource_ids: Iterable[str], start: float, end: float) -> AvailabilitySnapshot:
        """Windowed availability snapshot -- feed it straight to build_qrg."""
        return AvailabilitySnapshot(
            {rid: self.broker(rid).observe_window(start, end) for rid in resource_ids}
        )

    def reserve_plan(self, plan, session_id: str, start: float, end: float) -> List[AdvanceReservation]:
        """Book an entire reservation plan's demand over a window, atomically."""
        made: List[AdvanceReservation] = []
        demand = plan.demand
        try:
            for resource_id in sorted(demand):
                made.append(
                    self.broker(resource_id).reserve(demand[resource_id], session_id, start, end)
                )
        except AdmissionError:
            for reservation in reversed(made):
                self.broker(reservation.resource_id).cancel(reservation)
            raise
        return made

    def cancel_all(self, reservations: Iterable[AdvanceReservation]) -> None:
        """Cancel several bookings."""
        for reservation in reservations:
            self.broker(reservation.resource_id).cancel(reservation)


def advance_snapshot(
    registry: AdvanceRegistry, resource_ids: Iterable[str], start: float, end: float
) -> AvailabilitySnapshot:
    """Convenience alias for :meth:`AdvanceRegistry.snapshot`."""
    return registry.snapshot(resource_ids, start, end)
