"""Availability history: trend tracking and retrospective observation.

Supports two distinct needs of the paper's evaluation:

* **Availability Change Index** (§4.3.1, eq. 5): the broker keeps an
  average ``r_avg_avail`` of the availability values *reported* during
  the past ``T`` time units; ``alpha = r_avail / r_avg_avail`` reflects
  the trend.  The average is updated after each report.
* **Stale observations** (§5.2.4): the inaccuracy experiments observe a
  resource's availability as it was up to ``E`` time units ago, so the
  true availability must be reconstructible for any past instant.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.errors import BrokerError


class AvailabilityHistory:
    """Report log (for alpha) + change log (for retrospective queries)."""

    def __init__(self, window: float = 3.0, max_changes: Optional[int] = None) -> None:
        """``window`` is the paper's ``T`` (3 time units in §5's runs).

        ``max_changes`` optionally bounds the change log's memory by
        dropping the oldest change points (retrospective queries then
        clamp to the oldest retained point).
        """
        if window <= 0:
            raise BrokerError(f"averaging window must be positive, got {window!r}")
        self.window = float(window)
        self._reports: Deque[Tuple[float, float]] = deque()
        self._change_times: List[float] = []
        self._change_values: List[float] = []
        self._max_changes = max_changes

    # -- alpha (availability change index) --------------------------------

    def alpha(self, now: float, available: float) -> float:
        """Report ``available`` at ``now`` and return the change index.

        The index compares the current availability against the mean of
        the values reported in the window *before* this report (the paper
        updates the average after each report).  Returns 1.0 when there
        is no history yet -- "unchanged".
        """
        cutoff = now - self.window
        while self._reports and self._reports[0][0] < cutoff:
            self._reports.popleft()
        if self._reports:
            mean = sum(value for _t, value in self._reports) / len(self._reports)
            index = 1.0 if mean <= 0 else available / mean
        else:
            index = 1.0
        self._reports.append((now, available))
        return index

    # -- change log (retrospective availability) -----------------------------

    def record_change(self, now: float, available: float) -> None:
        """Record that availability became ``available`` at time ``now``."""
        if self._change_times and now < self._change_times[-1]:
            raise BrokerError(
                f"change at {now!r} is earlier than last recorded {self._change_times[-1]!r}"
            )
        if self._change_times and self._change_times[-1] == now:
            self._change_values[-1] = available
        else:
            self._change_times.append(now)
            self._change_values.append(available)
        if self._max_changes is not None and len(self._change_times) > self._max_changes:
            del self._change_times[0]
            del self._change_values[0]

    def value_at(self, when: float) -> Optional[float]:
        """Availability as of time ``when`` (None before any record)."""
        index = bisect.bisect_right(self._change_times, when) - 1
        if index < 0:
            return self._change_values[0] if self._change_values else None
        return self._change_values[index]

    def latest(self) -> Optional[Tuple[float, float]]:
        """Most recent (time, value) change point, or None."""
        if not self._change_times:
            return None
        return self._change_times[-1], self._change_values[-1]

    def __len__(self) -> int:
        return len(self._change_times)
