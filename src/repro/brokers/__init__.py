"""Resource Brokers (paper §3).

A Resource Broker makes and enforces reservations for one resource:

* :class:`~repro.brokers.local.LocalResourceBroker` -- a host-local
  resource (CPU, memory, disk I/O bandwidth);
* :class:`~repro.brokers.link.LinkBandwidthBroker` -- the lower level of
  the two-level network model: one broker per physical link (the paper's
  RSVP-enabled per-router bandwidth brokers);
* :class:`~repro.brokers.path.PathBroker` -- the higher level: treats the
  links between two end hosts as *one* end-to-end resource whose
  availability is the minimum of the underlying link availabilities, and
  whose reservations are applied transactionally to every link.

All brokers share the :class:`~repro.brokers.base.ResourceBroker`
interface: report availability (plus the Availability Change Index
``alpha`` of §4.3.1), make reservations, and terminate/cancel them.
:class:`~repro.brokers.registry.BrokerRegistry` is the directory the
QoSProxies use to collect availability snapshots and dispatch plans.
"""

from repro.brokers.advance import (
    AdvanceRegistry,
    AdvanceReservation,
    TimelineBroker,
    advance_snapshot,
)
from repro.brokers.base import Reservation, ResourceBroker
from repro.brokers.history import AvailabilityHistory
from repro.brokers.link import LinkBandwidthBroker
from repro.brokers.local import LocalResourceBroker
from repro.brokers.path import PathBroker
from repro.brokers.registry import BrokerRegistry, ReservationTransaction

__all__ = [
    "AdvanceRegistry",
    "AdvanceReservation",
    "AvailabilityHistory",
    "BrokerRegistry",
    "LinkBandwidthBroker",
    "LocalResourceBroker",
    "PathBroker",
    "Reservation",
    "ReservationTransaction",
    "ResourceBroker",
    "TimelineBroker",
    "advance_snapshot",
]
