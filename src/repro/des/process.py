"""Generator-based simulation processes."""

from __future__ import annotations

from typing import Any, Generator

from repro.des.engine import Environment, Interrupt
from repro.des.events import Event


class Process(Event):
    """A coroutine driven by the event loop.

    A process wraps a generator.  Each value the generator yields must be
    an :class:`Event`; the process sleeps until that event fires and is
    then resumed with the event's value (or has the event's exception
    thrown into it).  The process itself *is* an event: it fires when the
    generator returns (value = the generator's return value) or fails when
    the generator raises, so processes can wait on each other.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: Environment, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick the process off at the current instant, ahead of any
        # same-time NORMAL events.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap._value = None
        from repro.des.events import EventStatus

        bootstrap._status = EventStatus.TRIGGERED
        env._schedule_urgent(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.triggered:
            raise RuntimeError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from whatever we were waiting on so the original event's
        # eventual firing does not resume us twice.
        target = self._waiting_on
        if target is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        wakeup = Event(self.env)
        wakeup._exception = Interrupt(cause)
        wakeup._defused = True
        from repro.des.events import EventStatus

        wakeup._status = EventStatus.TRIGGERED
        wakeup.callbacks.append(self._resume)
        self.env._schedule_urgent(wakeup)

    # -- engine interface --------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.env._active_process = self
        try:
            if event._exception is not None:
                event.defuse()
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled Interrupt terminates the process as a failure.
            self.env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(target, Event):
            error = RuntimeError(
                f"process yielded a non-event: {target!r}; processes may only "
                "wait on Event instances (Timeout, Process, Container gets, ...)"
            )
            # Surface the bug inside the generator so its cleanup runs.
            wakeup = Event(self.env)
            wakeup._exception = error
            wakeup._defused = True
            from repro.des.events import EventStatus

            wakeup._status = EventStatus.TRIGGERED
            wakeup.callbacks.append(self._resume)
            self.env._schedule_urgent(wakeup)
            return

        if target.env is not self.env:
            raise RuntimeError("process yielded an event from a different environment")

        if target.processed:
            # Already fired and fully processed: resume immediately (but
            # still through the queue, to preserve run-to-completion
            # semantics of the current callback batch).
            wakeup = Event(self.env)
            wakeup._value = target._value
            wakeup._exception = target._exception
            if target._exception is not None:
                target.defuse()
                wakeup._defused = True
            from repro.des.events import EventStatus

            wakeup._status = EventStatus.TRIGGERED
            wakeup.callbacks.append(self._resume)
            self.env._schedule_urgent(wakeup)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self._generator, "__name__", "process")
        return f"<Process {name} {'alive' if self.is_alive else 'done'}>"
