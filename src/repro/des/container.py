"""A capacity pool with blocking get/put.

The paper's Resource Brokers use *non-blocking* admission control (a
reservation either fits right now or the whole session fails), which is
implemented in :mod:`repro.brokers`.  :class:`Container` complements that
with the classical blocking pool: requests queue until capacity frees up.
It is used by examples and tests that model best-effort (non-reserved)
background load.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Environment


class ContainerError(Exception):
    """Raised on misuse of a :class:`Container`."""


class _Request(Event):
    __slots__ = ("amount",)

    def __init__(self, env: "Environment", amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class Container:
    """A pool holding a continuous amount of a single resource.

    ``get(amount)`` returns an event that fires once the amount could be
    taken from the pool; ``put(amount)`` returns an event that fires once
    the amount fits below ``capacity``.  Requests are served in FIFO
    order; a large get at the head of the queue blocks smaller ones
    behind it (no overtaking), which keeps the pool fair.
    """

    def __init__(self, env: "Environment", capacity: float, init: float = 0.0) -> None:
        if capacity <= 0:
            raise ContainerError(f"capacity must be positive, got {capacity!r}")
        if not 0 <= init <= capacity:
            raise ContainerError(f"init {init!r} outside [0, {capacity!r}]")
        self.env = env
        self._capacity = float(capacity)
        self._level = float(init)
        self._getters: deque[_Request] = deque()
        self._putters: deque[_Request] = deque()

    @property
    def capacity(self) -> float:
        """Total capacity of this resource."""
        return self._capacity

    @property
    def level(self) -> float:
        """Amount currently held in the pool."""
        return self._level

    def get(self, amount: float) -> Event:
        """Take ``amount`` out of the pool (blocking)."""
        if amount <= 0:
            raise ContainerError(f"get amount must be positive, got {amount!r}")
        if amount > self._capacity:
            raise ContainerError(
                f"get of {amount!r} can never succeed (capacity {self._capacity!r})"
            )
        request = _Request(self.env, amount)
        self._getters.append(request)
        self._drain()
        return request

    def put(self, amount: float) -> Event:
        """Add ``amount`` into the pool (blocking while full)."""
        if amount <= 0:
            raise ContainerError(f"put amount must be positive, got {amount!r}")
        if amount > self._capacity:
            raise ContainerError(
                f"put of {amount!r} can never succeed (capacity {self._capacity!r})"
            )
        request = _Request(self.env, amount)
        self._putters.append(request)
        self._drain()
        return request

    def try_get(self, amount: float) -> bool:
        """Non-blocking take; returns False (untouched pool) if short."""
        if amount <= 0:
            raise ContainerError(f"get amount must be positive, got {amount!r}")
        if amount > self._level + 1e-12:
            return False
        self._level -= amount
        self._drain()
        return True

    def _drain(self) -> None:
        """Serve queued requests in FIFO order until one blocks."""
        progressed = True
        while progressed:
            progressed = False
            if self._getters and self._getters[0].amount <= self._level + 1e-12:
                request = self._getters.popleft()
                self._level -= request.amount
                request.succeed()
                progressed = True
            if self._putters and self._putters[0].amount + self._level <= self._capacity + 1e-12:
                request = self._putters.popleft()
                self._level += request.amount
                request.succeed()
                progressed = True
