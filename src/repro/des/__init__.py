"""Discrete-event simulation kernel.

A small, dependency-free (numpy only, for RNG) process-based DES engine in
the style of simpy.  It provides the substrate on which the reservation
environment of the paper's evaluation (section 5) runs:

* :class:`~repro.des.engine.Environment` -- the event loop, simulation
  clock, and scheduling interface.
* :class:`~repro.des.events.Event`, :class:`~repro.des.events.Timeout`,
  :class:`~repro.des.events.AnyOf`, :class:`~repro.des.events.AllOf` --
  the primitives a process can wait on.
* :class:`~repro.des.process.Process` -- a generator-based coroutine; a
  process yields events and is resumed when they fire.
* :class:`~repro.des.container.Container` -- a capacity pool with blocking
  ``get``/``put``, useful for modelling queued resources in examples and
  tests (the paper's brokers use non-blocking admission control instead).
* :class:`~repro.des.rng.RandomStreams` -- named, independently seeded
  ``numpy`` generator streams, so experiments are reproducible and
  individual sources of randomness can be varied independently.
"""

from repro.des.engine import Environment, Interrupt, SimulationError
from repro.des.events import AllOf, AnyOf, Event, EventStatus, Timeout
from repro.des.process import Process
from repro.des.container import Container, ContainerError
from repro.des.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "ContainerError",
    "Environment",
    "Event",
    "EventStatus",
    "Interrupt",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Timeout",
]
