"""Named, independently seeded random-number streams.

Every distinct source of randomness in an experiment (arrival times,
session classes, durations, popularity drift, ...) draws from its own
stream.  Streams are derived from one root seed with
``numpy.random.SeedSequence.spawn``-style child seeding keyed by the
stream *name*, so

* the whole experiment is reproducible from a single integer seed, and
* changing how often one stream is consumed does not perturb the others
  (common-random-numbers across algorithm variants).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator

import numpy as np


class RandomStreams:
    """A factory of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this stream family derives from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            # Key the child seed on a stable hash of the name so stream
            # identity does not depend on creation order.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(name_key,))
            generator = np.random.default_rng(seq)
            self._streams[name] = generator
        return generator

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> Iterator[str]:
        """Sorted names of all stored entries."""
        return iter(sorted(self._streams))

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child family (e.g. per replication)."""
        child_seed = zlib.crc32(f"{self._seed}:{name}".encode("utf-8"))
        return RandomStreams(child_seed)

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on stream ``name`` (Poisson gaps)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One draw from U(low, high) on stream ``name``."""
        if high < low:
            raise ValueError(f"empty uniform range [{low!r}, {high!r}]")
        return float(self.stream(name).uniform(low, high))

    def choice_weighted(self, name: str, items, weights) -> object:
        """Weighted choice from ``items``; weights need not be normalised."""
        weights = np.asarray(list(weights), dtype=float)
        if len(weights) != len(items):
            raise ValueError("items and weights must have the same length")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError(f"invalid weights {weights!r}")
        probabilities = weights / weights.sum()
        index = int(self.stream(name).choice(len(items), p=probabilities))
        return items[index]
