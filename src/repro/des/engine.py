"""The simulation engine: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, Optional

from repro.des.events import AllOf, AnyOf, Event, EventStatus, Timeout


class SimulationError(Exception):
    """Raised for structural errors in the simulation itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    @property
    def cause(self) -> Any:
        """The value supplied by the interrupter."""
        return self.args[0] if self.args else None


# Scheduling priorities: URGENT events (process resumptions) run before
# NORMAL events scheduled at the same instant, which keeps the semantics
# of "wake the waiter before starting the next arrival at time t".
URGENT = 0
NORMAL = 1


class Environment:
    """Execution environment of a simulation run.

    The environment owns the simulation clock and the event queue.  Time
    only advances between events; all computation at one instant is
    ordered by (time, priority, insertion id), which makes runs fully
    deterministic.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process = None

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction ----------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def any_of(self, events) -> AnyOf:
        """Condition firing when any of the events fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Condition firing when all of the events have fired."""
        return AllOf(self, events)

    def process(self, generator: Generator) -> "Process":
        """Start a new process from a generator function's generator."""
        from repro.des.process import Process

        return Process(self, generator)

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def _schedule_urgent(self, event: Event) -> None:
        self._schedule(event, 0.0, URGENT)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None
        if when < self._now:  # pragma: no cover - defensive; cannot happen
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._status = EventStatus.PROCESSED
        for callback in callbacks:
            callback(event)
        if event._exception is not None and not event._defused:
            raise event._exception

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the event queue is exhausted,
        * a number -- run until the clock reaches that time,
        * an :class:`Event` -- run until that event is processed and
          return its value (or raise its exception).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "run(until=event) exhausted the schedule before the event fired"
                    )
                self.step()
            if stop._exception is not None:
                raise stop._exception
            return stop._value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run until {horizon!r}, which is in the past")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment t={self._now} queued={len(self._queue)}>"
