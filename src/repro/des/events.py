"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence with a value.  Processes wait on
events by ``yield``-ing them; the engine resumes the process when the event
fires.  Events move through a strict life cycle::

    PENDING -> TRIGGERED -> PROCESSED

``TRIGGERED`` means the event has been scheduled on the engine's queue with
a concrete value (or exception); ``PROCESSED`` means its callbacks have run.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.des.engine import Environment


class EventStatus(enum.Enum):
    """Life-cycle states of an :class:`Event`."""

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment the event belongs to.  All scheduling goes through
        it so that simulated time stays consistent.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_status", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._status = EventStatus.PENDING
        # A failed event whose exception was never observed by any process
        # is a silent bug; the engine raises it at the end of the step
        # unless some waiter "defuses" it by handling the failure.
        self._defused = False

    # -- inspection ----------------------------------------------------

    @property
    def status(self) -> EventStatus:
        """Current life-cycle state."""
        return self._status

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with an outcome."""
        return self._status is not EventStatus.PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._status is EventStatus.PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event fired successfully (not failed)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value (raises until triggered, re-raises failures)."""
        if not self.triggered:
            raise RuntimeError("value of a pending event is not available")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the event failed with, if any."""
        return self._exception

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        self._status = EventStatus.TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception.

        Any process waiting on the event will have the exception thrown
        into it at its yield point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._exception = exception
        self._status = EventStatus.TRIGGERED
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Fire this event with the outcome of another (for chaining)."""
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)

    def defuse(self) -> None:
        """Mark a failed event's exception as handled."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._status.value} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._status = EventStatus.TRIGGERED
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay!r}>"


class Condition(Event):
    """Base for composite events (:class:`AnyOf` / :class:`AllOf`).

    The condition fires when ``evaluate`` says enough of the watched
    events have fired.  Its value is a dict mapping each fired event to
    its value, in firing order.
    """

    __slots__ = ("events", "_num_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._num_fired = 0
        for event in self.events:
            if event.env is not env:
                raise ValueError("all events of a condition must share one environment")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _evaluate(self) -> bool:
        raise NotImplementedError

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
            return
        self._num_fired += 1
        if self._evaluate():
            self.succeed({e: e._value for e in self.events if e.processed and e.ok})


class AnyOf(Condition):
    """Fires as soon as any one of the watched events fires."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._num_fired >= 1


class AllOf(Condition):
    """Fires when all watched events have fired."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._num_fired >= len(self.events)
