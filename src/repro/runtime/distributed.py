"""The *distributed* model-store approach (paper §3).

§3 offers two placements for the QoS-Resource Model definition: the
centralised one (the main QoSProxy stores everything; implemented by
:class:`~repro.runtime.coordinator.ReservationCoordinator`, which the
paper assumes for the rest of the text) and a distributed one, where
"the Q_in and Q_out levels and the Translation Function of each service
component will be stored and accessed by the QoSProxy of the host where
the service component runs".

This module implements the distributed flavour.  Per session:

1. the main proxy asks each participating proxy for its component's
   *QRG fragment* -- the feasible, locally priced (Q_in, Q_out) edges
   (the proxy holds the translation function and can query its local
   brokers directly, folding phase 1 into fragment computation);
2. the main proxy stitches the fragments into the full QRG (it still
   holds the service *structure*: dependency graph and ranking, which
   are service-level rather than component-level knowledge) and runs
   the planning algorithm;
3. plan dispatch and tear-down are identical to the centralised path.

The two coordinators are interchangeable: given the same snapshot they
compute identical plans (asserted by the test suite), so everything
else in the library -- sessions, simulation, metrics -- accepts either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.brokers.registry import BrokerRegistry
from repro.core.component import Binding, ServiceComponent
from repro.core.errors import AdmissionError, BrokerError, ModelError, PlanningError
from repro.core.qrg import (
    IntraEdge,
    assemble_qrg,
    price_component_edges,
    resolve_source_level,
)
from repro.core.resources import AvailabilitySnapshot, ResourceObservation
from repro.core.translation import ScaledTranslation
from repro.runtime.coordinator import EstablishmentResult, ObservationSchedule
from repro.runtime.messages import PlanSegment
from repro.runtime.model_store import ModelStore
from repro.runtime.proxy import QoSProxy


@dataclass(frozen=True)
class FragmentRequest:
    """Main proxy -> component host: price your component's edges."""

    session_id: str
    component: str
    demand_scale: float = 1.0


@dataclass(frozen=True)
class ComponentFragment:
    """Component host -> main proxy: the locally priced QRG fragment."""

    session_id: str
    component: str
    proxy_host: str
    edges: Tuple[IntraEdge, ...]
    observations: Mapping[str, ResourceObservation]


class ComponentHost(QoSProxy):
    """A QoSProxy that also stores the definitions of local components."""

    def __init__(self, host: str, registry: BrokerRegistry) -> None:
        super().__init__(host, registry)
        self._components: Dict[str, ServiceComponent] = {}

    def store_component(self, component: ServiceComponent) -> None:
        """Store a component definition at this proxy (§3, distributed)."""
        if component.name in self._components:
            raise ModelError(
                f"proxy {self.host!r} already stores component {component.name!r}"
            )
        self._components[component.name] = component

    def stored_components(self) -> Tuple[str, ...]:
        """Names of the components stored at this proxy, sorted."""
        return tuple(sorted(self._components))

    def price_fragment(
        self,
        request: FragmentRequest,
        binding: Binding,
        *,
        observed_at: Optional[Callable[[str], Optional[float]]] = None,
        contention_index=None,
    ) -> ComponentFragment:
        """Compute the component's feasible edges from local observations."""
        try:
            component = self._components[request.component]
        except KeyError:
            raise ModelError(
                f"proxy {self.host!r} does not store component {request.component!r}"
            ) from None
        if request.demand_scale != 1.0:
            component = component.with_translation(
                ScaledTranslation(component.translation, request.demand_scale)
            )
        # Observe exactly the resources this component's slots bind to.
        resource_ids = sorted(
            {binding.resource_id(component.name, slot) for slot in component.slots()}
        )
        observations: Dict[str, ResourceObservation] = {}
        for resource_id in resource_ids:
            broker = self.registry.broker(resource_id)
            when = observed_at(resource_id) if observed_at is not None else None
            observations[resource_id] = (
                broker.observe() if when is None else broker.observe_stale(when)
            )
        snapshot = AvailabilitySnapshot(observations)
        kwargs = {} if contention_index is None else {"contention_index": contention_index}
        edges = price_component_edges(component, binding, snapshot, **kwargs)
        return ComponentFragment(
            session_id=request.session_id,
            component=component.name,
            proxy_host=self.host,
            edges=tuple(edges),
            observations=observations,
        )


class DistributedCoordinator:
    """Session establishment with per-host component definitions.

    ``structure_store`` holds the service-level structure (graph +
    ranking + level declarations); the per-component translation
    functions live only in the :class:`ComponentHost` proxies.
    """

    def __init__(
        self,
        registry: BrokerRegistry,
        structure_store: ModelStore,
        proxies: Mapping[str, ComponentHost],
    ) -> None:
        self.registry = registry
        self.structure_store = structure_store
        self.proxies: Dict[str, ComponentHost] = dict(proxies)

    def host_of_component(self, component: str) -> ComponentHost:
        """The proxy storing ``component``; raises if none does."""
        for proxy in self.proxies.values():
            if component in proxy.stored_components():
                return proxy
        raise ModelError(f"no proxy stores component {component!r}")

    def establish(
        self,
        session_id: str,
        service_name: str,
        binding: Binding,
        planner,
        *,
        source_label: Optional[str] = None,
        demand_scale: float = 1.0,
        observed_at: Optional[ObservationSchedule] = None,
        contention_index=None,
    ) -> EstablishmentResult:
        """Run the establishment phases for one session."""
        service = self.structure_store.service(service_name)

        # Phase 1+2a: gather locally priced fragments.
        fragments: List[ComponentFragment] = []
        observations: Dict[str, ResourceObservation] = {}
        for component in service.components:
            proxy = self.host_of_component(component.name)
            fragment = proxy.price_fragment(
                FragmentRequest(session_id, component.name, demand_scale),
                binding,
                observed_at=observed_at,
                contention_index=contention_index,
            )
            fragments.append(fragment)
            observations.update(fragment.observations)

        # Phase 2b: stitch and plan at the main proxy.
        snapshot = AvailabilitySnapshot(observations)
        try:
            source_level = resolve_source_level(service, source_label)
        except PlanningError as exc:
            return EstablishmentResult(session_id, False, None, reason=f"qrg: {exc}")
        intra_edges = [edge for fragment in fragments for edge in fragment.edges]
        qrg = assemble_qrg(service, source_level, intra_edges, snapshot)
        plan = planner.plan(qrg)
        if plan is None:
            return EstablishmentResult(session_id, False, None, reason="no_feasible_plan")

        # Phase 3: dispatch per-host segments (resource owner = the proxy
        # that priced the fragment touching it).
        demands_by_host: Dict[str, Dict[str, float]] = {}
        demand = plan.demand
        for fragment in fragments:
            for resource_id in fragment.observations:
                if resource_id in demand:
                    demands_by_host.setdefault(fragment.proxy_host, {})[resource_id] = demand[
                        resource_id
                    ]
        applied: List[ComponentHost] = []
        try:
            for host in sorted(demands_by_host):
                proxy = self.proxies[host]
                segment = PlanSegment(
                    session_id=session_id, proxy_host=host, demands=demands_by_host[host]
                )
                self._apply_segment(proxy, segment)
                applied.append(proxy)
        except AdmissionError as exc:
            for proxy in applied:
                proxy.release_session(session_id)
            return EstablishmentResult(
                session_id, False, plan, reason="admission_failed",
                failed_resource=exc.resource_id,
            )
        return EstablishmentResult(session_id, True, plan)

    def _apply_segment(self, proxy: ComponentHost, segment: PlanSegment) -> None:
        """Reserve a segment directly (ownership is implied by pricing)."""
        made = []
        try:
            for resource_id in sorted(segment.demands):
                broker = self.registry.broker(resource_id)
                made.append(broker.reserve(segment.demands[resource_id], segment.session_id))
        except AdmissionError:
            for reservation in reversed(made):
                self.registry.broker(reservation.resource_id).release(reservation)
            raise
        proxy._held.setdefault(segment.session_id, []).extend(made)

    def teardown(self, session_id: str) -> int:
        """Release everything every proxy holds for the session."""
        released = 0
        for proxy in self.proxies.values():
            released += proxy.release_session(session_id)
        return released
