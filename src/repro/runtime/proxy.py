"""Per-host QoSProxy (paper §3).

The QoSProxy coordinates the multi-resource reservation activities of
one end host: it owns references to the local Resource Brokers (and, on
the receiver side of a network path, the end-to-end path broker -- the
RSVP compatibility note of §3), answers availability queries, applies
dispatched plan segments, and starts the local service components once
the end-to-end reservation is complete.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.brokers.registry import AnyReservation, BrokerRegistry
from repro.core.errors import AdmissionError, BrokerError
from repro.core.resources import ResourceObservation
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.runtime.messages import AvailabilityReport, AvailabilityRequest, PlanSegment


class QoSProxy:
    """One host's reservation coordinator endpoint."""

    def __init__(self, host: str, registry: BrokerRegistry) -> None:
        if not host:
            raise BrokerError("proxy host name must be non-empty")
        self.host = host
        self.registry = registry
        self._owned: Set[str] = set()
        # session id -> reservations this proxy holds for it
        self._held: Dict[str, List[AnyReservation]] = {}
        self._started_components: Dict[str, List[str]] = {}

    # -- ownership --------------------------------------------------------

    def own(self, resource_id: str) -> None:
        """Declare that this proxy fronts the broker of ``resource_id``."""
        if resource_id not in self.registry:
            raise BrokerError(f"cannot own unregistered resource {resource_id!r}")
        self._owned.add(resource_id)

    def owns(self, resource_id: str) -> bool:
        """True when this proxy fronts the broker of ``resource_id``."""
        return resource_id in self._owned

    def owned_resources(self) -> Tuple[str, ...]:
        """Resource ids this proxy owns, sorted."""
        return tuple(sorted(self._owned))

    # -- phase 1: availability reporting -------------------------------------

    def report_availability(
        self,
        request: AvailabilityRequest,
        *,
        observed_at: Optional[Callable[[str], Optional[float]]] = None,
    ) -> AvailabilityReport:
        """Observe the requested *locally owned* resources.

        Unowned resource ids in the request are ignored -- the main proxy
        fans one request out to all participating proxies and merges the
        reports.
        """
        observations: Dict[str, ResourceObservation] = {}
        for resource_id in request.resource_ids:
            if resource_id not in self._owned:
                continue
            broker = self.registry.broker(resource_id)
            when = observed_at(resource_id) if observed_at is not None else None
            observations[resource_id] = (
                broker.observe() if when is None else broker.observe_stale(when)
            )
        return AvailabilityReport(
            session_id=request.session_id, proxy_host=self.host, observations=observations
        )

    # -- phase 3: plan segment execution ----------------------------------------

    def apply_segment(self, segment: PlanSegment) -> None:
        """Reserve the segment's demands on the local brokers.

        Atomic per segment: a failure rolls back the segment's own
        reservations and re-raises, letting the coordinator roll back the
        other proxies' segments.
        """
        made: List[AnyReservation] = []
        try:
            for resource_id in sorted(segment.demands):
                if resource_id not in self._owned:
                    raise BrokerError(
                        f"proxy {self.host!r} received a demand for unowned "
                        f"resource {resource_id!r}"
                    )
                broker = self.registry.broker(resource_id)
                made.append(broker.reserve(segment.demands[resource_id], segment.session_id))
        except AdmissionError as exc:
            for reservation in reversed(made):
                self.registry.broker(reservation.resource_id).release(reservation)
            registry = _metrics.active_registry()
            if registry is not None:
                registry.counter("proxy.segment_rejections", host=self.host).inc()
            log = _events.active_event_log()
            if log is not None:
                log.emit(
                    "proxy.segment_rejected",
                    session=segment.session_id,
                    resource=exc.resource_id,
                    host=self.host,
                    rolled_back=len(made),
                    demands=dict(segment.demands),
                )
            raise
        self._held.setdefault(segment.session_id, []).extend(made)
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("proxy.segments_applied", host=self.host).inc()
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "proxy.segment_applied",
                session=segment.session_id,
                host=self.host,
                reservations=len(made),
                demands=dict(segment.demands),
            )

    def release_session(self, session_id: str) -> int:
        """Release everything held for a session; returns count released.

        Idempotent: a second teardown (or a teardown racing the orphan
        reaper) finds nothing to release and returns 0.  A broker that
        already freed one of the reservations does not abort the loop --
        the remaining reservations are still released, so no partial
        broker state survives a double release.
        """
        reservations = self._held.pop(session_id, [])
        released = 0
        for reservation in reservations:
            try:
                self.registry.broker(reservation.resource_id).release(reservation)
            except BrokerError:
                continue
            released += 1
        self._started_components.pop(session_id, None)
        if released:
            registry = _metrics.active_registry()
            if registry is not None:
                registry.counter("proxy.reservations_released", host=self.host).inc(
                    released
                )
        return released

    def release_reservations(self, session_id: str, reservations) -> int:
        """Release specific reservations of a session (lease reaping).

        Used by the fault-tolerant coordinator's orphan reaper and its
        compensating releases: only the given reservations are freed and
        dropped from the session's held list, leaving any committed
        reservations of the same session in place.  Tolerant of
        reservations already released elsewhere; returns count released.
        """
        held = self._held.get(session_id)
        released = 0
        for reservation in reservations:
            if held is None:
                break
            matched = next((r for r in held if r is reservation), None)
            if matched is None:
                continue
            held.remove(matched)
            try:
                self.registry.broker(matched.resource_id).release(matched)
            except BrokerError:
                continue
            released += 1
        if held is not None and not held:
            self._held.pop(session_id, None)
        if released:
            registry = _metrics.active_registry()
            if registry is not None:
                registry.counter("proxy.reservations_released", host=self.host).inc(
                    released
                )
        return released

    def held_for(self, session_id: str) -> Tuple[AnyReservation, ...]:
        """Reservations this proxy currently holds for a session."""
        return tuple(self._held.get(session_id, ()))

    # -- component lifecycle ------------------------------------------------------

    def start_components(self, session_id: str, components: List[str]) -> None:
        """Record that local components were started for the session.

        In a real deployment this would exec the component processes;
        the simulation only tracks the fact for observability.
        """
        self._started_components[session_id] = list(components)

    def running_components(self, session_id: str) -> Tuple[str, ...]:
        """Components started locally for a session."""
        return tuple(self._started_components.get(session_id, ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QoSProxy {self.host} owns={sorted(self._owned)}>"
