"""QoS-Resource Model definition store (paper §3, centralised approach).

The model definition of a service (components, levels, translation
functions, ranking) is stored at the main QoSProxy of the service and
consulted when computing end-to-end reservation plans.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.core.errors import ModelError
from repro.core.service import DistributedService


class ModelStore:
    """Named registry of service definitions held by a main QoSProxy."""

    def __init__(self) -> None:
        self._services: Dict[str, DistributedService] = {}

    def register(self, service: DistributedService) -> None:
        """Register one entry; duplicate registration raises."""
        if service.name in self._services:
            raise ModelError(f"service {service.name!r} already registered")
        self._services[service.name] = service

    def service(self, name: str) -> DistributedService:
        """Look up a stored service definition by name; raises if unknown."""
        try:
            return self._services[name]
        except KeyError:
            raise ModelError(f"no QoS-Resource Model stored for service {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def names(self) -> Tuple[str, ...]:
        """Sorted names of all stored entries."""
        return tuple(sorted(self._services))

    def register_all(self, services: Iterable[DistributedService]) -> None:
        """Register several entries in order."""
        for service in services:
            self.register(service)
