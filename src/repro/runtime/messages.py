"""Message types exchanged between QoSProxies (paper §4.2).

The three-phase protocol is: (1) participating proxies report current
resource availability to the main proxy, (2) the main proxy runs the
planning algorithm locally, (3) the main proxy dispatches the plan
segments.  These dataclasses are the protocol's vocabulary; in the
simulation they travel as function arguments (optionally delayed by the
coordinator's latency model), but keeping them explicit documents the
wire protocol a real deployment would need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.core.component import Binding
from repro.core.resources import ResourceObservation


@dataclass(frozen=True)
class AvailabilityRequest:
    """Phase 1 query: which resources the main proxy needs observed."""

    session_id: str
    resource_ids: Tuple[str, ...]


@dataclass(frozen=True)
class SessionRequest:
    """One arrival of a batched establishment (§4.2 under load).

    The per-session arguments of
    :meth:`~repro.runtime.coordinator.ReservationCoordinator.establish`,
    reified so N concurrent arrivals can be admitted against one
    availability snapshot
    (:meth:`~repro.runtime.coordinator.ReservationCoordinator.establish_batch`).
    """

    session_id: str
    service_name: str
    binding: Binding
    component_hosts: Optional[Mapping[str, str]] = None
    source_label: Optional[str] = None
    demand_scale: float = 1.0


@dataclass(frozen=True)
class AvailabilityReport:
    """Phase 1 reply: one proxy's local observations."""

    session_id: str
    proxy_host: str
    observations: Mapping[str, ResourceObservation]


@dataclass(frozen=True)
class PlanSegment:
    """Phase 3 dispatch: the per-host slice of the end-to-end plan.

    ``demands`` maps each of the receiving proxy's resource ids to the
    amount to reserve for the session.
    """

    session_id: str
    proxy_host: str
    demands: Mapping[str, float]


@dataclass(frozen=True)
class ReleaseOrder:
    """Tear-down: release everything the session holds on this proxy."""

    session_id: str
    proxy_host: str
