"""Service-session lifecycle on the DES engine.

A session is one client's request for a distributed service: establish
the end-to-end multi-resource reservation, hold it for the session's
duration, then terminate it (releasing every reserved resource).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.core.component import Binding
from repro.core.errors import ReproError
from repro.core.plan import ReservationPlan
from repro.des.engine import Environment
from repro.runtime.coordinator import EstablishmentResult, ReservationCoordinator


@dataclass(frozen=True)
class SessionOutcome:
    """The record a finished (or rejected) session leaves behind."""

    session_id: str
    service: str
    arrived_at: float
    success: bool
    qos_level: Optional[int]
    plan: Optional[ReservationPlan]
    reason: str
    duration: float
    demand_scale: float
    ended_at: Optional[float] = None
    failed_resource: Optional[str] = None

    @property
    def fat(self) -> bool:
        """Evaluation terminology (§5.1): requirement scaled up."""
        return self.demand_scale > 1.0


class ServiceSession:
    """Drives one session: establish -> hold -> release.

    Create it, then hand :meth:`run` to ``env.process``.  The finished
    process's value is the :class:`SessionOutcome`.
    """

    def __init__(
        self,
        env: Environment,
        coordinator: ReservationCoordinator,
        session_id: str,
        service_name: str,
        binding: Binding,
        planner,
        duration: float,
        *,
        demand_scale: float = 1.0,
        component_hosts: Optional[Mapping[str, str]] = None,
        source_label: Optional[str] = None,
        observed_at: Optional[Callable[[str], Optional[float]]] = None,
        latency: float = 0.0,
        contention_index=None,
        on_finish: Optional[Callable[[SessionOutcome], None]] = None,
    ) -> None:
        if duration <= 0:
            raise ReproError(f"session duration must be positive, got {duration!r}")
        self.env = env
        self.coordinator = coordinator
        self.session_id = session_id
        self.service_name = service_name
        self.binding = binding
        self.planner = planner
        self.duration = float(duration)
        self.demand_scale = float(demand_scale)
        self.component_hosts = component_hosts
        self.source_label = source_label
        self.observed_at = observed_at
        self.latency = float(latency)
        self.contention_index = contention_index
        self.on_finish = on_finish

    def run(self):
        """The session's DES process body (a generator)."""
        arrived_at = self.env.now
        if self.latency:
            result: EstablishmentResult = yield from self.coordinator.establish_process(
                self.env,
                self.latency,
                self.session_id,
                self.service_name,
                self.binding,
                self.planner,
                component_hosts=self.component_hosts,
                source_label=self.source_label,
                demand_scale=self.demand_scale,
                observed_at=self.observed_at,
                contention_index=self.contention_index,
            )
        else:
            result = self.coordinator.establish(
                self.session_id,
                self.service_name,
                self.binding,
                self.planner,
                component_hosts=self.component_hosts,
                source_label=self.source_label,
                demand_scale=self.demand_scale,
                observed_at=self.observed_at,
                contention_index=self.contention_index,
            )
        if not result.success:
            outcome = SessionOutcome(
                session_id=self.session_id,
                service=self.service_name,
                arrived_at=arrived_at,
                success=False,
                qos_level=None,
                plan=result.plan,
                reason=result.reason,
                duration=self.duration,
                demand_scale=self.demand_scale,
                ended_at=self.env.now,
                failed_resource=result.failed_resource,
            )
            if self.on_finish:
                self.on_finish(outcome)
            return outcome

        yield self.env.timeout(self.duration)
        self.coordinator.teardown(self.session_id)
        outcome = SessionOutcome(
            session_id=self.session_id,
            service=self.service_name,
            arrived_at=arrived_at,
            success=True,
            qos_level=result.qos_level,
            plan=result.plan,
            reason="completed",
            duration=self.duration,
            demand_scale=self.demand_scale,
            ended_at=self.env.now,
        )
        if self.on_finish:
            self.on_finish(outcome)
        return outcome
