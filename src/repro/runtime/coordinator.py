"""The main QoSProxy's coordination logic (paper §4.2).

Three phases per session:

1. participating QoSProxies report current availability of the session's
   bound resources;
2. the main proxy computes the end-to-end reservation plan locally
   (any :class:`~repro.core.planner.Planner`);
3. the main proxy dispatches per-host plan segments, which the proxies
   apply to their brokers; a segment failure rolls everything back.

With accurate observations and atomic establishment (the default, as in
§5.2.1-5.2.3) phase 3 can only fail if two plan edges share a resource
in a way planning treated independently; with the staleness model of
§5.2.4 (``observed_at``) phase 3 admission failures become the norm
under contention.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.brokers.registry import BrokerRegistry
from repro.core.component import Binding
from repro.core.errors import AdmissionError, BrokerError, PlanningError
from repro.core.plan import ReservationPlan
from repro.core.planner import BatchPlanMemo
from repro.core.qrg import QRGSkeletonCache, price_skeleton
from repro.core.resources import AvailabilitySnapshot, ResourceObservation
from repro.core.translation import ScaledTranslation
from repro.obs import context as _context
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.runtime.messages import AvailabilityRequest, PlanSegment, SessionRequest
from repro.runtime.model_store import ModelStore
from repro.runtime.proxy import QoSProxy

#: Maps a resource id to the past instant it should be observed at
#: (None = now) -- the §5.2.4 observation-inaccuracy hook.
ObservationSchedule = Callable[[str], Optional[float]]


@dataclass(frozen=True)
class EstablishmentResult:
    """Outcome of one session-establishment attempt."""

    session_id: str
    success: bool
    plan: Optional[ReservationPlan]
    reason: str = ""
    failed_resource: Optional[str] = None

    @property
    def qos_level(self) -> Optional[int]:
        """Numeric end-to-end QoS level of the plan (None on failure)."""
        return self.plan.numeric_level if (self.success and self.plan) else None


@dataclass(frozen=True)
class RenegotiationResult:
    """Outcome of one §5 adaptive renegotiation of a live session.

    ``outcome`` classifies what the session ended up with relative to
    what it held before: ``upgraded`` / ``downgraded`` / ``unchanged``
    (fresh plan admitted; levels are paper-style numeric, higher is
    better), ``failed_restored`` (no new plan admissible, the original
    reservations were put back), ``failed_dropped`` (neither -- the
    session lost its reservations), or ``unknown_session`` (nothing was
    held to renegotiate).
    """

    session_id: str
    outcome: str
    result: EstablishmentResult
    previous_level: Optional[int] = None
    new_level: Optional[int] = None
    restored: bool = False

    @property
    def success(self) -> bool:
        """True when the renegotiated establishment was admitted."""
        return self.result.success


class ReservationCoordinator:
    """Executes the three-phase establishment protocol."""

    def __init__(
        self,
        registry: BrokerRegistry,
        model_store: ModelStore,
        proxies: Mapping[str, QoSProxy],
    ) -> None:
        self.registry = registry
        self.model_store = model_store
        self.proxies: Dict[str, QoSProxy] = dict(proxies)
        self._owner_cache: Dict[str, QoSProxy] = {}
        #: Availability-independent QRG skeletons, shared across sessions.
        self.qrg_skeletons = QRGSkeletonCache()
        self._scaled_services: Dict[Tuple[str, float], object] = {}
        #: Sessions currently inside :meth:`teardown`.  Their release
        #: events reach live monitor subscribers synchronously, and a
        #: drift-triggered renegotiation of the dying session itself
        #: would re-reserve on proxies the teardown loop already passed.
        self._tearing_down: set = set()

    # -- ownership ------------------------------------------------------------

    def proxy_for(self, resource_id: str) -> QoSProxy:
        """The QoSProxy owning ``resource_id``; raises if unowned."""
        proxy = self._owner_cache.get(resource_id)
        if proxy is not None:
            return proxy
        for candidate in self.proxies.values():
            if candidate.owns(resource_id):
                self._owner_cache[resource_id] = candidate
                return candidate
        raise BrokerError(f"no QoSProxy owns resource {resource_id!r}")

    # -- establishment ------------------------------------------------------------

    def establish(
        self,
        session_id: str,
        service_name: str,
        binding: Binding,
        planner,
        *,
        component_hosts: Optional[Mapping[str, str]] = None,
        source_label: Optional[str] = None,
        demand_scale: float = 1.0,
        observed_at: Optional[ObservationSchedule] = None,
        contention_index=None,
        snapshot: Optional[AvailabilitySnapshot] = None,
    ) -> EstablishmentResult:
        """Run the three phases atomically (no simulated latency).

        ``demand_scale`` scales every translation-function requirement
        (the evaluation's "fat" sessions, §5.1).  ``snapshot`` replaces
        phase 1 with an already-collected availability snapshot (it must
        cover the binding's resources); this is the sequential reference
        point that :meth:`establish_batch` is byte-identical to.
        """
        return self._with_establish_accounting(
            session_id,
            service_name,
            lambda: self._establish(
                session_id,
                service_name,
                binding,
                planner,
                component_hosts=component_hosts,
                source_label=source_label,
                demand_scale=demand_scale,
                observed_at=observed_at,
                contention_index=contention_index,
                snapshot=snapshot,
            ),
        )

    def plan_session(
        self,
        session_id: str,
        service_name: str,
        binding: Binding,
        planner,
        snapshot: AvailabilitySnapshot,
        *,
        source_label: Optional[str] = None,
        demand_scale: float = 1.0,
        contention_index=None,
    ):
        """Phase 2 alone: price and plan against an external snapshot.

        The cluster router collects availability from the owning shard
        daemons itself (phase 1 happens over the wire) and then needs
        exactly the paper's local plan computation -- no reservations
        are made here and no phase-3 events fire.  Returns the same
        ``(plan, None)`` / ``(None, EstablishmentResult)`` pair as the
        internal phase-2 helper.
        """
        service = self._service_at_scale(service_name, demand_scale)
        observed_instant = max(
            (obs.observed_at for obs in snapshot.values()
             if obs.observed_at is not None),
            default=None,
        )
        return self._phase2_plan(
            session_id,
            service,
            service_name,
            binding,
            planner,
            snapshot,
            observed_instant,
            source_label=source_label,
            demand_scale=demand_scale,
            contention_index=contention_index,
        )

    def _with_establish_accounting(
        self,
        session_id: str,
        service_name: str,
        compute: Callable[[], EstablishmentResult],
    ) -> EstablishmentResult:
        """The per-session span/counter/histogram bracket of :meth:`establish`.

        Shared verbatim by :meth:`establish_batch` so each batched
        arrival is accounted exactly like a sequential one.  When a
        request-scoped trace context is bound (daemon admissions), the
        span carries the caller's request id; the coordinator never
        *creates* contexts, so simulation runs stay byte-identical.
        """
        registry = _metrics.active_registry()
        started = _time.perf_counter() if registry is not None else 0.0
        with _trace.span("establish", session=session_id, service=service_name) as span:
            context = _context.current_trace_context()
            if context is not None and context.request_id is not None:
                span.set(request=context.request_id)
            result = compute()
            span.set(outcome="established" if result.success else result.reason)
            if registry is not None:
                outcome = "established" if result.success else result.reason
                registry.counter("coordinator.establish", outcome=outcome).inc()
                if result.failed_resource is not None:
                    registry.counter(
                        "coordinator.admission_failures", resource=result.failed_resource
                    ).inc()
                registry.histogram("coordinator.establish_seconds").observe(
                    _time.perf_counter() - started
                )
            return result

    def _collect_snapshot(
        self,
        session_id: str,
        resource_ids: Sequence[str],
        observed_at: Optional[ObservationSchedule],
    ) -> AvailabilitySnapshot:
        """Phase 1: collect availability from the owning proxies."""
        with _trace.span("phase1_availability", resources=len(resource_ids)):
            request = AvailabilityRequest(
                session_id=session_id, resource_ids=tuple(resource_ids)
            )
            observations: Dict[str, ResourceObservation] = {}
            for proxy in self._participating_proxies(resource_ids):
                report = proxy.report_availability(request, observed_at=observed_at)
                observations.update(report.observations)
            missing = set(resource_ids) - set(observations)
            if missing:
                raise BrokerError(f"no proxy reported resources {sorted(missing)}")
            return AvailabilitySnapshot(observations)

    def _establish(
        self,
        session_id: str,
        service_name: str,
        binding: Binding,
        planner,
        *,
        component_hosts: Optional[Mapping[str, str]] = None,
        source_label: Optional[str] = None,
        demand_scale: float = 1.0,
        observed_at: Optional[ObservationSchedule] = None,
        contention_index=None,
        snapshot: Optional[AvailabilitySnapshot] = None,
    ) -> EstablishmentResult:
        """The three phases themselves (timing/accounting in :meth:`establish`)."""
        service = self._service_at_scale(service_name, demand_scale)

        if snapshot is None:
            resource_ids = sorted(binding.resource_ids())
            snapshot = self._collect_snapshot(session_id, resource_ids, observed_at)
        # The causal log timestamps session events with the instant the
        # availability snapshot describes (== env.now for fresh probes).
        observed_instant = max(
            (obs.observed_at for obs in snapshot.values()), default=None
        )

        # Phase 2: local plan computation at the main proxy.
        plan, failure = self._phase2_plan(
            session_id,
            service,
            service_name,
            binding,
            planner,
            snapshot,
            observed_instant,
            source_label=source_label,
            demand_scale=demand_scale,
            contention_index=contention_index,
        )
        if failure is not None:
            return failure

        return self._phase3_admit(
            session_id, service_name, plan, snapshot, observed_instant, component_hosts
        )

    def _phase3_admit(
        self,
        session_id: str,
        service_name: str,
        plan: ReservationPlan,
        observations: Mapping[str, ResourceObservation],
        observed_instant: Optional[float],
        component_hosts: Optional[Mapping[str, str]],
    ) -> EstablishmentResult:
        """Phase 3: dispatch plan segments to the owning proxies.

        A segment failure rolls back every applied segment; on success
        the session's components are started and the admission is
        recorded causally.
        """
        segments = self._segments(session_id, plan)
        with _trace.span("phase3_dispatch", segments=len(segments)) as dispatch_span:
            applied: List[QoSProxy] = []
            try:
                for proxy, segment in segments:
                    proxy.apply_segment(segment)
                    applied.append(proxy)
            except AdmissionError as exc:
                for proxy in applied:
                    proxy.release_session(session_id)
                dispatch_span.set(rolled_back=len(applied), failed_resource=exc.resource_id)
                self._emit_admission_rejected(
                    session_id, service_name, plan, observations, observed_instant,
                    exc.resource_id,
                )
                return EstablishmentResult(
                    session_id,
                    False,
                    plan,
                    reason="admission_failed",
                    failed_resource=exc.resource_id,
                )
        # Start the session's components on their hosts.
        self._start_components(session_id, component_hosts)
        self._emit_admitted(session_id, service_name, plan, observed_instant)
        return EstablishmentResult(session_id, True, plan)

    def _phase2_plan(
        self,
        session_id: str,
        service,
        service_name: str,
        binding: Binding,
        planner,
        snapshot: AvailabilitySnapshot,
        observed_instant: Optional[float],
        *,
        source_label: Optional[str],
        demand_scale: float,
        contention_index,
    ):
        """Phase 2 with its span and causal emissions, shared with the
        fault-tolerant coordinator.

        The QRG skeleton (nodes, equivalence edges, bound requirement
        vectors) depends only on (service, binding, demand_scale), so it
        comes from the cache; only feasibility filtering and psi pricing
        run against this session's snapshot.  Returns ``(plan, None)``
        on success and ``(None, EstablishmentResult)`` on failure.
        """
        with _trace.span("phase2_plan"):
            try:
                qrg = self._price_qrg(
                    service,
                    binding,
                    snapshot,
                    source_label=source_label,
                    demand_scale=demand_scale,
                    contention_index=contention_index,
                )
            except PlanningError as exc:
                return None, self._reject_unplannable(
                    session_id, service_name, snapshot, observed_instant, exc
                )
            return self._plan_priced(
                session_id, service_name, planner, qrg, snapshot, observed_instant
            )

    def _price_qrg(
        self,
        service,
        binding: Binding,
        snapshot: AvailabilitySnapshot,
        *,
        source_label: Optional[str],
        demand_scale: float,
        contention_index,
    ):
        """Skeleton lookup + per-snapshot pricing, under a qrg_build span."""
        kwargs = (
            {} if contention_index is None else {"contention_index": contention_index}
        )
        with _trace.span("qrg_build", service=service.name) as qrg_span:
            skeleton = self.qrg_skeletons.skeleton_for(
                service,
                binding,
                source_label=source_label,
                extra=(demand_scale,),
            )
            qrg = price_skeleton(skeleton, snapshot, **kwargs)
            qrg_span.set(nodes=qrg.count_nodes(), edges=qrg.count_edges())
        return qrg

    def _reject_unplannable(
        self,
        session_id: str,
        service_name: str,
        snapshot: AvailabilitySnapshot,
        observed_instant: Optional[float],
        exc: PlanningError,
    ) -> EstablishmentResult:
        """The causal record of a pricing failure (unbuildable QRG)."""
        log = _events.active_event_log()
        if log is not None:
            log.emit(
                "session.rejected",
                session=session_id,
                time=observed_instant,
                service=service_name,
                reason="qrg",
                detail=str(exc),
                available=snapshot.availability(),
            )
        return EstablishmentResult(session_id, False, None, reason=f"qrg: {exc}")

    def _plan_priced(
        self,
        session_id: str,
        service_name: str,
        planner,
        qrg,
        snapshot: AvailabilitySnapshot,
        observed_instant: Optional[float],
    ) -> Tuple[Optional[ReservationPlan], Optional[EstablishmentResult]]:
        """Run the planner on a priced QRG and emit the causal outcome."""
        log = _events.active_event_log()
        plan = planner.plan(qrg)
        if plan is None:
            if log is not None:
                log.emit(
                    "session.rejected",
                    session=session_id,
                    time=observed_instant,
                    service=service_name,
                    reason="no_feasible_plan",
                    available=snapshot.availability(),
                )
            return None, EstablishmentResult(
                session_id, False, None, reason="no_feasible_plan"
            )
        if log is not None:
            requested = dict(plan.demand)
            log.emit(
                "session.planned",
                session=session_id,
                time=observed_instant,
                service=service_name,
                level=plan.end_to_end_label,
                rank=plan.end_to_end_rank,
                psi=plan.psi,
                bottleneck=plan.bottleneck_resource,
                bottleneck_alpha=plan.bottleneck_alpha,
                requested=requested,
                available={r: snapshot[r].available for r in requested},
            )
        return plan, None

    # -- batched establishment (amortised planning hot path) -------------------

    @staticmethod
    def _group_key(request: SessionRequest) -> Tuple:
        """Requests with equal keys share one priced QRG within a batch."""
        return (
            request.service_name,
            request.demand_scale,
            request.source_label,
            QRGSkeletonCache.binding_key(request.binding),
        )

    def _collect_batch_snapshot(
        self,
        requests: Sequence[SessionRequest],
        observed_at: Optional[ObservationSchedule],
    ) -> AvailabilitySnapshot:
        """One phase-1 round covering the union of the batch's resources."""
        union = sorted(
            {rid for request in requests for rid in request.binding.resource_ids()}
        )
        return self._collect_snapshot(f"batch[{len(requests)}]", union, observed_at)

    def plan_batch(
        self,
        requests: Iterable[SessionRequest],
        planner,
        *,
        snapshot: Optional[AvailabilitySnapshot] = None,
        observed_at: Optional[ObservationSchedule] = None,
        contention_index=None,
    ) -> List[Optional[ReservationPlan]]:
        """Plan (without admitting) N arrivals against one snapshot.

        The batched planning hot path: phase 1 runs once over the union
        of the batch's bound resources (unless ``snapshot`` is given),
        each distinct (service, demand_scale, source_label, binding)
        group prices its QRG once, and deterministic planners plan each
        priced QRG once (:class:`~repro.core.planner.BatchPlanMemo`).

        Returns one entry per request, aligned: the plan, or ``None``
        when pricing failed or no feasible plan exists.  Planning-only
        -- no session events are emitted and nothing is reserved; use
        :meth:`establish_batch` for the full three-phase protocol.
        """
        requests = list(requests)
        with _trace.span("plan_batch", sessions=len(requests)) as span:
            if snapshot is None:
                snapshot = self._collect_batch_snapshot(requests, observed_at)
            memo = BatchPlanMemo(planner)
            priced: Dict[Tuple, object] = {}
            plans: List[Optional[ReservationPlan]] = []
            for request in requests:
                entry = self._price_group(request, priced, snapshot, contention_index)
                plans.append(
                    None if isinstance(entry, PlanningError) else memo.plan(entry)
                )
            span.set(groups=len(priced))
            return plans

    def establish_batch(
        self,
        requests: Iterable[SessionRequest],
        planner,
        *,
        snapshot: Optional[AvailabilitySnapshot] = None,
        observed_at: Optional[ObservationSchedule] = None,
        contention_index=None,
    ) -> List[EstablishmentResult]:
        """Establish N concurrent arrivals against one availability snapshot.

        Byte-identical in results, causal events, and counters to the
        sequential reference loop

        .. code-block:: python

            shared = coordinator._collect_batch_snapshot(requests, observed_at)
            [coordinator.establish(r.session_id, r.service_name, r.binding,
                                   planner, ..., snapshot=shared)
             for r in requests]

        but prices each distinct request group's QRG once and (for
        deterministic planners) runs the planner once per group,
        replaying the planner's causal events per session.  Sessions are
        admitted in request order, each seeing the reservations of the
        ones before it -- exactly like the sequential loop.
        """
        requests = list(requests)
        if not requests:
            return []
        if snapshot is None:
            snapshot = self._collect_batch_snapshot(requests, observed_at)
        observed_instant = max(
            (obs.observed_at for obs in snapshot.values()), default=None
        )
        memo = BatchPlanMemo(planner)
        priced: Dict[Tuple, object] = {}
        return [
            self._with_establish_accounting(
                request.session_id,
                request.service_name,
                lambda request=request: self._establish_batched(
                    request, memo, priced, snapshot, observed_instant, contention_index
                ),
            )
            for request in requests
        ]

    def _price_group(
        self,
        request: SessionRequest,
        priced: Dict[Tuple, object],
        snapshot: AvailabilitySnapshot,
        contention_index,
    ):
        """The request group's priced QRG (or its PlanningError), memoised.

        First encounter prices under a qrg_build span; later sessions in
        the same group reuse the object (the memoisation
        :class:`~repro.core.planner.BatchPlanMemo` keys on).
        """
        key = self._group_key(request)
        entry = priced.get(key)
        if entry is None:
            service = self._service_at_scale(request.service_name, request.demand_scale)
            try:
                entry = self._price_qrg(
                    service,
                    request.binding,
                    snapshot,
                    source_label=request.source_label,
                    demand_scale=request.demand_scale,
                    contention_index=contention_index,
                )
            except PlanningError as exc:
                entry = exc
            priced[key] = entry
        return entry

    def _establish_batched(
        self,
        request: SessionRequest,
        memo: BatchPlanMemo,
        priced: Dict[Tuple, object],
        snapshot: AvailabilitySnapshot,
        observed_instant: Optional[float],
        contention_index,
    ) -> EstablishmentResult:
        """One batched arrival: shared phase 2, per-session phase 3."""
        with _trace.span("phase2_plan"):
            entry = self._price_group(request, priced, snapshot, contention_index)
            if isinstance(entry, PlanningError):
                return self._reject_unplannable(
                    request.session_id,
                    request.service_name,
                    snapshot,
                    observed_instant,
                    entry,
                )
            plan, failure = self._plan_priced(
                request.session_id,
                request.service_name,
                memo,
                entry,
                snapshot,
                observed_instant,
            )
        if failure is not None:
            return failure
        return self._phase3_admit(
            request.session_id,
            request.service_name,
            plan,
            snapshot,
            observed_instant,
            request.component_hosts,
        )

    def _emit_admission_rejected(
        self,
        session_id: str,
        service_name: str,
        plan: ReservationPlan,
        observations: Mapping[str, ResourceObservation],
        observed_instant: Optional[float],
        resource_id: Optional[str],
    ) -> None:
        """The causal record of a phase-3 admission failure."""
        log = _events.active_event_log()
        if log is not None:
            requested = dict(plan.demand)
            log.emit(
                "session.rejected",
                session=session_id,
                resource=resource_id,
                time=observed_instant,
                service=service_name,
                reason="admission_failed",
                psi=plan.psi,
                requested=requested,
                available={r: observations[r].available for r in requested},
            )

    def _start_components(
        self, session_id: str, component_hosts: Optional[Mapping[str, str]]
    ) -> None:
        """Start the admitted session's components on their hosts."""
        if not component_hosts:
            return
        by_host: Dict[str, List[str]] = {}
        for component, host in component_hosts.items():
            by_host.setdefault(host, []).append(component)
        for host, components in by_host.items():
            proxy = self.proxies.get(host)
            if proxy is not None:
                proxy.start_components(session_id, sorted(components))

    def _emit_admitted(
        self,
        session_id: str,
        service_name: str,
        plan: ReservationPlan,
        observed_instant: Optional[float],
    ) -> None:
        """The causal records of a successful establishment."""
        log = _events.active_event_log()
        if log is None:
            return
        log.emit(
            "session.admitted",
            session=session_id,
            time=observed_instant,
            service=service_name,
            level=plan.end_to_end_label,
            rank=plan.end_to_end_rank,
            numeric_level=plan.numeric_level,
            psi=plan.psi,
            bottleneck=plan.bottleneck_resource,
        )
        if plan.end_to_end_rank > 0:
            # Admitted below the service's top end-to-end level: the
            # degradation the trade-off policy exchanges for success
            # rate.  Recorded as its own causal event so "why was this
            # session downgraded" is answerable from the exported log.
            log.emit(
                "session.degraded",
                session=session_id,
                time=observed_instant,
                service=service_name,
                level=plan.end_to_end_label,
                rank=plan.end_to_end_rank,
                psi=plan.psi,
                bottleneck=plan.bottleneck_resource,
            )

    def establish_process(self, env, latency: float, /, *args, **kwargs):
        """Generator flavour of :meth:`establish` with protocol latency.

        Models §4.2's overhead: one message round trip between the
        participating proxies and the main proxy (phase 1+3) plus local
        computation.  The availability snapshot is taken *before* the
        latency elapses, so concurrent sessions race exactly as §5.2.4
        describes.  Yields DES timeouts; returns the result.
        """
        if latency < 0:
            raise ValueError(f"negative latency: {latency!r}")
        # Phase 1 round-trip happens first; observations are as of now.
        now = env.now
        schedule = kwargs.pop("observed_at", None)

        def frozen_schedule(resource_id: str) -> Optional[float]:
            """Observation schedule pinned to the request instant."""
            base = schedule(resource_id) if schedule is not None else None
            return now if base is None else base

        if latency:
            yield env.timeout(latency)
        return self.establish(*args, observed_at=frozen_schedule, **kwargs)

    # -- adaptive renegotiation (§5 / §4.3) ------------------------------------

    def renegotiate(
        self,
        session_id: str,
        service_name: str,
        binding: Binding,
        planner,
        *,
        component_hosts: Optional[Mapping[str, str]] = None,
        source_label: Optional[str] = None,
        demand_scale: float = 1.0,
        observed_at: Optional[ObservationSchedule] = None,
        contention_index=None,
        trigger: str = "drift",
        previous_level: Optional[int] = None,
        now: Optional[float] = None,
    ) -> RenegotiationResult:
        """Re-plan a *live* session against current availability.

        The §5 adaptation loop: release what the session holds, run the
        three-phase establishment again with fresh observations (the
        §4.3 downgrade/upgrade path picks whatever end-to-end level is
        now feasible), and emit one ``session.renegotiated`` causal
        record.  When the fresh establishment is rejected, the original
        reservations are restored (best effort -- if a competing session
        won the race for the freed capacity, the session is dropped).

        ``trigger`` names what asked for the renegotiation (``drift``,
        ``slo:<name>``, ...); ``previous_level`` is the numeric level
        the session held, used to classify the outcome; ``now`` is the
        simulation clock to stamp on the causal record.
        """
        with _trace.span("renegotiate", session=session_id, trigger=trigger) as span:
            if session_id in self._tearing_down:
                span.set(outcome="torn_down")
                result = EstablishmentResult(
                    session_id, False, None, reason="torn_down"
                )
                return RenegotiationResult(
                    session_id, "torn_down", result, previous_level=previous_level
                )
            # Snapshot what the session holds, per proxy host, so the
            # reservation can be put back if re-planning fails.
            held: Dict[str, Dict[str, float]] = {}
            for host in sorted(self.proxies):
                demands: Dict[str, float] = {}
                for reservation in self.proxies[host].held_for(session_id):
                    demands[reservation.resource_id] = (
                        demands.get(reservation.resource_id, 0.0) + reservation.amount
                    )
                if demands:
                    held[host] = demands
            if not held:
                span.set(outcome="unknown_session")
                result = EstablishmentResult(
                    session_id, False, None, reason="unknown_session"
                )
                return RenegotiationResult(
                    session_id, "unknown_session", result, previous_level=previous_level
                )
            for host in held:
                self.proxies[host].release_session(session_id)

            result = self.establish(
                session_id,
                service_name,
                binding,
                planner,
                component_hosts=component_hosts,
                source_label=source_label,
                demand_scale=demand_scale,
                observed_at=observed_at,
                contention_index=contention_index,
            )
            restored = False
            new_level = result.qos_level
            if result.success:
                if previous_level is None or new_level == previous_level:
                    outcome = "unchanged"
                elif new_level is not None and new_level > previous_level:
                    outcome = "upgraded"
                else:
                    outcome = "downgraded"
            else:
                restored = self._restore_reservations(session_id, held)
                if restored:
                    self._start_components(session_id, component_hosts)
                    new_level = previous_level
                outcome = "failed_restored" if restored else "failed_dropped"
            span.set(outcome=outcome)

            registry = _metrics.active_registry()
            if registry is not None:
                registry.counter("monitor.renegotiations", outcome=outcome).inc()
            log = _events.active_event_log()
            if log is not None:
                log.emit(
                    "session.renegotiated",
                    session=session_id,
                    time=now,
                    service=service_name,
                    trigger=trigger,
                    outcome=outcome,
                    previous_level=previous_level,
                    new_level=new_level,
                    restored=restored,
                )
            return RenegotiationResult(
                session_id,
                outcome,
                result,
                previous_level=previous_level,
                new_level=new_level,
                restored=restored,
            )

    def _restore_reservations(
        self, session_id: str, held: Mapping[str, Mapping[str, float]]
    ) -> bool:
        """Best-effort re-application of a released reservation snapshot.

        Returns True when every host's demands were re-admitted; on any
        admission failure the partial restore is rolled back (the session
        ends up holding nothing) and False is returned.
        """
        applied: List[QoSProxy] = []
        try:
            for host in sorted(held):
                proxy = self.proxies[host]
                proxy.apply_segment(
                    PlanSegment(
                        session_id=session_id,
                        proxy_host=host,
                        demands=dict(held[host]),
                    )
                )
                applied.append(proxy)
        except AdmissionError:
            for proxy in applied:
                proxy.release_session(session_id)
            return False
        return True

    # -- tear-down -------------------------------------------------------------

    def teardown(self, session_id: str) -> int:
        """Release everything every proxy holds for the session."""
        with _trace.span("teardown", session=session_id) as span:
            released = 0
            self._tearing_down.add(session_id)
            try:
                for proxy in self.proxies.values():
                    released += proxy.release_session(session_id)
            finally:
                self._tearing_down.discard(session_id)
            span.set(released=released)
            registry = _metrics.active_registry()
            if registry is not None:
                registry.counter("coordinator.teardowns").inc()
            return released

    # -- caching --------------------------------------------------------------

    def _service_at_scale(self, service_name: str, demand_scale: float):
        """The stored definition, requirement-scaled for "fat" sessions.

        Scaled variants are memoised per (name, factor): the evaluation
        uses a handful of discrete multipliers (§5.1's N in {2, 10}), so
        rebuilding the scaled component list per session is pure waste.
        """
        if demand_scale == 1.0:
            return self.model_store.service(service_name)
        key = (service_name, demand_scale)
        service = self._scaled_services.get(key)
        if service is None:
            service = _scaled_service(self.model_store.service(service_name), demand_scale)
            self._scaled_services[key] = service
        return service

    def invalidate_qrg_cache(self, service_name: Optional[str] = None) -> int:
        """Drop cached QRG skeletons (and scaled-service variants).

        The explicit invalidation hook: required whenever a service
        definition changes behind a name this coordinator has already
        planned for.  Returns the number of skeletons dropped.
        """
        if service_name is None:
            self._scaled_services.clear()
        else:
            for key in [k for k in self._scaled_services if k[0] == service_name]:
                del self._scaled_services[key]
        return self.qrg_skeletons.invalidate(service_name)

    def invalidate_qrg_cache_for_host(self, host: str) -> int:
        """Drop cached skeletons bound to resources the host's proxy owns.

        The per-host flavour of :meth:`invalidate_qrg_cache`: a failed
        (or decommissioned) host only stales the skeletons whose binding
        touches its resources, so every other service keeps its warm
        cache entry across the fault.  Returns the number dropped;
        unknown hosts drop nothing.
        """
        proxy = self.proxies.get(host)
        if proxy is None:
            return 0
        return self.qrg_skeletons.invalidate_resources(proxy.owned_resources())

    # -- helpers --------------------------------------------------------------

    def _participating_proxies(self, resource_ids) -> List[QoSProxy]:
        seen: Dict[str, QoSProxy] = {}
        for resource_id in resource_ids:
            proxy = self.proxy_for(resource_id)
            seen[proxy.host] = proxy
        return [seen[host] for host in sorted(seen)]

    def _segments(
        self, session_id: str, plan: ReservationPlan
    ) -> List[Tuple[QoSProxy, PlanSegment]]:
        demand = plan.demand
        per_proxy: Dict[str, Dict[str, float]] = {}
        for resource_id in demand:
            proxy = self.proxy_for(resource_id)
            per_proxy.setdefault(proxy.host, {})[resource_id] = demand[resource_id]
        segments: List[Tuple[QoSProxy, PlanSegment]] = []
        for host in sorted(per_proxy):
            segments.append(
                (
                    self.proxies[host],
                    PlanSegment(session_id=session_id, proxy_host=host, demands=per_proxy[host]),
                )
            )
        return segments


def _scaled_service(service, factor: float):
    """A copy of the service with every translation scaled by ``factor``."""
    from repro.core.service import DistributedService

    components = [
        component.with_translation(ScaledTranslation(component.translation, factor))
        for component in service.components
    ]
    return DistributedService(service.name, components, service.graph, service.ranking)


