"""Runtime system architecture (paper §3-4.2).

For each end host a :class:`~repro.runtime.proxy.QoSProxy` coordinates
the local Resource Brokers.  One proxy -- the *main QoSProxy* of the
service, which stores the QoS-Resource Model definition (centralised
approach, §3) -- acts as the
:class:`~repro.runtime.coordinator.ReservationCoordinator`: it collects
availability from the participating proxies, runs the planning
algorithm, and dispatches the plan segments back to the proxies'
brokers (the three phases of §4.2).

:class:`~repro.runtime.session.ServiceSession` drives one session's
lifecycle on the DES engine: establish -> hold -> release.
"""

from repro.runtime.coordinator import EstablishmentResult, ReservationCoordinator
from repro.runtime.distributed import (
    ComponentFragment,
    ComponentHost,
    DistributedCoordinator,
    FragmentRequest,
)
from repro.runtime.messages import (
    AvailabilityReport,
    AvailabilityRequest,
    PlanSegment,
    ReleaseOrder,
    SessionRequest,
)
from repro.runtime.model_store import ModelStore
from repro.runtime.proxy import QoSProxy
from repro.runtime.session import ServiceSession, SessionOutcome

__all__ = [
    "AvailabilityReport",
    "AvailabilityRequest",
    "ComponentFragment",
    "ComponentHost",
    "DistributedCoordinator",
    "EstablishmentResult",
    "FragmentRequest",
    "ModelStore",
    "PlanSegment",
    "QoSProxy",
    "ReleaseOrder",
    "ReservationCoordinator",
    "ServiceSession",
    "SessionOutcome",
    "SessionRequest",
]
