"""Machine-readable and Graphviz exports.

:func:`qrg_to_dot` regenerates the paper's figures 4-5: the QRG drawn
with components as clusters, intra edges labelled with their contention
indices, and (optionally) a plan's selected path highlighted -- figure 5
is exactly "figure 4 plus the thicker shortest-path edges".

:func:`plan_to_dict` / :func:`result_to_dict` serialise plans and
simulation results for external tooling (JSON-compatible dicts).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.plan import ReservationPlan
from repro.core.qrg import QoSResourceGraph, QRGNode


def _dot_id(node: QRGNode) -> str:
    return f'"{node.component}.{node.kind}.{node.label}"'


def qrg_to_dot(
    qrg: QoSResourceGraph,
    plan: Optional[ReservationPlan] = None,
    *,
    title: str = "QoS-Resource Graph",
) -> str:
    """Render the QRG as Graphviz DOT (figures 4-5 of the paper).

    With ``plan`` given, the plan's intra edges are drawn bold/red and
    its nodes filled -- the paper's "thicker edges" of figure 5.
    """
    selected_edges = set()
    selected_nodes = set()
    if plan is not None:
        for assignment in plan.assignments:
            src = QRGNode(assignment.component, "in", assignment.qin_label)
            dst = QRGNode(assignment.component, "out", assignment.qout_label)
            selected_edges.add((src, dst))
            selected_nodes.update((src, dst))

    lines = [
        "digraph QRG {",
        "  rankdir=LR;",
        f'  label="{title}";',
        "  node [shape=circle, fontsize=10];",
    ]
    # Component clusters (the dotted rectangles of figure 4).
    components: Dict[str, list] = {}
    for node in qrg.nodes:
        components.setdefault(node.component, []).append(node)
    for index, name in enumerate(qrg.service.graph.topological_order()):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{name}"; style=dotted;')
        for node in sorted(components.get(name, [])):
            style = ' style=filled fillcolor="#ffd9b3"' if node in selected_nodes else ""
            lines.append(f'    {_dot_id(node)} [label="{node.label}"{style}];')
        lines.append("  }")
    # Intra edges with contention-index labels.
    for edge in qrg.intra_edges:
        emphasis = (
            ' color="red" penwidth=2.5'
            if (edge.src, edge.dst) in selected_edges
            else ""
        )
        lines.append(
            f'  {_dot_id(edge.src)} -> {_dot_id(edge.dst)} '
            f'[label="{edge.weight:.3f}"{emphasis}];'
        )
    # Zero-weight equivalence edges, dashed.
    for eq in qrg.equiv_edges:
        both_selected = plan is not None and {eq.src, eq.dst} <= selected_nodes
        emphasis = ' color="red" penwidth=2.5' if both_selected else ""
        lines.append(f"  {_dot_id(eq.src)} -> {_dot_id(eq.dst)} [style=dashed{emphasis}];")
    lines.append("}")
    return "\n".join(lines)


def plan_to_dict(plan: ReservationPlan) -> dict:
    """JSON-compatible representation of a reservation plan."""
    return {
        "service": plan.service,
        "end_to_end_label": plan.end_to_end_label,
        "end_to_end_rank": plan.end_to_end_rank,
        "numeric_level": plan.numeric_level,
        "psi": plan.psi,
        "bottleneck_resource": plan.bottleneck_resource,
        "bottleneck_alpha": plan.bottleneck_alpha,
        "path_signature": list(plan.path_signature),
        "demand": dict(plan.demand),
        "assignments": [
            {
                "component": a.component,
                "qin": a.qin_label,
                "qout": a.qout_label,
                "bound": dict(a.bound),
                "weight": a.weight,
                "bottleneck_resource": a.bottleneck_resource,
            }
            for a in plan.assignments
        ],
    }


def result_to_dict(result) -> dict:
    """JSON-compatible summary of a SimulationResult."""
    metrics = result.metrics
    return {
        "algorithm": result.config.algorithm,
        "seed": result.config.seed,
        "rate_per_60tu": result.config.workload.rate_per_60tu,
        "horizon": result.config.workload.horizon,
        "staleness": result.config.staleness,
        "attempts": metrics.attempts,
        "successes": metrics.successes,
        "success_rate": metrics.success_rate,
        "avg_qos_level": metrics.avg_qos_level,
        "class_rows": [
            {"class": name, "success_rate": sr, "avg_qos": qos, "attempts": n}
            for name, sr, qos, n in metrics.class_rows
        ],
        "failure_reasons": dict(metrics.failure_reasons),
        "bottleneck_counts": dict(metrics.bottleneck_counts),
        "wall_seconds": result.wall_seconds,
    }
