"""Reproduction harness: formats and regenerates the paper's artifacts.

* :mod:`repro.analysis.figures` -- series containers, text tables, ASCII
  charts, CSV export;
* :mod:`repro.analysis.tables` -- paper-layout formatting of Tables 1-4;
* :mod:`repro.analysis.experiments` -- one runner per paper artifact
  (figures 11-13, Tables 1-4) plus the complexity and ablation studies;
* :mod:`repro.analysis.reproduce` -- the ``repro-reproduce`` CLI.
"""

from repro.analysis.export import plan_to_dict, qrg_to_dot, result_to_dict
from repro.analysis.figures import Series, ascii_chart, format_series_table, to_csv
from repro.analysis.experiments import (
    EXPERIMENTS,
    run_fig11,
    run_fig12,
    run_fig13,
    run_tables_1_2,
    run_tables_3_4,
)

__all__ = [
    "EXPERIMENTS",
    "Series",
    "ascii_chart",
    "format_series_table",
    "plan_to_dict",
    "qrg_to_dot",
    "result_to_dict",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_tables_1_2",
    "run_tables_3_4",
    "to_csv",
]
