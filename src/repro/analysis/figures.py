"""Series containers and text rendering for the figure reproductions.

The benches print the same x/y series the paper plots; these helpers
render them as aligned text tables, quick ASCII charts for terminal
inspection, and CSV for external plotting.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Series:
    """One plotted line: a name and aligned x/y values."""

    name: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: {len(self.x)} x-values vs {len(self.y)} y-values"
            )


def format_series_table(
    title: str,
    x_label: str,
    series: Sequence[Series],
    *,
    y_format: str = "{:.3f}",
    x_format: str = "{:g}",
) -> str:
    """Aligned text table: one row per x value, one column per series."""
    if not series:
        return f"{title}\n(no data)"
    xs = list(series[0].x)
    for s in series[1:]:
        if list(s.x) != xs:
            raise ValueError(f"series {s.name!r} has mismatched x values")
    headers = [x_label] + [s.name for s in series]
    rows = [
        [x_format.format(x)] + [y_format.format(s.y[i]) for s in series]
        for i, x in enumerate(xs)
    ]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rows)) for c in range(len(headers))
    ]
    out = io.StringIO()
    out.write(title + "\n")
    out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rows:
        out.write("  ".join(cell.rjust(w) for cell, w in zip(row, widths)) + "\n")
    return out.getvalue()


def ascii_chart(
    series: Sequence[Series],
    *,
    width: int = 64,
    height: int = 16,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """A rough ASCII line chart (one marker letter per series)."""
    if not series:
        return "(no data)"
    markers = "ox+*#@%&"
    all_x = [x for s in series for x in s.x]
    all_y = [y for s in series for y in s.y]
    lo_x, hi_x = min(all_x), max(all_x)
    lo_y = min(all_y) if y_min is None else y_min
    hi_y = max(all_y) if y_max is None else y_max
    if hi_y <= lo_y:
        hi_y = lo_y + 1.0
    if hi_x <= lo_x:
        hi_x = lo_x + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in zip(s.x, s.y):
            col = int(round((x - lo_x) / (hi_x - lo_x) * (width - 1)))
            row = int(round((y - lo_y) / (hi_y - lo_y) * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = [f"{hi_y:8.3f} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{lo_y:8.3f} |" + "".join(grid[-1]))
    lines.append(" " * 10 + "-" * width)
    lines.append(" " * 10 + f"{lo_x:<10g}{'':^{max(0, width - 20)}}{hi_x:>10g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def to_csv(series: Sequence[Series], x_label: str = "x") -> str:
    """CSV with one x column and one column per series."""
    if not series:
        return ""
    xs = list(series[0].x)
    out = io.StringIO()
    out.write(",".join([x_label] + [s.name for s in series]) + "\n")
    for i, x in enumerate(xs):
        out.write(",".join([repr(float(x))] + [repr(float(s.y[i])) for s in series]) + "\n")
    return out.getvalue()
