"""The ``repro-reproduce`` command line interface.

Usage::

    repro-reproduce --experiment fig11 --quick
    repro-reproduce --experiment all --seed 7 --out results/
    repro-reproduce --experiment fig11 --workers 4
    python -m repro.analysis.reproduce --list

Each experiment prints the same rows/series as the corresponding paper
artifact; ``--out`` additionally writes the text report (and CSV for
figure experiments) to files.  ``--workers N`` runs every sweep through
the parallel runner (byte-identical results, N-way process pool).
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys
from typing import List, Optional

from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.figures import to_csv
from repro.sim.experiment import parallel_sweeps


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-reproduce",
        description="Regenerate the paper's tables and figures from the simulator.",
    )
    parser.add_argument(
        "--experiment",
        "-e",
        action="append",
        dest="experiments",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (repeatable); 'all' runs everything",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed (default 0)")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced horizons/sweeps (minutes instead of tens of minutes)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None, help="directory to write reports/CSVs into"
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run sweeps on a process pool of this size (results are "
        "byte-identical to serial execution; default: serial, or "
        "REPRO_SWEEP_WORKERS from the environment)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    requested = args.experiments or ["all"]
    if "all" in requested:
        requested = sorted(EXPERIMENTS)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    runner_scope = (
        parallel_sweeps(args.workers) if args.workers else contextlib.nullcontext()
    )
    with runner_scope:
        for experiment_id in requested:
            runner = EXPERIMENTS[experiment_id]
            print(f"=== {experiment_id} (seed={args.seed}, quick={args.quick}) ===")
            report = runner(seed=args.seed, quick=args.quick)
            print(report.text)
            print()
            if args.out is not None:
                (args.out / f"{experiment_id}.txt").write_text(report.text)
                if report.series:
                    (args.out / f"{experiment_id}.csv").write_text(
                        to_csv(report.series, x_label="rate")
                    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
