"""Paper-layout formatting for Tables 1-4."""

from __future__ import annotations

import io
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.sim.experiment import SimulationResult
from repro.sim.metrics import PathCensus


def format_path_census_table(
    title: str,
    family_key: str,
    census_by_algorithm: Mapping[str, PathCensus],
    *,
    min_percent: float = 0.05,
) -> str:
    """Tables 1-2: selected reservation paths and their percentages.

    One row per path that any algorithm selected at least ``min_percent``
    percent of the time, one column per algorithm, ordered by the first
    algorithm's share (the paper lists the paths of figure 10 in level
    order; selection share is the readable ordering here).
    """
    signatures: Dict[str, float] = {}
    for census in census_by_algorithm.values():
        for signature, percent in census.percentages(family_key):
            signatures[signature] = max(signatures.get(signature, 0.0), percent)
    rows = [sig for sig, best in sorted(signatures.items(), key=lambda kv: -kv[1]) if best >= min_percent]
    algorithms = list(census_by_algorithm)
    out = io.StringIO()
    out.write(title + "\n")
    sig_width = max([len("Selected path")] + [len(sig) for sig in rows])
    header = "Selected path".ljust(sig_width) + "".join(f"  {a:>9s}" for a in algorithms)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for signature in rows:
        cells = "".join(
            f"  {census_by_algorithm[a].percentage_of(family_key, signature):8.1f}%"
            for a in algorithms
        )
        out.write(signature.ljust(sig_width) + cells + "\n")
    totals = "".join(
        f"  {census_by_algorithm[a].total(family_key):>8d} " for a in algorithms
    )
    out.write("(selections)".ljust(sig_width) + totals + "\n")
    return out.getvalue()


def format_class_table(
    title: str,
    results_by_rate: Mapping[float, SimulationResult],
) -> str:
    """Tables 3-4: per-class success rate / average QoS level, by rate."""
    rates = sorted(results_by_rate)
    class_names = [row[0] for row in next(iter(results_by_rate.values())).metrics.class_rows]
    out = io.StringIO()
    out.write(title + "\n")
    name_width = max(len("Class/gen. rate"), *(len(n) for n in class_names))
    header = "Class/gen. rate".ljust(name_width) + "".join(
        f"  {f'{rate:g} ssn.s/60 TUs':>18s}" for rate in rates
    )
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for class_name in class_names:
        cells = []
        for rate in rates:
            rows = {r[0]: (r[1], r[2]) for r in results_by_rate[rate].metrics.class_rows}
            success, qos = rows[class_name]
            cells.append(f"  {100 * success:7.1f}%/{qos:4.2f}     ")
        out.write(class_name.ljust(name_width) + "".join(cells) + "\n")
    return out.getvalue()


def format_summary_line(result: SimulationResult) -> str:
    """One-line run summary: algorithm, rate, sessions, success, QoS."""
    m = result.metrics
    return (
        f"algorithm={result.config.algorithm:9s} rate={result.config.workload.rate_per_60tu:g} "
        f"sessions={m.attempts} success={100 * m.success_rate:.1f}% "
        f"avg_qos={m.avg_qos_level:.2f} wall={result.wall_seconds:.1f}s"
    )
