"""One runner per paper artifact (the per-experiment index of DESIGN.md).

Every runner takes ``seed`` and ``quick`` and returns an
:class:`ExperimentReport` whose ``text`` is the same rows/series the
paper reports.  ``quick=True`` shrinks horizons and sweeps for CI and
benchmarks; ``quick=False`` reproduces the paper's full setup (10800 TU
horizon, generation rates 60..240).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.figures import Series, ascii_chart, format_series_table
from repro.analysis.tables import format_class_table, format_path_census_table
from repro.core.dagplan import ExhaustiveDagPlanner, TwoPassDagPlanner
from repro.core.planner import BasicPlanner
from repro.core.qrg import QRGSkeletonCache, build_qrg
from repro.core.synthetic import random_availability, synthetic_chain, synthetic_diamond_dag
from repro.sim.experiment import (
    SimulationConfig,
    SimulationResult,
    run_configs,
)
from repro.sim.workload import WorkloadSpec


@dataclass
class ExperimentReport:
    """A finished experiment: formatted text plus raw series/results."""

    experiment_id: str
    text: str
    series: List[Series] = field(default_factory=list)
    results: List[SimulationResult] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)


def finite_speedup(cold: float, warm: float) -> Optional[float]:
    """``cold / warm`` as a finite float, or None.

    A zero (timer-granularity) or negative warm time must not turn into
    an infinite speedup: ``float("inf")`` serializes as the non-standard
    ``Infinity`` token in JSON artifacts/ledgers downstream, which
    strict parsers reject.
    """
    if warm <= 0:
        return None
    speedup = cold / warm
    return speedup if np.isfinite(speedup) else None


def _rates(quick: bool) -> List[float]:
    return [60, 120, 180, 240] if quick else [60, 80, 100, 120, 140, 160, 180, 200, 220, 240]


def _horizon(quick: bool) -> float:
    return 1500.0 if quick else 10800.0


def _base_config(seed: int, quick: bool, **kw) -> SimulationConfig:
    return SimulationConfig(
        seed=seed, workload=WorkloadSpec(horizon=_horizon(quick)), **kw
    )


def _run_rate_sweep(
    base: SimulationConfig, algorithms: Sequence[str], rates: Sequence[float]
) -> Dict[str, List[SimulationResult]]:
    """One batch of ``len(algorithms) * len(rates)`` runs through the
    configured sweep runner (serial by default, parallel under
    ``REPRO_SWEEP_WORKERS`` or :func:`repro.sim.parallel_sweeps`)."""
    configs: List[SimulationConfig] = []
    for algorithm in algorithms:
        for rate in rates:
            configs.append(
                base.with_(
                    algorithm=algorithm,
                    workload=WorkloadSpec(
                        rate_per_60tu=rate, horizon=base.workload.horizon,
                        fat_weights=base.workload.fat_weights,
                    ),
                )
            )
    results = run_configs(configs)
    out: Dict[str, List[SimulationResult]] = {}
    for position, algorithm in enumerate(algorithms):
        out[algorithm] = results[position * len(rates) : (position + 1) * len(rates)]
    return out


# ---------------------------------------------------------------------------
# Figure 11: success rate and average QoS vs generation rate.
# ---------------------------------------------------------------------------


def run_fig11(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Figure 11(a)+(b): basic vs tradeoff vs random across rates."""
    rates = _rates(quick)
    sweeps = _run_rate_sweep(_base_config(seed, quick), ("basic", "tradeoff", "random"), rates)
    success = [
        Series(name, rates, [r.success_rate for r in runs]) for name, runs in sweeps.items()
    ]
    qos = [
        Series(name, rates, [r.avg_qos_level for r in runs]) for name, runs in sweeps.items()
    ]
    text = (
        format_series_table(
            "Figure 11(a): overall reservation success rate",
            "rate (ssn/60TU)",
            success,
        )
        + "\n"
        + ascii_chart(success, y_min=0.0, y_max=1.0)
        + "\n\n"
        + format_series_table(
            "Figure 11(b): average end-to-end QoS level of successful sessions",
            "rate (ssn/60TU)",
            qos,
            y_format="{:.2f}",
        )
        + "\n"
        + ascii_chart(qos, y_min=1.0, y_max=3.0)
    )
    return ExperimentReport(
        "fig11",
        text,
        series=success + qos,
        results=[r for runs in sweeps.values() for r in runs],
    )


# ---------------------------------------------------------------------------
# Tables 1-2: selected reservation paths at rate 80.
# ---------------------------------------------------------------------------


def run_tables_1_2(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Tables 1-2: path census for basic and tradeoff at 80 ssn/60TU."""
    algorithms = ("basic", "tradeoff")
    configs = [
        _base_config(seed, quick, algorithm=algorithm).with_(
            workload=WorkloadSpec(rate_per_60tu=80, horizon=_horizon(quick))
        )
        for algorithm in algorithms
    ]
    results = run_configs(configs)
    censuses = {algorithm: result.paths for algorithm, result in zip(algorithms, results)}
    text = (
        format_path_census_table(
            "Table 1: selected reservation paths, services of figure 10(a)",
            "A",
            censuses,
        )
        + "\n"
        + format_path_census_table(
            "Table 2: selected reservation paths, services of figure 10(b)",
            "B",
            censuses,
        )
    )
    bottlenecks = {
        algorithm: sorted(result.metrics.bottleneck_counts)
        for algorithm, result in zip(("basic", "tradeoff"), results)
    }
    distinct = {a: len(b) for a, b in bottlenecks.items()}
    text += (
        f"\nDistinct bottleneck resources observed (of "
        f"{len(results[0].metrics.bottleneck_counts) and 18 or 18} in the environment): "
        f"{distinct}\n"
    )
    return ExperimentReport("tab12", text, results=results, extras={"bottlenecks": bottlenecks})


# ---------------------------------------------------------------------------
# Tables 3-4: per-class success / QoS at rates 60, 100, 180.
# ---------------------------------------------------------------------------


def run_tables_3_4(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Tables 3-4: per-class breakdowns for basic and tradeoff."""
    rates = [60.0, 100.0, 180.0]
    titled = (
        ("basic", "Table 3: reservation success rates / average QoS levels, basic"),
        ("tradeoff", "Table 4: reservation success rates / average QoS levels, tradeoff"),
    )
    configs = [
        _base_config(seed, quick, algorithm=algorithm).with_(
            workload=WorkloadSpec(rate_per_60tu=rate, horizon=_horizon(quick))
        )
        for algorithm, _title in titled
        for rate in rates
    ]
    results = run_configs(configs)
    sections = []
    for position, (_algorithm, title) in enumerate(titled):
        chunk = results[position * len(rates) : (position + 1) * len(rates)]
        by_rate: Dict[float, SimulationResult] = dict(zip(rates, chunk))
        sections.append(format_class_table(title, by_rate))
    return ExperimentReport("tab34", "\n".join(sections), results=results)


# ---------------------------------------------------------------------------
# Figure 12: impact of observation staleness E.
# ---------------------------------------------------------------------------


def run_fig12(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Figure 12(a)+(b): success under stale availability observations."""
    rates = _rates(quick)
    stale_values = [2.0, 8.0] if quick else [1.0, 2.0, 4.0, 8.0]
    sections = []
    all_series: List[Series] = []
    results: List[SimulationResult] = []

    random_accurate = _run_rate_sweep(_base_config(seed, quick), ("random",), rates)["random"]
    random_series = Series("random (E=0)", rates, [r.success_rate for r in random_accurate])
    results.extend(random_accurate)

    for algorithm, label in (("basic", "Figure 12(a)"), ("tradeoff", "Figure 12(b)")):
        series = []
        accurate = _run_rate_sweep(_base_config(seed, quick), (algorithm,), rates)[algorithm]
        series.append(Series(f"{algorithm} (E=0)", rates, [r.success_rate for r in accurate]))
        results.extend(accurate)
        for stale in stale_values:
            runs = _run_rate_sweep(
                _base_config(seed, quick, staleness=stale), (algorithm,), rates
            )[algorithm]
            series.append(Series(f"{algorithm} (E={stale:g})", rates, [r.success_rate for r in runs]))
            results.extend(runs)
        series.append(random_series)
        sections.append(
            format_series_table(
                f"{label}: success rate of {algorithm} with inaccurate observations",
                "rate (ssn/60TU)",
                series,
            )
        )
        all_series.extend(series[:-1])
    return ExperimentReport("fig12", "\n".join(sections), series=all_series, results=results)


# ---------------------------------------------------------------------------
# Figure 13: compressed requirement diversity (3:1).
# ---------------------------------------------------------------------------


def run_fig13(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Figure 13(a)+(b): success and QoS with 3:1 requirement diversity."""
    rates = _rates(quick)
    sweeps = _run_rate_sweep(
        _base_config(seed, quick, diversity_ratio=3.0), ("basic", "tradeoff", "random"), rates
    )
    success = [
        Series(name, rates, [r.success_rate for r in runs]) for name, runs in sweeps.items()
    ]
    qos = [
        Series(name, rates, [r.avg_qos_level for r in runs]) for name, runs in sweeps.items()
    ]
    text = (
        format_series_table(
            "Figure 13(a): success rate under 3:1-compressed requirement diversity",
            "rate (ssn/60TU)",
            success,
        )
        + "\n"
        + format_series_table(
            "Figure 13(b): average QoS level under 3:1-compressed requirement diversity",
            "rate (ssn/60TU)",
            qos,
            y_format="{:.2f}",
        )
    )
    return ExperimentReport(
        "fig13",
        text,
        series=success + qos,
        results=[r for runs in sweeps.values() for r in runs],
    )


# ---------------------------------------------------------------------------
# §4.2 complexity claim: planner cost scales as O(K * Q^2).
# ---------------------------------------------------------------------------


def run_complexity(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Measure planning wall time over K and Q grids."""
    rng = np.random.default_rng(seed)
    ks = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    qs = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    planner = BasicPlanner()
    rows: List[Tuple[int, int, float]] = []
    for k in ks:
        for q in qs:
            service, binding, snapshot = synthetic_chain(k, q, rng=rng)
            qrg = build_qrg(service, binding, snapshot)
            repeats = 3
            start = time.perf_counter()
            for _ in range(repeats):
                plan = planner.plan(qrg)
            elapsed = (time.perf_counter() - start) / repeats
            assert plan is not None
            rows.append((k, q, elapsed))
    lines = ["Planner wall time (s) over K components x Q levels:"]
    lines.append("K\\Q " + "".join(f"{q:>10d}" for q in qs))
    for k in ks:
        cells = [t for kk, _q, t in rows if kk == k]
        lines.append(f"{k:<4d}" + "".join(f"{t:10.5f}" for t in cells))
    # Empirical scaling exponents via log-log regression.
    data = np.array(rows)
    logk, logq, logt = np.log(data[:, 0]), np.log(data[:, 1]), np.log(data[:, 2])
    a = np.column_stack([logk, logq, np.ones(len(rows))])
    coeffs, *_ = np.linalg.lstsq(a, logt, rcond=None)
    lines.append(
        f"fitted t ~ K^{coeffs[0]:.2f} * Q^{coeffs[1]:.2f}  "
        "(paper claims O(K*Q^2): exponents ~1 and ~2)"
    )
    # Cold vs warm QRG construction: the skeleton (nodes, equivalence
    # edges, priced requirement vectors) is availability-independent, so
    # a warm cache leaves only per-snapshot feasibility filtering + psi
    # pricing.  One invalidation round confirms the explicit hook forces
    # a full rebuild.
    cache = QRGSkeletonCache()
    cache_rows: List[Tuple[int, int, float, float]] = []
    repeats = 5
    for k, q in ((ks[-1], qs[0]), (ks[-1], qs[-1])):
        service, binding, snapshot = synthetic_chain(k, q, rng=rng)
        start = time.perf_counter()
        for _ in range(repeats):
            cache.invalidate()
            build_qrg(service, binding, snapshot, skeleton_cache=cache)
        cold = (time.perf_counter() - start) / repeats
        build_qrg(service, binding, snapshot, skeleton_cache=cache)
        start = time.perf_counter()
        for _ in range(repeats):
            build_qrg(service, binding, snapshot, skeleton_cache=cache)
        warm = (time.perf_counter() - start) / repeats
        cache_rows.append((k, q, cold, warm))
    lines.append("QRG construction, cold (skeleton rebuilt) vs warm (skeleton cached):")
    for k, q, cold, warm in cache_rows:
        speedup = finite_speedup(cold, warm)
        speedup_text = f"{speedup:.1f}x" if speedup is not None else "n/a"
        lines.append(
            f"  K={k:<3d} Q={q:<3d} cold={cold * 1e6:9.1f}us "
            f"warm={warm * 1e6:9.1f}us  ({speedup_text})"
        )
    dropped = cache.invalidate()
    lines.append(
        f"  cache invalidation dropped {dropped} skeleton(s); "
        f"stats={cache.stats()}"
    )
    return ExperimentReport(
        "complexity",
        "\n".join(lines),
        extras={"rows": rows, "coeffs": coeffs, "qrg_cache": cache_rows},
    )


# ---------------------------------------------------------------------------
# §4.3.2 ablation: two-pass heuristic vs exhaustive optimum on DAGs.
# ---------------------------------------------------------------------------


def run_dag_ablation(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Quantify the DAG heuristic's limitations against the exact search."""
    rng = np.random.default_rng(seed)
    trials = 60 if quick else 300
    heuristic, exact = TwoPassDagPlanner(), ExhaustiveDagPlanner()
    same_sink = optimal_psi = feasible = 0
    gaps: List[float] = []
    for trial in range(trials):
        branches = int(rng.integers(2, 4))
        q = int(rng.integers(2, 4))
        service, binding, snapshot = synthetic_diamond_dag(branches, q, rng=rng)
        snapshot = random_availability(snapshot, rng, low=4.0, high=60.0)
        qrg = build_qrg(service, binding, snapshot)
        exact_plan = exact.plan(qrg)
        heuristic_plan = heuristic.plan(qrg)
        if exact_plan is None:
            continue
        if heuristic_plan is None:
            continue  # limitation (1): heuristic found nothing at all
        feasible += 1
        if heuristic_plan.end_to_end_label == exact_plan.end_to_end_label:
            same_sink += 1
            gap = heuristic_plan.psi / exact_plan.psi if exact_plan.psi > 0 else 1.0
            gaps.append(gap)
            if abs(heuristic_plan.psi - exact_plan.psi) <= 1e-9:
                optimal_psi += 1
    lines = [
        "DAG two-pass heuristic vs exhaustive optimum "
        f"({trials} random diamond DAGs):",
        f"  heuristic produced a feasible plan:   {feasible}/{trials}",
        f"  reached the optimal sink level:       {same_sink}/{feasible}",
        f"  achieved the optimal Psi_G:           {optimal_psi}/{same_sink}",
    ]
    if gaps:
        lines.append(
            f"  Psi_G ratio vs optimum: mean={float(np.mean(gaps)):.3f} "
            f"max={float(np.max(gaps)):.3f} (1.0 = optimal)"
        )
    return ExperimentReport(
        "dag-ablation",
        "\n".join(lines),
        extras={"feasible": feasible, "same_sink": same_sink, "optimal": optimal_psi, "gaps": gaps},
    )


# ---------------------------------------------------------------------------
# PR 4: fault sweep -- robustness of the protocol under injected faults.
# ---------------------------------------------------------------------------


def run_fault_sweep(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Success rate and mean QoS vs fault rate for basic and tradeoff.

    Sweeps one composite *fault level* f over the fault-tolerant
    protocol: message drop probability f, one expected broker crash per
    host per ``60/f`` TU (f > 0), and stale-report probability f.  The
    f=0 column routes through the fault-tolerant coordinator with a
    zero schedule, which is byte-identical to the plain coordinator --
    so the leftmost points double as the no-regression baseline.
    """
    from repro.faults.plan import FaultConfig

    fault_levels = [0.0, 0.05, 0.15] if quick else [0.0, 0.02, 0.05, 0.1, 0.15, 0.25]
    rate = 120.0
    algorithms = ("basic", "tradeoff")
    base = _base_config(seed, quick).with_(
        workload=WorkloadSpec(rate_per_60tu=rate, horizon=_horizon(quick))
    )
    configs: List[SimulationConfig] = []
    for algorithm in algorithms:
        for level in fault_levels:
            configs.append(
                base.with_(
                    algorithm=algorithm,
                    faults=FaultConfig(
                        drop_rate=level,
                        crash_rate=level,
                        stale_rate=level,
                    ),
                )
            )
    results = run_configs(configs)
    sweeps = {
        algorithm: results[position * len(fault_levels) : (position + 1) * len(fault_levels)]
        for position, algorithm in enumerate(algorithms)
    }
    success = [
        Series(name, fault_levels, [r.success_rate for r in runs])
        for name, runs in sweeps.items()
    ]
    qos = [
        Series(name, fault_levels, [r.avg_qos_level for r in runs])
        for name, runs in sweeps.items()
    ]
    injected = {
        name: [dict(r.fault_stats or {}) for r in runs] for name, runs in sweeps.items()
    }
    text = (
        format_series_table(
            f"Fault sweep: reservation success rate vs fault level (rate={rate:g})",
            "fault level f",
            success,
        )
        + "\n"
        + format_series_table(
            "Fault sweep: average QoS level of successful sessions vs fault level",
            "fault level f",
            qos,
            y_format="{:.2f}",
        )
    )
    totals = [
        f"  {name}: "
        + ", ".join(
            f"f={level:g}:{sum(v for k, v in stats.items() if k != 'orphans_reaped')}"
            for level, stats in zip(fault_levels, injected[name])
        )
        for name in algorithms
    ]
    text += "\nInjected faults per run:\n" + "\n".join(totals) + "\n"
    return ExperimentReport(
        "fault_sweep",
        text,
        series=success + qos,
        results=results,
        extras={"fault_levels": fault_levels, "injected": injected},
    )


# ---------------------------------------------------------------------------
# Drift sweep: the §5 adaptation loop under observation staleness.
# ---------------------------------------------------------------------------


def run_drift_sweep(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Delivered QoS with adaptation on vs off under staleness drift.

    Sweeps the §5.2.4 staleness bound E with the tradeoff planner, once
    with the online monitoring plane detecting only (``adapt=False``)
    and once driving §5 renegotiations (``adapt=True``).  Stale
    observations make sessions reserve against availability that has
    since drifted; the adaptation loop re-plans the drifted sessions
    against *fresh* observations, so the adaptation-on series recovers
    success rate (equivalently: lowers the rejection rate) that
    staleness costs the detect-only series -- renegotiation downgrades
    trade residual QoS level for admissions, exactly the §4.3 exchange.
    Every renegotiation is causally chained to a ``session.drift`` (or
    ``slo.violated``) record sharing its session id in the event log.
    """
    from repro.obs.monitor import MonitorConfig

    staleness_levels = [0.0, 2.0, 4.0] if quick else [0.0, 1.0, 2.0, 3.0, 4.0, 6.0]
    rate = 220.0
    modes = (
        ("adapt-off", MonitorConfig(adapt=False)),
        ("adapt-on", MonitorConfig(adapt=True)),
    )
    base = _base_config(seed, quick).with_(
        algorithm="tradeoff",
        workload=WorkloadSpec(rate_per_60tu=rate, horizon=_horizon(quick)),
    )
    configs: List[SimulationConfig] = []
    for _label, monitoring in modes:
        for staleness in staleness_levels:
            configs.append(base.with_(staleness=staleness, monitoring=monitoring))
    results = run_configs(configs)
    sweeps = {
        label: results[position * len(staleness_levels) : (position + 1) * len(staleness_levels)]
        for position, (label, _monitoring) in enumerate(modes)
    }
    success = [
        Series(label, staleness_levels, [r.success_rate for r in runs])
        for label, runs in sweeps.items()
    ]
    qos = [
        Series(label, staleness_levels, [r.avg_qos_level for r in runs])
        for label, runs in sweeps.items()
    ]
    monitor_digests = {
        label: [dict(r.monitor_stats or {}) for r in runs]
        for label, runs in sweeps.items()
    }
    text = (
        format_series_table(
            f"Drift sweep: reservation success rate vs staleness E (rate={rate:g})",
            "staleness E (TU)",
            success,
        )
        + "\n"
        + format_series_table(
            "Drift sweep: average QoS level of successful sessions vs staleness E",
            "staleness E (TU)",
            qos,
            y_format="{:.2f}",
        )
    )
    drift_lines = []
    for label, digests in monitor_digests.items():
        cells = []
        for level, digest in zip(staleness_levels, digests):
            adaptation = digest.get("adaptation") or {}
            cells.append(
                f"E={level:g}:{digest.get('drift_detected', 0)}d"
                f"/{adaptation.get('triggered', 0)}r"
            )
        drift_lines.append(f"  {label}: " + ", ".join(cells))
    text += (
        "\nDrift detections (d) / renegotiations triggered (r) per run:\n"
        + "\n".join(drift_lines)
        + "\n"
    )
    return ExperimentReport(
        "drift_sweep",
        text,
        series=success + qos,
        results=results,
        extras={
            "staleness_levels": staleness_levels,
            "monitor": monitor_digests,
        },
    )


# ---------------------------------------------------------------------------
# Design-choice ablations: contention index definition, tie-break rule.
# ---------------------------------------------------------------------------


def run_ablation(seed: int = 0, quick: bool = False) -> ExperimentReport:
    """Success at one contended rate under design variations.

    Note a provable fact this ablation confirms empirically: for the
    *basic* algorithm, any contention index that is a monotone transform
    of the utilisation ratio req/avail (the paper's eq. 2, the headroom
    variant, the log variant) yields *identical* plans -- monotone
    transforms preserve per-edge argmaxes and path-max comparisons.  The
    *tradeoff* policy, however, compares ``psi_s <= alpha * psi_s0``,
    which is not invariant under monotone transforms, so there the
    definition genuinely matters.
    """
    rate = 180.0
    rows: List[Tuple[str, float, float]] = []
    results = []
    variants: List[Tuple[str, SimulationConfig]] = []
    base = _base_config(seed, quick).with_(
        workload=WorkloadSpec(rate_per_60tu=rate, horizon=_horizon(quick))
    )
    for name in ("ratio", "headroom", "log"):
        variants.append((f"basic/psi={name}", base.with_(contention_index=name)))
    variants.append(("basic/no tie-break", base.with_(tie_break=False)))
    for name in ("ratio", "headroom", "log"):
        variants.append(
            (f"tradeoff/psi={name}", base.with_(algorithm="tradeoff", contention_index=name))
        )
    results = run_configs([config for _label, config in variants])
    for (label, _config), result in zip(variants, results):
        rows.append((label, result.success_rate, result.avg_qos_level))
    lines = [f"Design ablations (rate={rate:g} ssn/60TU):"]
    for label, success, qos in rows:
        lines.append(f"  {label:<22s} success={100 * success:5.1f}%  avg_qos={qos:.2f}")
    lines.append(
        "  (basic is invariant under monotone psi transforms by construction;"
        " tradeoff is not -- see module docstring)"
    )
    return ExperimentReport("ablation", "\n".join(lines), results=results)


#: Registry used by the CLI and by DESIGN.md's experiment index.
EXPERIMENTS: Dict[str, Callable[..., ExperimentReport]] = {
    "fig11": run_fig11,
    "tab12": run_tables_1_2,
    "tab34": run_tables_3_4,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "complexity": run_complexity,
    "dag-ablation": run_dag_ablation,
    "ablation": run_ablation,
    "fault_sweep": run_fault_sweep,
    "drift_sweep": run_drift_sweep,
}
