"""``repro-cluster``: run the cross-shard router until SIGINT/SIGTERM.

Boots a :class:`~repro.cluster.router.ClusterDaemon` fronting one shard
daemon per ``--shard host:port`` flag.  The router plans each admission
against a merged availability snapshot from the involved shards and
executes it as a two-phase reserve/commit, so a shard dying mid-round
never loses or double-grants capacity.  With a single ``--shard`` the
router forwards requests verbatim (responses stay byte-identical to the
daemon's own).

The shards must be ``repro-serve`` instances started with the *same*
``--seed``/capacity range and ``--shard-index i --shard-count N`` for
``i`` in ``0..N-1`` -- every party replicates the identical grid, the
shard map just divides who may grant what.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional, Tuple

from repro.cluster.router import ClusterConfig, ClusterDaemon
from repro.sim.experiment import ALGORITHMS, CONTENTION_INDICES

__all__ = ["build_config", "main"]


def _shard_address(text: str) -> Tuple[str, int]:
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"shard address {text!r} is not host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard address {text!r} has a non-numeric port"
        ) from None
    return host, port


def build_config(argv: Optional[List[str]] = None) -> ClusterConfig:
    parser = argparse.ArgumentParser(
        prog="repro-cluster", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8790,
                        help="listen port (0 = ephemeral, printed on boot)")
    parser.add_argument("--shard", dest="shards", action="append",
                        type=_shard_address, metavar="HOST:PORT",
                        help="one shard daemon address; repeat per shard, "
                             "in shard-index order")
    parser.add_argument("--seed", type=int, default=0,
                        help="grid seed -- must match every shard daemon")
    parser.add_argument("--algorithm", default="basic",
                        choices=sorted(ALGORITHMS))
    parser.add_argument("--contention-index", default="ratio",
                        choices=sorted(CONTENTION_INDICES))
    parser.add_argument("--capacity-min", type=float, default=1000.0)
    parser.add_argument("--capacity-max", type=float, default=4000.0)
    parser.add_argument("--no-tie-break", action="store_true",
                        help="disable the §4.3 load tie-break")
    args = parser.parse_args(argv)
    if not args.shards:
        parser.error("at least one --shard host:port is required")
    return ClusterConfig(
        shards=tuple(args.shards),
        host=args.host,
        port=args.port,
        seed=args.seed,
        algorithm=args.algorithm,
        capacity_range=(args.capacity_min, args.capacity_max),
        contention_index=args.contention_index,
        tie_break=not args.no_tie_break,
    )


async def _serve(config: ClusterConfig) -> None:
    daemon = ClusterDaemon(config)
    await daemon.start()
    problems = await daemon.coordinator.check()
    for problem in problems:
        print(f"repro-cluster: warning: {problem}", file=sys.stderr, flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            signal.signal(signum, lambda *_: stop.set())
    print(
        f"repro-cluster: listening on {config.host}:{daemon.port} "
        f"(shards={len(config.shards)}, seed={config.seed}, "
        f"algorithm={config.algorithm})",
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        print("repro-cluster: shutting down", flush=True)
        await daemon.shutdown()


def main(argv: Optional[List[str]] = None) -> int:
    config = build_config(argv)
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
