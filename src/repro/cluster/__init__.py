"""Sharded multi-daemon cluster layer.

Partitions the single-environment broker directory into shard-owned
registries (:mod:`repro.cluster.shardmap`), runs each shard behind its
own reservation daemon, and routes admissions through a cluster
coordinator that plans against a merged availability snapshot and
executes cross-shard reservations with two-phase reserve/commit
(:mod:`repro.cluster.router`).  ``repro-cluster``
(:mod:`repro.cluster.cli`) serves the router over the same wire
protocol as a single daemon.
"""

from repro.cluster.router import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterDaemon,
    HttpShardClient,
    LocalShardClient,
)
from repro.cluster.shardmap import ShardMap

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterDaemon",
    "HttpShardClient",
    "LocalShardClient",
    "ShardMap",
]
