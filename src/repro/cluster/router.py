"""The cluster router: cross-shard admission over two-phase reserve/commit.

:class:`ClusterCoordinator` fronts N shard daemons, each serving the
slice of the grid its :class:`~repro.cluster.shardmap.ShardMap` index
assigns (every shard builds the identical same-seed grid, so capacities
agree without a directory service).  An establishment becomes:

1. **merged snapshot** -- ``GET /v1/availability`` from every involved
   shard in parallel; resources an unreachable shard should have
   reported are zero-filled, so planning degrades instead of crashing.
2. **local plan** -- the paper's phase 2 runs once, in the router,
   against the merged snapshot
   (:meth:`~repro.runtime.coordinator.ReservationCoordinator.plan_session`).
3. **two-phase commit** -- the plan's demand is split by owning shard;
   each shard holds its slice on a TTL lease (``/v1/reserve``), and
   only when every slice is held does the router ``/v1/commit`` them.
   Any failure aborts the held leases; a shard that dies mid-round
   leaves only TTL leases behind, which its reaper releases -- no lost
   and no double-granted capacity, the PR 4 lease contract stretched
   across processes.

With a single shard the router forwards requests verbatim, so its
responses are byte-identical to the daemon's (and therefore to the
in-process coordinator) -- the property the acceptance test pins.

:class:`ClusterDaemon` serves the router over the same wire protocol as
a single daemon, so the load generator and :class:`ServiceClient` work
unchanged against a cluster.  :class:`LocalShardClient` swaps the HTTP
hop for direct in-process calls (with per-shard event logs and
drain/crash switches) -- the harness the property tests race.
"""

from __future__ import annotations

import asyncio
import json
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ModelError, ReproError
from repro.core.resources import AvailabilitySnapshot, ResourceObservation
from repro.des.engine import Environment
from repro.des.rng import RandomStreams
from repro.obs import context as _context
from repro.obs import events as _events
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import registry_exposition
from repro.service import http as _http
from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    ServiceDrainingError,
    ServiceResponse,
)
from repro.service.daemon import (
    ReservationService,
    ServiceError,
    _establishment_to_dict,
)
from repro.sim.environment import GridEnvironment
from repro.sim.experiment import CONTENTION_INDICES
from repro.sim.workload import SessionArrival

from repro.cluster.shardmap import ShardMap

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterDaemon",
    "HttpShardClient",
    "LocalShardClient",
]


class HttpShardClient:
    """One shard daemon reached over HTTP (keep-alive pooled)."""

    def __init__(self, index: int, host: str, port: int) -> None:
        self.index = index
        self.label = f"{host}:{port}"
        self._client = ServiceClient(host, port)

    async def availability(self) -> dict:
        return await self._client.availability()

    async def reserve(self, payload: dict) -> dict:
        return await self._client.reserve(
            payload["session_id"], payload["demands"]
        )

    async def commit(self, payload: dict) -> dict:
        return await self._client.commit(
            payload["lease_id"], payload.get("session")
        )

    async def abort(self, payload: dict) -> dict:
        return await self._client.abort(payload["lease_id"])

    async def teardown(self, payload: dict) -> dict:
        return await self._client.teardown(payload["session_id"])

    async def query(self) -> dict:
        return await self._client.query()

    async def forward_raw(
        self, method: str, target: str, payload: Optional[dict]
    ) -> ServiceResponse:
        """Verbatim pass-through (single-shard byte-identity path)."""
        return await self._client.request(method, target, payload)

    async def aclose(self) -> None:
        await self._client.aclose()


class LocalShardClient:
    """In-process stand-in for a shard daemon (tests, benchmarks).

    Wraps a bare (not :meth:`~ReservationService.start`-ed) service;
    every call runs under ``event_logging(self.log)`` so each shard
    keeps its own causal event log exactly as separate processes would.
    ``draining``/``crashed`` flags (and :attr:`crash_on_next_reserve`,
    the lost-ack case: capacity held, acknowledgement never arrives)
    simulate the failures the router must absorb.
    """

    def __init__(
        self,
        index: int,
        service: ReservationService,
        *,
        log: Optional[_events.EventLog] = None,
        label: Optional[str] = None,
    ) -> None:
        self.index = index
        self.service = service
        self.log = log
        self.label = label or f"local-{index}"
        self.draining = False
        self.crashed = False
        self.crash_on_next_reserve = False

    @contextmanager
    def _logged(self):
        if self.log is not None:
            with _events.event_logging(self.log):
                yield
        else:
            yield

    def _check(self, *, admission: bool) -> None:
        if self.crashed:
            raise ConnectionError(f"shard {self.label} is down")
        if admission and self.draining:
            raise ServiceDrainingError(
                503, {"error": "daemon is shutting down", "draining": True}
            )

    async def _call(self, thunk, *, admission: bool = False):
        self._check(admission=admission)
        await asyncio.sleep(0)  # the network hop: an interleave point
        self._check(admission=admission)
        with self._logged():
            try:
                return thunk()
            except ServiceError as exc:
                raise ServiceClientError(exc.status, {"error": str(exc)}) from exc
            except (ModelError, ReproError) as exc:
                raise ServiceClientError(400, {"error": str(exc)}) from exc

    async def availability(self) -> dict:
        return await self._call(self.service.availability)

    async def reserve(self, payload: dict) -> dict:
        if self.crash_on_next_reserve:
            # Lost ack: the shard grants the capacity, then dies before
            # answering.  Only its TTL reaper can free the lease now.
            self._check(admission=True)
            with self._logged():
                self.service.reserve(payload)
            self.crash_on_next_reserve = False
            self.crashed = True
            raise ConnectionError(f"shard {self.label} crashed mid-reserve")
        return await self._call(
            lambda: self.service.reserve(payload), admission=True
        )

    async def commit(self, payload: dict) -> dict:
        # Commit/abort finish an already-held round: drain-exempt,
        # mirroring the daemon's routing.
        return await self._call(lambda: self.service.commit(payload))

    async def abort(self, payload: dict) -> dict:
        return await self._call(lambda: self.service.abort(payload))

    async def teardown(self, payload: dict) -> dict:
        # Drain-exempt like commit/abort: a draining shard still
        # releases capacity, else the round's holds would strand.
        return await self._call(lambda: self.service.teardown(payload))

    async def query(self) -> dict:
        return await self._call(lambda: self.service.query())

    async def reap(self, now: Optional[float] = None) -> int:
        """Run the shard's lease reaper (the daemon does this on a timer)."""
        if self.log is not None:
            with _events.event_logging(self.log):
                return self.service.reap_expired_leases(now)
        return self.service.reap_expired_leases(now)

    async def forward_raw(
        self, method: str, target: str, payload: Optional[dict]
    ) -> ServiceResponse:
        path, _, query_text = target.partition("?")
        def run() -> Tuple[int, object]:
            try:
                if (method, path) == ("GET", "/v1/query"):
                    session_id = None
                    for pair in query_text.split("&"):
                        name, _, value = pair.partition("=")
                        if name == "session_id":
                            session_id = value
                    return 200, self.service.query(session_id)
                handlers = {
                    "/v1/establish": self.service.establish,
                    "/v1/establish_batch": self.service.establish_batch,
                    "/v1/renegotiate": self.service.renegotiate,
                    "/v1/teardown": self.service.teardown,
                }
                handler = handlers.get(path)
                if handler is None or method != "POST":
                    return 404, {"error": f"unknown path {path!r}"}
                return 200, handler(payload)
            except ServiceError as exc:
                return exc.status, {"error": str(exc)}
            except (ModelError, ReproError) as exc:
                return 400, {"error": str(exc)}

        self._check(admission=method == "POST")
        await asyncio.sleep(0)
        self._check(admission=method == "POST")
        with self._logged():
            status, document = run()
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        return ServiceResponse(status=status, headers={}, body=body)

    async def aclose(self) -> None:
        return None


def _json_body(document: object) -> bytes:
    return json.dumps(document, sort_keys=True).encode("utf-8")


_UNREACHABLE = (ConnectionError, OSError, _http.ProtocolError, asyncio.TimeoutError)

#: Reject reasons that are the infrastructure failing, not admission
#: control saying a QoS-aware "no" -- the distinction the cluster
#: availability SLO burns its budget on.
INFRA_REJECT_REASONS = frozenset(
    {"shard_unreachable", "shard_error", "shard_draining"}
)


class ClusterCoordinator:
    """Routes admissions across shard clients (HTTP or in-process).

    Holds its own same-seed planning replica of the grid -- used only
    for placement (:meth:`~repro.sim.environment.GridEnvironment
    .binding_for`) and phase-2 planning; it never reserves locally.
    All methods return ``(status, body_bytes)`` so the serving layer
    can pass shard responses through untouched in single-shard mode.
    """

    def __init__(
        self,
        shards: Sequence,
        *,
        seed: int = 0,
        algorithm: str = "basic",
        capacity_range: Tuple[float, float] = (1000.0, 4000.0),
        contention_index: str = "ratio",
        tie_break: bool = True,
    ) -> None:
        if not shards:
            raise ModelError("a cluster needs at least one shard")
        self.shards = list(shards)
        self.env = Environment()
        self.streams = RandomStreams(seed)
        self.grid = GridEnvironment(
            self.env, self.streams, capacity_range=capacity_range
        )
        self.shard_map = ShardMap.from_topology(
            self.grid.topology, len(self.shards)
        )
        self.planner = _make_planner(algorithm, tie_break, self.streams)
        self.contention_index = CONTENTION_INDICES[contention_index]
        self.seed = seed
        self.algorithm = algorithm
        #: session_id -> {"shards": [...], ...} for teardown routing.
        self.sessions: Dict[str, dict] = {}
        self.counters = {"established": 0, "rejected": 0, "torn_down": 0}
        self.reject_reasons: Dict[str, int] = {}
        #: session_id -> shard indexes whose teardown failed while the
        #: shard was unreachable; retried by flush_pending_teardowns.
        self.pending_teardowns: Dict[str, List[int]] = {}
        self._session_seq = 0
        #: The router's own scrape surface (NOT globally installed --
        #: the router may share a process with shard services in tests).
        self.registry = MetricsRegistry()
        self.shard_reachable: Dict[int, bool] = {}
        for index in range(len(self.shards)):
            # Optimistic until proven otherwise, so every shard's
            # reachability series exists from the first scrape on.
            self._note_shard(index, True)

    def _note_shard(self, shard_index: int, reachable: bool) -> None:
        """Record the latest reachability verdict for one shard."""
        self.shard_reachable[shard_index] = reachable
        self.registry.gauge(
            "cluster.shard_reachable", shard=f"shard-{shard_index}"
        ).set(1.0 if reachable else 0.0)

    def metrics_exposition(self) -> str:
        """The router's ``/metrics`` body (Prometheus text format).

        Point-in-time state -- active sessions, the anti-entropy flush
        debt still owed to once-unreachable shards -- is synced into
        gauges at render time; the admission/reject counters are kept
        live on the decision paths.
        """
        self.registry.gauge("cluster.shard_count").set(len(self.shards))
        self.registry.gauge("cluster.active_sessions").set(len(self.sessions))
        self.registry.gauge("cluster.pending_teardown_sessions").set(
            len(self.pending_teardowns)
        )
        self.registry.gauge("cluster.pending_teardown_shards").set(
            sum(len(debt) for debt in self.pending_teardowns.values())
        )
        return registry_exposition(self.registry)

    # -- request decoding --------------------------------------------------

    def _fresh_session_id(self) -> str:
        self._session_seq += 1
        return f"svc-{self._session_seq}"

    def _arrival_from(self, payload: dict) -> SessionArrival:
        try:
            service = str(payload["service"])
            domain = str(payload["domain"])
        except (KeyError, TypeError) as exc:
            raise ServiceError("missing required field 'service'/'domain'") from exc
        session_id = str(payload.get("session_id") or self._fresh_session_id())
        try:
            demand_scale = float(payload.get("demand_scale", 1.0))
            duration = float(payload.get("duration", 1.0))
            arrival_time = float(payload.get("arrival_time", 0.0))
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"non-numeric field: {exc}") from exc
        if demand_scale <= 0:
            raise ServiceError(f"demand_scale must be positive, got {demand_scale!r}")
        return SessionArrival(
            session_id=session_id,
            arrival_time=arrival_time,
            domain=domain,
            service=service,
            demand_scale=demand_scale,
            duration=duration,
        )

    # -- single-shard pass-through -----------------------------------------

    async def forward(
        self, method: str, target: str, payload: Optional[dict]
    ) -> Tuple[int, bytes]:
        """Verbatim proxying to the only shard (byte-identity path)."""
        try:
            response = await self.shards[0].forward_raw(method, target, payload)
        except _UNREACHABLE:
            return 503, _json_body({"error": "shard unreachable"})
        return response.status, response.body

    # -- cross-shard establishment -----------------------------------------

    async def establish(self, payload: dict) -> Tuple[int, bytes]:
        if len(self.shards) == 1:
            status, body = await self.forward("POST", "/v1/establish", payload)
            self._count_forwarded_establish(status, body)
            return status, body
        try:
            return await self._establish_cross_shard(payload)
        except ServiceError as exc:
            return exc.status, _json_body({"error": str(exc)})
        except (ModelError, ReproError) as exc:
            return 400, _json_body({"error": str(exc)})

    async def _establish_cross_shard(self, payload: dict) -> Tuple[int, bytes]:
        arrival = self._arrival_from(payload)
        session_id = arrival.session_id
        if session_id in self.sessions:
            raise ServiceError(
                f"session {session_id!r} already established", status=409
            )
        binding = self.grid.binding_for(arrival.service, arrival.domain)
        resource_ids = sorted(binding.resource_ids())
        shard_for = {rid: self.shard_map.shard_of(rid) for rid in resource_ids}
        involved = sorted(set(shard_for.values()))

        with _trace.span("cluster.establish", session=session_id) as span:
            span.set(shards=len(involved))
            snapshot = await self._merged_snapshot(resource_ids, involved)
            plan, failure = self.grid.coordinator.plan_session(
                session_id,
                arrival.service,
                binding,
                self.planner,
                snapshot,
                demand_scale=arrival.demand_scale,
                contention_index=self.contention_index,
            )
            if failure is not None:
                failure_dict = _establishment_to_dict(failure)
                if any(
                    not self.shard_reachable.get(index, True)
                    for index in involved
                ):
                    # The planner saw zero-filled availability for a dead
                    # shard; that is an infrastructure failure, not a
                    # QoS-aware "no".
                    failure_dict["reason"] = "shard_unreachable"
                return 200, self._rejected(failure_dict)
            demand = plan.demand
            per_shard: Dict[int, Dict[str, float]] = {}
            for rid in sorted(demand):
                per_shard.setdefault(shard_for[rid], {})[rid] = demand[rid]
            outcome = await self._two_phase_commit(
                session_id, arrival, plan, per_shard
            )
            span.set(outcome=json.loads(outcome[1])["reason"] or "established")
            return outcome

    async def _merged_snapshot(
        self, resource_ids: List[str], involved: List[int]
    ) -> AvailabilitySnapshot:
        """Phase 1 over the wire: gather availability from every shard.

        Resources a dead shard should have covered are zero-filled --
        the same degrade-not-crash stance the fault-tolerant
        coordinator takes on a timed-out proxy.
        """
        wanted = set(resource_ids)
        with _trace.span("cluster.snapshot", shards=len(involved)):
            responses = await asyncio.gather(
                *(self.shards[index].availability() for index in involved),
                return_exceptions=True,
            )
        observations: Dict[str, ResourceObservation] = {}
        for shard_index, response in zip(involved, responses):
            self._note_shard(shard_index, not isinstance(response, _UNREACHABLE))
        for response in responses:
            if isinstance(response, BaseException):
                continue
            for rid, fields in response.get("resources", {}).items():
                if rid not in wanted:
                    continue
                observations[rid] = ResourceObservation(
                    available=max(0.0, float(fields.get("available", 0.0))),
                    alpha=float(fields.get("alpha", 1.0)),
                    observed_at=fields.get("observed_at"),
                )
        for rid in resource_ids:
            if rid not in observations:
                observations[rid] = ResourceObservation(
                    available=0.0, alpha=1.0, observed_at=None
                )
        return AvailabilitySnapshot(observations)

    async def _two_phase_commit(
        self,
        session_id: str,
        arrival: SessionArrival,
        plan,
        per_shard: Dict[int, Dict[str, float]],
    ) -> Tuple[int, bytes]:
        leases: List[Tuple[int, str]] = []
        reason: Optional[str] = None
        failed_resource: Optional[str] = None
        with _trace.span("cluster.reserve", shards=len(per_shard)):
            for shard_index in sorted(per_shard):
                try:
                    outcome = await self.shards[shard_index].reserve(
                        {
                            "session_id": session_id,
                            "demands": per_shard[shard_index],
                        }
                    )
                except ServiceDrainingError:
                    reason = "shard_draining"
                    break
                except ServiceClientError:
                    reason = "shard_error"
                    break
                except _UNREACHABLE:
                    self._note_shard(shard_index, False)
                    reason = "shard_unreachable"
                    break
                self._note_shard(shard_index, True)
                if not outcome.get("reserved"):
                    reason = "admission_failed"
                    failed_resource = outcome.get("failed_resource")
                    break
                leases.append((shard_index, outcome["lease_id"]))
        if reason is not None:
            await self._abort_leases(leases)
            return 200, self._rejected(
                {
                    "session_id": session_id,
                    "success": False,
                    "reason": reason,
                    "failed_resource": failed_resource,
                    "level": None,
                    "label": None,
                    "psi": None,
                }
            )

        meta = {
            "service": arrival.service,
            "domain": arrival.domain,
            "demand_scale": arrival.demand_scale,
            "duration": arrival.duration,
            "level": plan.numeric_level,
        }
        committed: List[int] = []
        with _trace.span("cluster.commit", shards=len(leases)):
            for position, (shard_index, lease_id) in enumerate(leases):
                try:
                    await self.shards[shard_index].commit(
                        {"lease_id": lease_id, "session": meta}
                    )
                except (ServiceClientError,) + _UNREACHABLE as exc:
                    self._note_shard(
                        shard_index, isinstance(exc, ServiceClientError)
                    )
                    # Commit is drain-exempt, so a failure here means a
                    # dead shard (or an expired lease).  Undo the rest:
                    # abort the still-held leases, tear the committed
                    # slices back down.  The dead shard's own holds are
                    # the TTL reaper's problem.
                    await self._abort_leases(leases[position:])
                    await self._teardown_on(committed, session_id)
                    return 200, self._rejected(
                        {
                            "session_id": session_id,
                            "success": False,
                            "reason": "shard_unreachable",
                            "failed_resource": None,
                            "level": None,
                            "label": None,
                            "psi": None,
                        }
                    )
                committed.append(shard_index)
        self.sessions[session_id] = {
            "service": arrival.service,
            "domain": arrival.domain,
            "level": plan.numeric_level,
            "shards": sorted(per_shard),
        }
        self.counters["established"] += 1
        self.registry.counter("cluster.admissions", verdict="established").inc()
        return 200, _json_body(
            {
                "session_id": session_id,
                "success": True,
                "reason": "",
                "failed_resource": None,
                "level": plan.numeric_level,
                "label": plan.end_to_end_label,
                "psi": plan.psi,
            }
        )

    def _count_forwarded_establish(self, status: int, body: bytes) -> None:
        """Keep the admission verdict counters live on the single-shard
        pass-through path, where the shard's response bytes are proxied
        verbatim and never run through :meth:`_rejected`."""
        if status == 503:
            self.counters["rejected"] += 1
            self.reject_reasons["shard_unreachable"] = (
                self.reject_reasons.get("shard_unreachable", 0) + 1
            )
            self.registry.counter(
                "cluster.admissions", verdict="rejected_infra"
            ).inc()
            self.registry.counter(
                "cluster.rejects", reason="shard_unreachable"
            ).inc()
            self._note_shard(0, False)
            return
        if status != 200:
            return  # request errors (400s) are not admission decisions
        self._note_shard(0, True)
        try:
            document = json.loads(body)
        except ValueError:
            return
        if document.get("success"):
            self.counters["established"] += 1
            self.registry.counter(
                "cluster.admissions", verdict="established"
            ).inc()
            return
        reason = document.get("reason") or "rejected"
        self.counters["rejected"] += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        verdict = (
            "rejected_infra" if reason in INFRA_REJECT_REASONS
            else "rejected_merit"
        )
        self.registry.counter("cluster.admissions", verdict=verdict).inc()
        self.registry.counter("cluster.rejects", reason=reason).inc()

    def _rejected(self, document: dict) -> bytes:
        self.counters["rejected"] += 1
        reason = document.get("reason") or "rejected"
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        verdict = (
            "rejected_infra" if reason in INFRA_REJECT_REASONS
            else "rejected_merit"
        )
        self.registry.counter("cluster.admissions", verdict=verdict).inc()
        self.registry.counter("cluster.rejects", reason=reason).inc()
        return _json_body(document)

    async def _abort_leases(self, leases: List[Tuple[int, str]]) -> None:
        """Best-effort rollback; unreachable shards are left to their TTL."""
        for shard_index, lease_id in leases:
            try:
                await self.shards[shard_index].abort({"lease_id": lease_id})
            except (ServiceClientError,) + _UNREACHABLE:
                continue

    async def _teardown_on(self, shard_indexes: List[int], session_id: str) -> None:
        for shard_index in shard_indexes:
            try:
                await self.shards[shard_index].teardown({"session_id": session_id})
            except (ServiceClientError,) + _UNREACHABLE:
                continue

    # -- teardown / query --------------------------------------------------

    async def teardown(self, payload: dict) -> Tuple[int, bytes]:
        if len(self.shards) == 1:
            return await self.forward("POST", "/v1/teardown", payload)
        session_id = str(payload.get("session_id") or "")
        if not session_id:
            return 400, _json_body({"error": "missing required field 'session_id'"})
        record = self.sessions.pop(session_id, None)
        targets = (
            record["shards"] if record is not None else range(len(self.shards))
        )
        released = 0
        unreachable: List[int] = []
        for shard_index in targets:
            try:
                outcome = await self.shards[shard_index].teardown(
                    {"session_id": session_id}
                )
                released += int(outcome.get("released", 0))
                self._note_shard(shard_index, True)
            except ServiceClientError:
                self._note_shard(shard_index, True)
                continue
            except _UNREACHABLE:
                self._note_shard(shard_index, False)
                unreachable.append(shard_index)
        if record is not None and unreachable:
            # The session is gone from the router's view, but a shard
            # we could not reach may still hold its capacity (e.g. a
            # partition, not a crash-restart).  Remember the debt and
            # settle it when the shard is reachable again.
            pending = set(self.pending_teardowns.get(session_id, []))
            self.pending_teardowns[session_id] = sorted(
                pending | set(unreachable)
            )
        if record is None and released == 0:
            return 404, _json_body({"error": f"unknown session {session_id!r}"})
        self.counters["torn_down"] += 1
        return 200, _json_body({"session_id": session_id, "released": released})

    async def flush_pending_teardowns(self) -> int:
        """Retry teardowns that earlier failed against unreachable shards.

        A healed partition leaves the shard still holding capacity for
        sessions the router already tore down everywhere else; this
        anti-entropy pass releases them.  A shard that instead crashed
        and restarted answers 404 (its memory of the session died with
        the process), which settles the debt too.  Returns the amount
        released; shards still unreachable keep their entry for the
        next pass.
        """
        released = 0
        for session_id in sorted(self.pending_teardowns):
            remaining: List[int] = []
            for shard_index in self.pending_teardowns[session_id]:
                try:
                    outcome = await self.shards[shard_index].teardown(
                        {"session_id": session_id}
                    )
                    released += int(outcome.get("released", 0))
                    self._note_shard(shard_index, True)
                except ServiceClientError:
                    self._note_shard(shard_index, True)
                    continue
                except _UNREACHABLE:
                    self._note_shard(shard_index, False)
                    remaining.append(shard_index)
            if remaining:
                self.pending_teardowns[session_id] = remaining
            else:
                del self.pending_teardowns[session_id]
        return released

    async def query(self) -> Tuple[int, bytes]:
        if len(self.shards) == 1:
            return await self.forward("GET", "/v1/query", None)
        per_shard: List[dict] = []
        for shard in self.shards:
            entry: dict = {"label": shard.label}
            try:
                document = await shard.query()
            except (ServiceClientError,) + _UNREACHABLE as exc:
                entry["reachable"] = False
                self._note_shard(shard.index, isinstance(exc, ServiceClientError))
            else:
                entry["reachable"] = True
                self._note_shard(shard.index, True)
                entry["active_sessions"] = document.get("active_sessions")
                entry["shard"] = document.get("shard")
            per_shard.append(entry)
        return 200, _json_body(
            {
                "shards": len(self.shards),
                "seed": self.seed,
                "algorithm": self.algorithm,
                "active_sessions": len(self.sessions),
                "counters": dict(self.counters),
                "reject_reasons": dict(self.reject_reasons),
                "per_shard": per_shard,
            }
        )

    async def check(self) -> List[str]:
        """Boot-time sanity: every reachable shard must share our config."""
        problems: List[str] = []
        for shard in self.shards:
            try:
                document = await shard.query()
            except (ServiceClientError,) + _UNREACHABLE as exc:
                problems.append(f"{shard.label}: unreachable ({exc})")
                continue
            if document.get("seed") != self.seed:
                problems.append(
                    f"{shard.label}: seed {document.get('seed')} != {self.seed} "
                    "(shards must replicate the router's grid)"
                )
        return problems

    async def aclose(self) -> None:
        for shard in self.shards:
            await shard.aclose()


def _make_planner(algorithm: str, tie_break: bool, streams: RandomStreams):
    from repro.core.planner import BasicPlanner, RandomPlanner
    from repro.core.tradeoff import TradeoffPlanner

    if algorithm == "basic":
        return BasicPlanner(tie_break=tie_break)
    if algorithm == "tradeoff":
        return TradeoffPlanner(tie_break=tie_break)
    return RandomPlanner(rng=streams.stream("random-planner"))


@dataclass(frozen=True)
class ClusterConfig:
    """One router instance: where to listen and which shards to front."""

    shards: Tuple[Tuple[str, int], ...]
    host: str = "127.0.0.1"
    port: int = 8790
    seed: int = 0
    algorithm: str = "basic"
    capacity_range: Tuple[float, float] = (1000.0, 4000.0)
    contention_index: str = "ratio"
    tie_break: bool = True
    drain_timeout: float = 10.0

    def __post_init__(self) -> None:
        if not self.shards:
            raise ModelError("a cluster needs at least one shard address")


class ClusterDaemon:
    """Serves a :class:`ClusterCoordinator` over the daemon wire protocol.

    Establishments and teardowns run serialized under one lock (like the
    shard daemons' own admission lock), so router decisions for a given
    request order are deterministic.  Keep-alive, trace propagation and
    the drain-refusal body all match :class:`ReservationDaemon`, which
    is what lets the load generator point at a cluster unchanged.
    """

    def __init__(
        self,
        config: ClusterConfig,
        *,
        coordinator: Optional[ClusterCoordinator] = None,
    ) -> None:
        self.config = config
        self.coordinator = coordinator or ClusterCoordinator(
            [
                HttpShardClient(index, host, port)
                for index, (host, port) in enumerate(config.shards)
            ],
            seed=config.seed,
            algorithm=config.algorithm,
            capacity_range=config.capacity_range,
            contention_index=config.contention_index,
            tie_break=config.tie_break,
        )
        self.requests = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._lock = asyncio.Lock()
        self._draining = False
        self._connections: set = set()
        self._started_at = _time.monotonic()
        self._flush_task: Optional[asyncio.Task] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("cluster daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if len(self.coordinator.shards) > 1:
            self._flush_task = asyncio.create_task(self._flush_loop())

    async def _flush_loop(self) -> None:
        """Anti-entropy: settle teardowns owed to once-unreachable shards."""
        while True:
            await asyncio.sleep(1.0)
            if self.coordinator.pending_teardowns:
                async with self._lock:
                    await self.coordinator.flush_pending_teardowns()

    async def shutdown(self) -> None:
        self._draining = True
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        if self._server is not None:
            self._server.close()
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None
        await self.coordinator.aclose()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _http.read_request(reader)
                    if request is None:
                        return
                    self.requests += 1
                    close = (
                        self._draining
                        or request.headers.get("connection", "").lower() == "close"
                    )
                    context = self._context_for(request)
                    token = _context.bind_trace_context(context)
                    try:
                        response = await self._dispatch(request, close)
                    finally:
                        _context.reset_trace_context(token)
                    writer.write(response)
                    await writer.drain()
                except _http.ProtocolError as exc:
                    try:
                        writer.write(
                            _http.json_response_bytes(400, {"error": str(exc)})
                        )
                        await writer.drain()
                    except (ConnectionError, RuntimeError):  # pragma: no cover
                        pass
                    return
                except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
                    return
                if close:
                    return
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass

    def _context_for(self, request: _http.Request) -> _context.TraceContext:
        request_id = request.headers.get(_context.REQUEST_ID_HEADER) or (
            f"cluster-req-{self.requests}"
        )
        parent = _context.parse_traceparent(
            request.headers.get(_context.TRACEPARENT_HEADER)
        )
        if parent is None:
            return _context.new_trace_context(request_id=request_id)
        return _context.TraceContext(
            trace_id=parent.trace_id,
            span_id=parent.span_id,
            parent_id=parent.parent_id,
            request_id=request_id,
        )

    async def _dispatch(self, request: _http.Request, close: bool) -> bytes:
        single = len(self.coordinator.shards) == 1
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return _http.json_response_bytes(
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "role": "cluster-router",
                    "shards": len(self.coordinator.shards),
                    "requests": self.requests,
                    "uptime_seconds": _time.monotonic() - self._started_at,
                    "draining": self._draining,
                },
                close=close,
            )
        if route == ("GET", "/metrics"):
            body = self.coordinator.metrics_exposition().encode("utf-8")
            return _http.response_bytes(
                200, body, content_type="text/plain; version=0.0.4", close=close
            )
        if route == ("GET", "/v1/query"):
            status, body = await self.coordinator.query()
            return _http.response_bytes(status, body, close=close)
        if request.method != "POST":
            return _http.json_response_bytes(
                405,
                {"error": f"no route for {request.method} {request.path}"},
                close=close,
            )
        if self._draining:
            return _http.json_response_bytes(
                503,
                {"error": "daemon is shutting down", "draining": True},
                close=close,
            )
        try:
            payload = request.json()
        except _http.ProtocolError:
            raise
        if request.path == "/v1/establish":
            async with self._lock:
                status, body = await self.coordinator.establish(payload)
            return _http.response_bytes(status, body, close=close)
        if request.path == "/v1/teardown":
            async with self._lock:
                status, body = await self.coordinator.teardown(payload)
            return _http.response_bytes(status, body, close=close)
        if request.path in ("/v1/establish_batch", "/v1/renegotiate"):
            if single:
                async with self._lock:
                    status, body = await self.coordinator.forward(
                        "POST", request.path, payload
                    )
                return _http.response_bytes(status, body, close=close)
            return _http.json_response_bytes(
                501,
                {
                    "error": f"{request.path} is not supported by the "
                    "multi-shard router"
                },
                close=close,
            )
        return _http.json_response_bytes(
            404, {"error": f"unknown path {request.path!r}"}, close=close
        )
