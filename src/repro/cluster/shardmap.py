"""Deterministic resource -> shard assignment.

The sharding unit is the *failure-domain group*: one host together with
every client domain whose access proxy runs on that host (they share
fate -- losing the host severs the domains' access paths anyway).
Groups are distributed round-robin over the shards in sorted host
order, so any process that knows the topology and the shard count
computes the identical map with no directory service -- the
queueless/uncentralised discovery shape of Coti et al.

Resource ownership mirrors :class:`~repro.sim.environment.GridEnvironment`
exactly: a cpu broker belongs to its host; a path or link resource
belongs to its domain endpoint when it has one (the receiver side of a
domain access link), otherwise to the lexicographically first host
endpoint.  The shard of a resource is the shard of its owning node,
which keeps every resource owned by exactly one shard -- the invariant
the cross-shard reconciliation checker leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.core.errors import ModelError

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Immutable node/resource -> shard index assignment."""

    shard_count: int
    #: owning node (host or domain name) -> shard index
    assignments: Mapping[str, int]
    #: domain name -> access proxy host (to classify path endpoints)
    domain_proxy_hosts: Mapping[str, str]
    #: link id -> (endpoint_a, endpoint_b) (to place ``link:`` resources)
    link_endpoints: Mapping[str, Tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def from_topology(cls, topology, shard_count: int) -> "ShardMap":
        """Build the map from a :class:`~repro.network.topology.Topology`."""
        return cls.build(
            hosts=sorted(topology.hosts),
            domain_proxy_hosts={
                name: topology.domains[name].proxy_host
                for name in topology.domains
            },
            link_endpoints={
                link_id: (link.endpoint_a, link.endpoint_b)
                for link_id, link in topology.links.items()
            },
            shard_count=shard_count,
        )

    @classmethod
    def build(
        cls,
        *,
        hosts,
        domain_proxy_hosts: Mapping[str, str],
        shard_count: int,
        link_endpoints: Mapping[str, Tuple[str, str]] = None,
    ) -> "ShardMap":
        hosts = sorted(hosts)
        if shard_count < 1:
            raise ModelError(f"shard_count must be >= 1, got {shard_count}")
        if shard_count > len(hosts):
            raise ModelError(
                f"shard_count {shard_count} exceeds the {len(hosts)} "
                "failure-domain groups (one per host)"
            )
        assignments: Dict[str, int] = {}
        for index, host in enumerate(hosts):
            shard = index % shard_count
            assignments[host] = shard
            for domain in sorted(domain_proxy_hosts):
                if domain_proxy_hosts[domain] == host:
                    assignments[domain] = shard
        unplaced = set(domain_proxy_hosts) - set(assignments)
        if unplaced:
            raise ModelError(
                f"domains {sorted(unplaced)} name proxy hosts outside {hosts}"
            )
        return cls(
            shard_count=shard_count,
            assignments=dict(assignments),
            domain_proxy_hosts=dict(domain_proxy_hosts),
            link_endpoints=dict(link_endpoints or {}),
        )

    # -- lookups ---------------------------------------------------------------

    def shard_of_node(self, node: str) -> int:
        """Shard index of a host or domain name."""
        try:
            return self.assignments[node]
        except KeyError:
            raise ModelError(f"node {node!r} is not in the shard map") from None

    def owner_node(self, resource_id: str) -> str:
        """The node owning a resource, mirroring GridEnvironment's rule."""
        if resource_id.startswith("net:"):
            endpoints = resource_id[len("net:"):].split("-")
        elif resource_id.startswith("link:"):
            link_id = resource_id[len("link:"):]
            try:
                endpoints = list(self.link_endpoints[link_id])
            except KeyError:
                raise ModelError(
                    f"link {link_id!r} is not in the shard map's topology"
                ) from None
        elif ":" in resource_id:
            # Local resources (``cpu:H1``) belong to their host.
            return resource_id.split(":", 1)[1]
        else:
            raise ModelError(f"cannot place resource {resource_id!r}")
        domains = [e for e in endpoints if e in self.domain_proxy_hosts]
        return domains[0] if domains else sorted(endpoints)[0]

    def shard_of(self, resource_id: str) -> int:
        """Shard index owning a resource id."""
        return self.shard_of_node(self.owner_node(resource_id))

    def nodes_of(self, shard: int) -> Tuple[str, ...]:
        """All nodes assigned to one shard, sorted."""
        return tuple(
            sorted(node for node, index in self.assignments.items() if index == shard)
        )

    def owned_resource_ids(self, shard: int, resource_ids) -> Tuple[str, ...]:
        """Filter a resource-id iterable down to one shard's slice."""
        return tuple(
            rid for rid in sorted(resource_ids) if self.shard_of(rid) == shard
        )
