"""Shortest-path routing over a :class:`~repro.network.topology.Topology`.

Routes are computed by breadth-first search (minimum hop count) with a
deterministic lexicographic tie-break, then cached.  The route between
two nodes is the link sequence an end-to-end
:class:`~repro.brokers.path.PathBroker` will reserve on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ModelError
from repro.network.topology import Link, Topology


class RoutingTable:
    """All-pairs min-hop routes with caching."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._cache: Dict[Tuple[str, str], Tuple[Link, ...]] = {}

    def route(self, source: str, destination: str) -> Tuple[Link, ...]:
        """Link sequence from ``source`` to ``destination``.

        Raises :class:`ModelError` when no path exists or on unknown
        nodes.  A node routed to itself yields the empty route.
        """
        if source == destination:
            if source not in set(self.topology.node_names()):
                raise ModelError(f"unknown node {source!r}")
            return ()
        key = (source, destination)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        route = self._bfs(source, destination)
        self._cache[key] = route
        # A min-hop route is symmetric under our tie-break only by
        # reversal; cache the reverse too for lookup speed.
        self._cache[(destination, source)] = tuple(reversed(route))
        return route

    def _bfs(self, source: str, destination: str) -> Tuple[Link, ...]:
        names = set(self.topology.node_names())
        for node in (source, destination):
            if node not in names:
                raise ModelError(f"unknown node {node!r}")
        parent: Dict[str, Tuple[str, Link]] = {}
        visited = {source}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            if node == destination:
                break
            for neighbor, link in self.topology.neighbors(node):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                parent[neighbor] = (node, link)
                frontier.append(neighbor)
        if destination not in visited:
            raise ModelError(f"no route from {source!r} to {destination!r}")
        hops: List[Link] = []
        node = destination
        while node != source:
            node, link = parent[node]
            hops.append(link)
        hops.reverse()
        return tuple(hops)

    def hop_count(self, source: str, destination: str) -> int:
        """Number of links on the route between the two nodes."""
        return len(self.route(source, destination))
