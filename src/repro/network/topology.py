"""Topology model and the paper's figure-9 environment builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import ModelError


@dataclass(frozen=True)
class Host:
    """An end host able to run service components (H1-H4 in figure 9)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("host name must be non-empty")


@dataclass(frozen=True)
class Domain:
    """A client domain; its clients attach through one proxy host.

    In the paper's setup (§5.1) the proxy component of a session from
    domain ``D_i`` runs on a host determined by the domain, which is why
    the proxy host is part of the domain definition here.
    """

    name: str
    proxy_host: str

    def __post_init__(self) -> None:
        if not self.name or not self.proxy_host:
            raise ModelError("domain name and proxy host must be non-empty")


@dataclass(frozen=True)
class Link:
    """An undirected network link (L1-L14 in figure 9).

    Endpoints are host names or domain names (access links attach a
    domain's client population to its proxy host).
    """

    link_id: str
    endpoint_a: str
    endpoint_b: str

    def __post_init__(self) -> None:
        if not self.link_id:
            raise ModelError("link id must be non-empty")
        if self.endpoint_a == self.endpoint_b:
            raise ModelError(f"link {self.link_id!r} connects {self.endpoint_a!r} to itself")

    def connects(self, a: str, b: str) -> bool:
        """True when this link joins the two endpoints."""
        return {a, b} == {self.endpoint_a, self.endpoint_b}

    def other_end(self, endpoint: str) -> str:
        """The opposite endpoint of the link."""
        if endpoint == self.endpoint_a:
            return self.endpoint_b
        if endpoint == self.endpoint_b:
            return self.endpoint_a
        raise ModelError(f"{endpoint!r} is not an endpoint of link {self.link_id!r}")


class Topology:
    """Hosts + domains + links, with adjacency lookups."""

    def __init__(
        self,
        hosts: Iterable[Host],
        domains: Iterable[Domain],
        links: Iterable[Link],
    ) -> None:
        self.hosts: Dict[str, Host] = {}
        for host in hosts:
            if host.name in self.hosts:
                raise ModelError(f"duplicate host {host.name!r}")
            self.hosts[host.name] = host
        self.domains: Dict[str, Domain] = {}
        for domain in domains:
            if domain.name in self.domains or domain.name in self.hosts:
                raise ModelError(f"duplicate node name {domain.name!r}")
            if domain.proxy_host not in self.hosts:
                raise ModelError(
                    f"domain {domain.name!r} names unknown proxy host {domain.proxy_host!r}"
                )
            self.domains[domain.name] = domain
        node_names = set(self.hosts) | set(self.domains)
        self.links: Dict[str, Link] = {}
        self._adjacency: Dict[str, List[Tuple[str, Link]]] = {name: [] for name in node_names}
        for link in links:
            if link.link_id in self.links:
                raise ModelError(f"duplicate link id {link.link_id!r}")
            for endpoint in (link.endpoint_a, link.endpoint_b):
                if endpoint not in node_names:
                    raise ModelError(
                        f"link {link.link_id!r} references unknown node {endpoint!r}"
                    )
            self.links[link.link_id] = link
            self._adjacency[link.endpoint_a].append((link.endpoint_b, link))
            self._adjacency[link.endpoint_b].append((link.endpoint_a, link))
        for name in self._adjacency:
            self._adjacency[name].sort(key=lambda pair: (pair[0], pair[1].link_id))

    def neighbors(self, node: str) -> List[Tuple[str, Link]]:
        """(neighbor, link) pairs adjacent to ``node``, sorted."""
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise ModelError(f"unknown node {node!r}") from None

    def node_names(self) -> Tuple[str, ...]:
        """All host and domain names, sorted."""
        return tuple(sorted(set(self.hosts) | set(self.domains)))

    def link_between(self, a: str, b: str) -> Optional[Link]:
        """The direct link joining two nodes, or None."""
        for neighbor, link in self._adjacency.get(a, []):
            if neighbor == b:
                return link
        return None


def build_scaled_topology(
    num_hosts: int,
    domains_per_host: int = 2,
    *,
    mesh: bool = True,
) -> Topology:
    """A figure-9-shaped environment at arbitrary scale.

    ``num_hosts`` servers (``H1..``) connected as a full mesh (or a ring
    when ``mesh=False``), each fronting ``domains_per_host`` client
    domains over dedicated access links.  ``build_figure9_topology()``
    is the (4, 2, mesh) instance.  Used by the scalability benchmarks to
    grow the environment beyond the paper's setup.
    """
    if num_hosts < 2:
        raise ModelError(f"need at least 2 hosts, got {num_hosts}")
    if domains_per_host < 1:
        raise ModelError(f"need at least 1 domain per host, got {domains_per_host}")
    hosts = [Host(f"H{i}") for i in range(1, num_hosts + 1)]
    domains = [
        Domain(f"D{i}", proxy_host=f"H{(i + domains_per_host - 1) // domains_per_host}")
        for i in range(1, num_hosts * domains_per_host + 1)
    ]
    links: List[Link] = []
    index = 1
    if mesh:
        for a in range(1, num_hosts + 1):
            for b in range(a + 1, num_hosts + 1):
                links.append(Link(f"L{index}", f"H{a}", f"H{b}"))
                index += 1
    else:
        for a in range(1, num_hosts + 1):
            b = a % num_hosts + 1
            links.append(Link(f"L{index}", f"H{a}", f"H{b}"))
            index += 1
    for domain in domains:
        links.append(Link(f"L{index}", domain.proxy_host, domain.name))
        index += 1
    return Topology(hosts, domains, links)


def build_figure9_topology() -> Topology:
    """The evaluation environment's structure (paper figure 9).

    Four high-performance hosts H1-H4 in a full mesh (6 core links) and
    eight client domains D1-D8, each attached to its proxy host by one
    access link (8 links) -- 14 links total, matching L1-L14.  Domain
    ``D_i``'s proxy host is ``H_ceil(i/2)``, consistent with §5.1's rule
    that a client from ``D_i`` never requests service ``S_ceil(i/2)``
    (whose main server is that same host): server and proxy hosts of a
    session are therefore always distinct.
    """
    hosts = [Host(f"H{i}") for i in range(1, 5)]
    domains = [Domain(f"D{i}", proxy_host=f"H{(i + 1) // 2}") for i in range(1, 9)]
    links: List[Link] = []
    index = 1
    for a in range(1, 5):
        for b in range(a + 1, 5):
            links.append(Link(f"L{index}", f"H{a}", f"H{b}"))
            index += 1
    for i in range(1, 9):
        links.append(Link(f"L{index}", f"H{(i + 1) // 2}", f"D{i}"))
        index += 1
    return Topology(hosts, domains, links)
