"""Network substrate: hosts, domains, links, topology, and routing.

Pure structure -- capacities and reservations live in
:mod:`repro.brokers`.  The figure-9 evaluation topology builder is here
too: four end hosts in a full mesh (6 core links) plus one access link
per client domain (8), totalling the paper's 14 links L1-L14.
"""

from repro.network.topology import Domain, Host, Link, Topology, build_figure9_topology
from repro.network.routing import RoutingTable

__all__ = [
    "Domain",
    "Host",
    "Link",
    "RoutingTable",
    "Topology",
    "build_figure9_topology",
]
