"""``repro-obs`` -- post-mortem analysis of exported trace documents.

Subcommands (all consume the JSON trace documents that
:class:`~repro.obs.ObservationSession` / ``--trace-json`` write; schema
v1 and v2 both load):

* ``summarize``     -- meta, phase timings, session outcomes, event
  counts, per-broker rejection rates and the top bottleneck resources;
* ``critical-path`` -- per-session phase self-time breakdown, slowest
  establishment attempts first;
* ``top``           -- the top-K contended resources with how each
  manifested (plan bottleneck, admission race lost, broker reject);
* ``diff``          -- numeric deltas between two documents (trace or
  benchmark ledger); ``--gate`` turns out-of-tolerance deltas into a
  non-zero exit for CI regression gating (timing comparisons are keyed
  on the ledgers' runner fingerprints: different machines never
  hard-compare wall-clock leaves);
* ``watch``         -- the monitoring-plane timeline of a trace
  (drift detections, SLO violations, renegotiations), replaying the
  online monitor over the event log when the run had none live;
* ``monitor-report``-- the monitoring digest (per-broker estimators,
  drift/SLO/renegotiation counts, causal drift->renegotiation pairs);
* ``export-prom``   -- the document's metrics snapshot in Prometheus
  text exposition format;
* ``stitch``        -- merge a client-side and a daemon-side trace
  document (e.g. the loadgen's ``--trace-json`` output and a flight-
  recorder dump) into one cross-process timeline per request, joined on
  the propagated ``trace_id``; ``--require-complete`` exits non-zero
  when any client request has no daemon-side telemetry;
* ``reconcile``     -- merge per-shard causal event logs (flight dumps
  or trace exports, one document per shard) and verify the cluster's
  global conservation invariants offline: no double release, no
  over-grant, no resource granted by two shards, every aborted or
  expired 2PC lease fully rolled back; non-zero exit on any violation;
* ``dashboard``     -- the one *live* subcommand: scrape every given
  shard/router ``host:port`` on an interval into a
  :class:`~repro.obs.telemetry.TimeSeriesStore`, evaluate burn-rate
  SLOs (:mod:`repro.obs.burn`), and render per-shard admission rates,
  merged p50/p99 phase latencies, lease counters, error-budget
  remaining and firing alerts as an ANSI terminal view;
  ``--snapshot-json`` writes a machine-readable final state (the CI
  smoke's artifact) including every ``slo.*`` event the run emitted.

Installed as a console script via ``[project.scripts]``; also runnable
as ``python -m repro.obs.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.obs import analyze
from repro.obs.prom import DEFAULT_PREFIX, snapshot_exposition

__all__ = ["build_parser", "main"]


def _load_document(path: str) -> dict:
    """Any JSON object document (trace or ledger); exits 2 on garbage."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"repro-obs: no such file: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"repro-obs: {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit(f"repro-obs: {path} is not a JSON object document")
    return payload


def _load_trace(path: str) -> analyze.TraceDocument:
    try:
        return analyze.TraceDocument.from_dict(_load_document(path))
    except analyze.TraceFormatError as exc:
        raise SystemExit(f"repro-obs: {path}: {exc}")


def _print(lines: Sequence[str]) -> None:
    sys.stdout.write("\n".join(lines) + "\n")


# -- summarize -----------------------------------------------------------------


def _meta_lines(doc: analyze.TraceDocument) -> List[str]:
    if not doc.meta:
        return []
    lines = ["run metadata:"]
    for key in sorted(doc.meta):
        lines.append(f"  {key:<22} {doc.meta[key]}")
    return lines


def _span_lines(doc: analyze.TraceDocument) -> List[str]:
    if not doc.span_totals:
        return []
    lines = ["per-phase timings:", f"  {'span':<22} {'count':>7} {'total_s':>10}"]
    for name, totals in sorted(
        doc.span_totals.items(), key=lambda item: -item[1].get("total_seconds", 0.0)
    ):
        lines.append(
            f"  {name:<22} {int(totals.get('count', 0)):>7} "
            f"{totals.get('total_seconds', 0.0):>10.4f}"
        )
    return lines


def _event_lines(doc: analyze.TraceDocument) -> List[str]:
    counts = {}
    for event in doc.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    if not counts:
        return []
    lines = ["reservation events:"]
    for kind in sorted(counts):
        lines.append(f"  {kind:<26} {counts[kind]}")
    if doc.events_dropped:
        lines.append(f"  (dropped beyond capacity: {doc.events_dropped})")
    return lines


def _broker_lines(doc: analyze.TraceDocument, *, limit: Optional[int] = None) -> List[str]:
    timelines = analyze.broker_timelines(doc)
    if not timelines:
        return []
    ranked = sorted(
        timelines.values(), key=lambda t: (-t.rejection_rate, -t.rejects, t.resource)
    )
    if limit is not None:
        ranked = ranked[:limit]
    lines = [
        "per-broker admission:",
        f"  {'resource':<16} {'grants':>7} {'rejects':>8} {'rej_rate':>9} "
        f"{'peak_util':>10} {'first_rej_t':>12}",
    ]
    for timeline in ranked:
        first = (
            f"{timeline.first_reject_time:.1f}"
            if timeline.first_reject_time is not None
            else "-"
        )
        lines.append(
            f"  {timeline.resource:<16} {timeline.grants:>7} {timeline.rejects:>8} "
            f"{timeline.rejection_rate:>9.3f} {timeline.peak_utilization:>10.3f} "
            f"{first:>12}"
        )
    return lines


def _fault_lines(doc: analyze.TraceDocument) -> List[str]:
    """The run's fault/recovery story (empty for fault-free traces)."""
    summary = analyze.fault_summary(doc)
    if summary.empty:
        return []
    lines = [f"fault injection ({summary.total_injected} faults fired):"]
    for kind, count in summary.injected.items():
        lines.append(f"  injected {kind:<20} {count}")
    for phase, count in summary.timeouts.items():
        lines.append(f"  timeouts phase={phase:<14} {count}")
    for phase, count in summary.retries.items():
        lines.append(f"  retries  phase={phase:<14} {count}")
    for reason, count in summary.replans.items():
        lines.append(f"  replans  reason={reason:<13} {count}")
    if summary.leases_expired:
        lines.append(f"  orphaned leases reaped       {summary.leases_expired}")
    if summary.unreachable_rejections:
        lines.append(f"  sessions lost to dead hosts  {summary.unreachable_rejections}")
    return lines


def _bottleneck_lines(doc: analyze.TraceDocument, k: int) -> List[str]:
    reports = analyze.top_bottlenecks(doc, k)
    if not reports:
        return []
    lines = [
        f"top-{len(reports)} bottleneck resources:",
        f"  {'resource':<16} {'score':>7} {'plan_btl':>9} {'adm_fail':>9} "
        f"{'brk_rej':>8} {'mean_psi':>9}",
    ]
    for report in reports:
        lines.append(
            f"  {report.resource:<16} {report.score:>7g} {report.planned_bottleneck:>9} "
            f"{report.admission_failures:>9} {report.broker_rejects:>8} "
            f"{report.mean_psi:>9.3f}"
        )
    return lines


def _cmd_summarize(args: argparse.Namespace) -> int:
    doc = _load_trace(args.trace)
    title = f"trace summary: {args.trace} (schema v{doc.schema_version})"
    sections = [
        [title, "=" * len(title)],
        _meta_lines(doc),
        _span_lines(doc),
        _event_lines(doc),
        _fault_lines(doc),
        _broker_lines(doc, limit=args.top),
        _bottleneck_lines(doc, args.top),
    ]
    _print([line for section in sections if section for line in section + [""]][:-1])
    return 0


# -- critical-path -------------------------------------------------------------


def _cmd_critical_path(args: argparse.Namespace) -> int:
    doc = _load_trace(args.trace)
    breakdowns = analyze.critical_path(doc, session=args.session, limit=args.limit)
    if not breakdowns:
        if args.session:
            raise SystemExit(
                f"repro-obs: no establish span for session {args.session!r} in {args.trace}"
            )
        _print(["no establish spans in this trace"])
        return 0
    lines: List[str] = []
    for breakdown in breakdowns:
        lines.append(
            f"session {breakdown.session} ({breakdown.service or '?'}, "
            f"{breakdown.outcome or '?'}): {1e6 * breakdown.total_seconds:.1f} us total, "
            f"critical phase: {breakdown.critical_phase}"
        )
        for name, seconds in sorted(
            breakdown.phase_seconds.items(), key=lambda item: -item[1]
        ):
            share = seconds / breakdown.total_seconds if breakdown.total_seconds else 0.0
            lines.append(f"    {name:<22} {1e6 * seconds:>10.1f} us  {share:>6.1%}")
    totals = analyze.phase_totals(breakdowns)
    if totals:
        lines.append("")
        lines.append(f"aggregate self time over {len(breakdowns)} sessions:")
        for name, seconds in totals.items():
            lines.append(f"    {name:<22} {seconds:>10.4f} s")
    _print(lines)
    return 0


# -- top -----------------------------------------------------------------------


def _cmd_top(args: argparse.Namespace) -> int:
    doc = _load_trace(args.trace)
    lines = _bottleneck_lines(doc, args.k)
    if not lines:
        _print(
            [
                "no bottleneck signals in this trace "
                "(schema v1 documents carry no event log)"
            ]
        )
        return 0
    broker = _broker_lines(doc, limit=args.k)
    if broker:
        lines += [""] + broker
    faults = _fault_lines(doc)
    if faults:
        lines += [""] + faults
    _print(lines)
    return 0


# -- diff ----------------------------------------------------------------------


def _format_side(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:g}"


def _runner_fingerprint(document: dict) -> Optional[str]:
    """The ledger's runner fingerprint (None for older/trace documents)."""
    runner = document.get("runner")
    if isinstance(runner, dict):
        fingerprint = runner.get("fingerprint")
        return str(fingerprint) if fingerprint else None
    return None


def _timing_baseline_for(document: dict, fingerprint: Optional[str]) -> Optional[dict]:
    """The document's recorded timing baseline for a runner fingerprint."""
    if not fingerprint:
        return None
    baselines = document.get("timing_baselines")
    if isinstance(baselines, dict):
        recorded = baselines.get(fingerprint)
        if isinstance(recorded, dict):
            return recorded
    return None


def _rekey_timing_entries(
    entries, recorded: dict
) -> Tuple[list, int]:
    """Substitute a runner's recorded timing baseline as the base side.

    Timing leaves with a recorded per-fingerprint value compare against
    *that* value (hard gate); timing leaves without one are dropped --
    there is nothing measured on this hardware to hold them to.
    Structural leaves pass through untouched.
    """
    rekeyed = []
    substituted = 0
    for entry in entries:
        if not analyze.is_timing_path(entry.path):
            rekeyed.append(entry)
            continue
        if entry.path in recorded:
            rekeyed.append(
                analyze.DiffEntry(entry.path, float(recorded[entry.path]), entry.new)
            )
            substituted += 1
    return rekeyed, substituted


def _cmd_diff(args: argparse.Namespace) -> int:
    base = _load_document(args.base)
    new = _load_document(args.new)
    entries = analyze.diff_documents(base, new)
    if args.changed_only:
        entries = [e for e in entries if e.base != e.new]
    lines = [f"  {'path':<48} {'base':>12} {'new':>12} {'delta':>12}"]
    for entry in entries:
        delta = entry.delta
        lines.append(
            f"  {entry.path:<48} {_format_side(entry.base):>12} "
            f"{_format_side(entry.new):>12} "
            f"{'-' if delta is None else format(delta, '+g'):>12}"
        )
    _print(lines)
    if not args.gate:
        return 0
    ignore_timing = args.ignore_timing
    gated = entries
    if not ignore_timing:
        # Timing comparisons are keyed on the runner fingerprint.  Same
        # fingerprint: wall clocks gate hard at --timing-tolerance.
        # Different fingerprints: the baseline may still *record* a
        # timing baseline for the new runner's fingerprint
        # (``timing_baselines``), and those leaves gate hard against it;
        # without a recorded baseline the wall-clock deltas are
        # meaningless and drop out of the gate.  Documents where
        # *neither* side records a runner (traces, pre-fingerprint
        # ledgers) keep the historical behavior: timings gate unless
        # --ignore-timing says otherwise.
        base_runner = _runner_fingerprint(base)
        new_runner = _runner_fingerprint(new)
        if (base_runner or new_runner) and base_runner != new_runner:
            recorded = _timing_baseline_for(base, new_runner)
            if recorded is None:
                ignore_timing = True
                _print(
                    [
                        "gate: runner fingerprints differ "
                        f"({base_runner or 'unrecorded'} vs {new_runner or 'unrecorded'}) "
                        "and the baseline records no timing baseline for "
                        f"{new_runner or 'this runner'}; "
                        "timing leaves excluded from the gate"
                    ]
                )
            else:
                gated, substituted = _rekey_timing_entries(entries, recorded)
                _print(
                    [
                        "gate: runner fingerprints differ; "
                        f"{substituted} timing leaves gated against the baseline "
                        f"recorded for {new_runner}"
                    ]
                )
    regressions = analyze.gate_diff(
        gated,
        tolerance=args.tolerance,
        ignore_timing=ignore_timing,
        timing_tolerance=None if ignore_timing else args.timing_tolerance,
    )
    if not regressions:
        _print([f"gate: OK ({len(gated)} leaves within +-{args.tolerance:.0%})"])
        return 0
    _print([f"gate: {len(regressions)} leaves outside the +-{args.tolerance:.0%} band:"])
    for entry in regressions:
        relative = entry.relative
        detail = "present on one side only" if relative is None else f"{relative:+.1%}"
        _print([f"  {entry.path}: {_format_side(entry.base)} -> "
                f"{_format_side(entry.new)} ({detail})"])
    return 1


# -- watch / monitor-report (online monitoring plane) --------------------------


def _monitor_events(doc: analyze.TraceDocument, threshold: Optional[float]):
    """The trace's monitoring events, replaying the monitor if needed.

    A trace recorded with a live monitor already carries the plane's
    events; otherwise (or when ``threshold`` overrides the detection
    configuration) the :class:`~repro.obs.monitor.OnlineMonitor` is
    replayed offline over the recorded event log.  Returns
    ``(events, replayed, monitor)`` -- ``monitor`` is None when the
    recording's own events were used.
    """
    from repro.obs.monitor import MONITOR_EVENT_KINDS, MonitorConfig, replay_events

    recorded = [e for e in doc.events if e.kind in MONITOR_EVENT_KINDS]
    if recorded and threshold is None:
        return recorded, False, None
    config = (
        MonitorConfig(adapt=False)
        if threshold is None
        else MonitorConfig(drift_threshold=threshold, adapt=False)
    )
    monitor, log = replay_events(doc.events, config)
    return list(log), True, monitor


def _cmd_watch(args: argparse.Namespace) -> int:
    doc = _load_trace(args.trace)
    if not doc.events:
        _print(["no event log in this trace (schema v1 documents carry none)"])
        return 0
    events, replayed, _monitor = _monitor_events(doc, args.threshold)
    header = (
        "monitoring timeline (replayed offline over the recorded event log):"
        if replayed
        else "monitoring timeline (recorded by the run's live monitor):"
    )
    lines = [header]
    shown = 0
    for event in events:
        if args.kind and event.kind != args.kind:
            continue
        when = "-" if event.time is None else f"{event.time:.2f}"
        attributes = event.attributes
        if event.kind == "session.drift":
            detail = (
                f"planned={attributes.get('planned', 0.0):.6g} "
                f"observed={attributes.get('observed', 0.0):.6g} "
                f"({attributes.get('direction', '?')}, "
                f"{float(attributes.get('relative', 0.0)):+.1%})"
            )
        elif event.kind == "slo.violated":
            detail = (
                f"slo={attributes.get('slo')} objective={attributes.get('objective')} "
                f"measured={float(attributes.get('measured', 0.0)):.4g} "
                f"limit={float(attributes.get('limit', 0.0)):.4g}"
            )
        elif event.kind == "session.renegotiated":
            detail = (
                f"trigger={attributes.get('trigger')} outcome={attributes.get('outcome')} "
                f"level {attributes.get('previous_level')} -> {attributes.get('new_level')}"
            )
        elif event.kind == "broker.observed":
            ewma = attributes.get("ewma_available")
            detail = (
                f"ewma_avail={'-' if ewma is None else format(float(ewma), '.6g')} "
                f"alpha={float(attributes.get('alpha', 1.0)):.3f} "
                f"rej_rate={float(attributes.get('rejection_rate', 0.0)):.3f}"
            )
        else:
            detail = ""
        lines.append(
            f"  t={when:>9} {event.kind:<22} "
            f"{event.session or event.resource or '-':<14} {detail}"
        )
        shown += 1
        if args.limit and shown >= args.limit:
            lines.append(f"  ... (truncated at {args.limit} lines; raise --limit)")
            break
    if shown == 0:
        lines.append("  (no monitoring events)")
    _print(lines)
    return 0


def _cmd_monitor_report(args: argparse.Namespace) -> int:
    doc = _load_trace(args.trace)
    lines: List[str] = []
    monitoring = doc.monitoring
    source = "recorded by the run's live monitor"
    if not monitoring:
        if not doc.events:
            _print(
                [
                    "no monitoring section and no event log in this trace; "
                    "nothing to report"
                ]
            )
            return 0
        _events, _replayed, monitor = _monitor_events(doc, args.threshold)
        monitoring = monitor.report() if monitor is not None else {}
        source = "replayed offline over the recorded event log"
    title = f"monitoring report: {args.trace} ({source})"
    lines += [title, "=" * len(title), ""]
    for key in (
        "events_seen",
        "drift_detected",
        "slo_violations",
        "sessions_tracked",
        "rejection_rate",
        "qos_ewma",
        "psi_ewma",
    ):
        if key in monitoring:
            value = monitoring[key]
            text = "-" if value is None else (
                f"{value:.4g}" if isinstance(value, float) else str(value)
            )
            lines.append(f"  {key:<22} {text}")
    adaptation = monitoring.get("adaptation")
    if isinstance(adaptation, dict):
        lines += ["", "adaptation loop:"]
        lines.append(f"  triggered              {adaptation.get('triggered', 0)}")
        for outcome, count in sorted((adaptation.get("outcomes") or {}).items()):
            lines.append(f"  outcome {outcome:<14} {count}")
        lines.append(
            f"  sessions renegotiated  {adaptation.get('sessions_renegotiated', 0)}"
        )
        lines.append(f"  sessions dropped       {adaptation.get('sessions_dropped', 0)}")
    brokers = monitoring.get("brokers")
    if isinstance(brokers, dict) and brokers:
        lines += [
            "",
            "per-broker estimators:",
            f"  {'resource':<16} {'ewma_avail':>11} {'alpha':>7} {'psi':>7} "
            f"{'rej_rate':>9} {'updates':>8}",
        ]
        for resource in sorted(brokers):
            digest = brokers[resource]

            def cell(key, fmt="{:.4g}"):
                value = digest.get(key)
                return "-" if value is None else fmt.format(value)

            lines.append(
                f"  {resource:<16} {cell('ewma_available'):>11} {cell('alpha'):>7} "
                f"{cell('psi'):>7} {cell('rejection_rate'):>9} "
                f"{digest.get('updates', 0):>8}"
            )
    summary = analyze.adaptation_summary(doc)
    if not summary.empty:
        lines += ["", "causal chains (from the event log):"]
        lines.append(f"  drift detections       {summary.total_drifts}")
        lines.append(f"  renegotiations         {summary.total_renegotiations}")
        lines.append(f"  causally paired        {len(summary.causal_pairs)}")
        if summary.unmatched_renegotiations:
            lines.append(
                f"  unmatched              {summary.unmatched_renegotiations}"
            )
        for session, trigger_seq, reneg_seq in summary.causal_pairs[: args.pairs]:
            lines.append(
                f"    {session}: trigger seq {trigger_seq} -> renegotiated seq {reneg_seq}"
            )
        if len(summary.causal_pairs) > args.pairs:
            lines.append(
                f"    ... ({len(summary.causal_pairs) - args.pairs} more; raise --pairs)"
            )
    _print(lines)
    return 0


# -- export-prom ---------------------------------------------------------------


def _cmd_export_prom(args: argparse.Namespace) -> int:
    doc = _load_trace(args.trace)
    if not doc.metrics:
        raise SystemExit(f"repro-obs: {args.trace} carries no metrics snapshot")
    text = snapshot_exposition(doc.metrics, prefix=args.prefix)
    if args.output:
        Path(args.output).write_text(text)
    else:
        sys.stdout.write(text)
    return 0


# -- stitch --------------------------------------------------------------------


def _cmd_stitch(args: argparse.Namespace) -> int:
    client = _load_trace(args.client)
    daemon = _load_trace(args.daemon)
    report = analyze.stitch_traces(client, daemon)
    if args.output:
        target = Path(args.output)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    total_client = len(report.timelines) + len(report.orphan_client)
    lines = [
        f"stitched {len(report.timelines)}/{total_client} client requests to "
        f"daemon-side telemetry ({len(report.orphan_daemon)} daemon-only traces)"
    ]
    if report.timelines:
        lines.append(
            f"  {'request':<22} {'session':<14} {'outcome':<12} "
            f"{'client_ms':>10} {'daemon_ms':>10} {'spans':>6} {'events':>7}"
        )
        shown = report.timelines if args.limit is None else report.timelines[: args.limit]
        for timeline in shown:
            lines.append(
                f"  {(timeline.request_id or timeline.trace_id[:16]):<22} "
                f"{(timeline.session or '-'):<14} {(timeline.outcome or '-'):<12} "
                f"{1e3 * timeline.client_seconds:>10.2f} "
                f"{1e3 * timeline.daemon_seconds:>10.2f} "
                f"{len(timeline.client_spans) + len(timeline.daemon_spans):>6} "
                f"{len(timeline.daemon_events):>7}"
            )
        if args.limit is not None and len(report.timelines) > args.limit:
            lines.append(
                f"  ... ({len(report.timelines) - args.limit} more; raise --limit)"
            )
    for trace_id in report.orphan_client:
        lines.append(f"  ORPHAN client trace {trace_id}: no daemon-side telemetry")
    _print(lines)
    if args.require_complete and not report.complete:
        _print(
            [
                f"stitch: INCOMPLETE -- {len(report.orphan_client)} client "
                "request(s) have no daemon-side spans or events"
            ]
        )
        return 1
    return 0


# -- reconcile -----------------------------------------------------------------


def _cmd_reconcile(args: argparse.Namespace) -> int:
    from repro.faults.invariants import reconcile_shard_events

    names = [Path(path).name for path in args.traces]
    labels = [
        name if names.count(name) == 1 else path
        for name, path in zip(names, args.traces)
    ]
    shard_events = {
        label: _load_trace(path).events
        for label, path in zip(labels, args.traces)
    }
    report = reconcile_shard_events(shard_events)
    _print(report.describe().splitlines())
    return 0 if report.ok else 1


# -- dashboard (live cluster telemetry) ----------------------------------------


def _parse_target(text: str) -> Tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(
            f"repro-obs: malformed target {text!r}; expected HOST:PORT"
        )
    return host, int(port_text)


def _load_burn_slos(args: argparse.Namespace) -> list:
    from repro.obs.burn import default_cluster_slos
    from repro.obs.slo import BurnRateSLO

    if not args.slo_config:
        return default_cluster_slos(
            short_window=args.short_window,
            long_window=args.long_window,
            budget_window=args.budget_window,
        )
    try:
        payload = json.loads(Path(args.slo_config).read_text())
    except FileNotFoundError:
        raise SystemExit(f"repro-obs: no such file: {args.slo_config}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"repro-obs: {args.slo_config} is not valid JSON: {exc}")
    entries = payload.get("slos") if isinstance(payload, dict) else payload
    if not isinstance(entries, list) or not entries:
        raise SystemExit(
            f"repro-obs: {args.slo_config} must be a JSON list of SLO "
            'objects (or {"slos": [...]})'
        )
    try:
        return [BurnRateSLO.from_dict(entry) for entry in entries]
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"repro-obs: {args.slo_config}: {exc}")


def _quantile_cell(histogram, q: float) -> str:
    if histogram is None or histogram.count <= 0:
        return "-"
    return f"{1e3 * histogram.quantile(q):.1f}"


def _dashboard_lines(store, statuses, log, result, sweep: int,
                     window: float) -> List[str]:
    now = result.ts
    total = result.reachable + result.unreachable
    lines = [
        f"cluster telemetry  sweep {sweep}  "
        f"{result.reachable}/{total} targets up  "
        f"(rates over the last {window:g}s)",
        "",
        f"  {'target':<22} {'role':<15} {'shard':<11} {'up':>3} "
        f"{'admit/s':>8} {'rej/s':>7} {'sess':>6} {'leases':>7} "
        f"{'p50ms':>7} {'p99ms':>7}",
    ]
    for meta in sorted(store.targets(), key=lambda m: (m.role, m.target)):
        if meta.role == "cluster-router":
            admit = store.counter_rate(
                ['repro_cluster_admissions_total{verdict="established"}'],
                window=window, now=now, target=meta.target,
            )
            reject = store.counter_rate(
                ['repro_cluster_admissions_total{verdict="rejected_merit"}',
                 'repro_cluster_admissions_total{verdict="rejected_infra"}'],
                window=window, now=now, target=meta.target,
            )
            sessions = store.latest(meta.target, "repro_cluster_active_sessions")
            leases = None
            phases = None
        else:
            admit = store.counter_rate(
                ['repro_daemon_sessions_total{outcome="established"}'],
                window=window, now=now, target=meta.target,
            )
            reject = store.counter_rate(
                ['repro_daemon_sessions_total{outcome="rejected"}'],
                window=window, now=now, target=meta.target,
            )
            sessions = store.latest(meta.target, "repro_daemon_active_sessions")
            leases = store.latest(
                meta.target,
                'repro_daemon_lease_operations_total{op="committed"}',
            )
            phases = store.histogram_window(
                "repro_daemon_admission_phase_seconds", window=window,
                now=now, target=meta.target, labels={"phase": "plan"},
            )
        lines.append(
            f"  {meta.target:<22} {meta.role or '?':<15} "
            f"{meta.shard or '-':<11} {'1' if meta.up else '0':>3} "
            f"{admit:>8.2f} {reject:>7.2f} "
            f"{'-' if sessions is None else format(int(sessions), 'd'):>6} "
            f"{'-' if leases is None else format(int(leases), 'd'):>7} "
            f"{_quantile_cell(phases, 0.50):>7} "
            f"{_quantile_cell(phases, 0.99):>7}"
        )
    lines += [
        "",
        f"  {'slo':<26} {'kind':<13} {'state':<8} {'burn_s':>8} "
        f"{'burn_l':>8} {'thresh':>7} {'budget':>8}",
    ]
    for status in statuses:
        lines.append(
            f"  {status.slo:<26} {status.kind:<13} {status.state:<8} "
            f"{status.burn_short:>8.2f} {status.burn_long:>8.2f} "
            f"{status.threshold:>7.1f} {status.budget_remaining:>7.0%}"
        )
    alerts = [e for e in log if e.kind.startswith("slo.")]
    if alerts:
        lines += ["", "alerts:"]
        for event in alerts[-6:]:
            attributes = event.attributes
            detail = " ".join(
                f"{key}={attributes[key]}"
                for key in ("state", "burn_short", "burn_long",
                            "budget_remaining")
                if key in attributes
            )
            lines.append(
                f"  [{event.wall:>7.1f}s] {event.kind:<22} "
                f"{attributes.get('slo', '-'):<26} {detail}"
            )
    unreachable = [m for m in store.targets() if not m.up]
    if unreachable:
        lines += [""] + [
            f"  DOWN {meta.target}: {meta.last_error or 'unreachable'} "
            f"(x{meta.consecutive_failures})"
            for meta in unreachable
        ]
    return lines


def _dashboard_snapshot(store, engine, log, sweeps: int,
                        interval: float) -> dict:
    return {
        "schema": "telemetry-dashboard/1",
        "sweeps": sweeps,
        "interval": interval,
        "targets": [
            {
                "target": meta.target,
                "role": meta.role,
                "shard": meta.shard,
                "up": meta.up,
                "consecutive_failures": meta.consecutive_failures,
                "last_error": meta.last_error,
            }
            for meta in store.targets()
        ],
        "slos": [status.to_dict() for status in engine.last_statuses],
        "min_budget": {
            slo.name: engine.min_budget(slo.name) for slo in engine.slos
        },
        "firing": engine.firing(),
        "events": log.to_dicts(),
        "event_counts": {kind: log.count(kind) for kind in log.kinds()},
    }


def _cmd_dashboard(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs import events as _events
    from repro.obs.burn import BurnRateEngine
    from repro.obs.telemetry import TelemetryScraper, TimeSeriesStore

    targets = [_parse_target(text) for text in args.targets]
    slos = _load_burn_slos(args)
    window = max(slo.long_window for slo in slos) if slos else 20.0
    store = TimeSeriesStore()
    log = _events.EventLog()
    engine = BurnRateEngine(slos, store, event_log=log)
    scraper = TelemetryScraper(targets, store, interval=args.interval)
    sweeps = {"count": 0}

    def on_scrape(result) -> None:
        sweeps["count"] += 1
        statuses = engine.evaluate(result.ts)
        if args.quiet:
            return
        frame = _dashboard_lines(
            store, statuses, log, result, sweeps["count"], window
        )
        if not args.no_ansi:
            sys.stdout.write("\x1b[2J\x1b[H")
        sys.stdout.write("\n".join(frame) + "\n")
        sys.stdout.flush()

    async def _run() -> None:
        # SIGTERM/SIGINT stop the sweep loop cleanly so the snapshot
        # below is still written -- CI backgrounds the dashboard and
        # kill -TERMs it once the scenario (and its recovery) is over.
        import signal

        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):
                pass
        run_task = asyncio.create_task(
            scraper.run(iterations=args.iterations, on_scrape=on_scrape)
        )
        stop_task = asyncio.create_task(stop.wait())
        done, pending = await asyncio.wait(
            {run_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)
        if run_task in done:
            await run_task
        await scraper.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    if args.snapshot_json:
        document = _dashboard_snapshot(
            store, engine, log, sweeps["count"], args.interval
        )
        target = Path(args.snapshot_json)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        _print([f"dashboard snapshot written to {args.snapshot_json}"])
    return 0


# -- parser --------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Analyze exported observability trace documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="meta, timings, events, broker and bottleneck overview"
    )
    summarize.add_argument("trace", help="trace JSON document")
    summarize.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="rows in the broker/bottleneck tables (default 5)",
    )
    summarize.set_defaults(func=_cmd_summarize)

    critical = sub.add_parser(
        "critical-path", help="per-session phase self-time breakdown"
    )
    critical.add_argument("trace", help="trace JSON document")
    critical.add_argument(
        "--session", default=None, help="restrict to one session id"
    )
    critical.add_argument(
        "--limit", type=int, default=10, metavar="N",
        help="keep only the N slowest sessions (default 10)",
    )
    critical.set_defaults(func=_cmd_critical_path)

    top = sub.add_parser("top", help="top-K contended (bottleneck) resources")
    top.add_argument("trace", help="trace JSON document")
    top.add_argument(
        "-k", type=int, default=5, help="number of resources to report (default 5)"
    )
    top.set_defaults(func=_cmd_top)

    diff = sub.add_parser(
        "diff", help="numeric deltas between two trace/ledger documents"
    )
    diff.add_argument("base", help="baseline JSON document")
    diff.add_argument("new", help="new JSON document")
    diff.add_argument(
        "--changed-only", action="store_true", help="hide identical leaves"
    )
    diff.add_argument(
        "--gate", action="store_true",
        help="exit 1 when any leaf falls outside the tolerance band",
    )
    diff.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="symmetric relative band for --gate (default 0.25 = +-25%%)",
    )
    diff.add_argument(
        "--timing-tolerance", type=float, default=0.5, metavar="FRAC",
        help="runner-keyed relative band for wall-clock leaves (paths "
        "containing " + ", ".join(analyze.TIMING_FRAGMENTS) + "); applied "
        "when both ledgers share a runner fingerprint, or against the "
        "baseline's recorded timing_baselines entry for the new runner "
        "(default 0.5 = +-50%%)",
    )
    diff.add_argument(
        "--ignore-timing", action="store_true",
        help="exclude wall-clock leaves (paths containing "
        + ", ".join(analyze.TIMING_FRAGMENTS)
        + ") from the gate",
    )
    diff.set_defaults(func=_cmd_diff)

    watch = sub.add_parser(
        "watch",
        help="chronological timeline of monitoring-plane events "
        "(drift, SLO violations, renegotiations)",
    )
    watch.add_argument("trace", help="trace JSON document")
    watch.add_argument(
        "--kind", default=None,
        help="show only this event kind (e.g. session.drift)",
    )
    watch.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="replay detection offline with this drift threshold instead of "
        "using the recorded monitor events",
    )
    watch.add_argument(
        "--limit", type=int, default=200,
        help="maximum timeline lines to print (default 200; 0 = unlimited)",
    )
    watch.set_defaults(func=_cmd_watch)

    monitor_report = sub.add_parser(
        "monitor-report",
        help="monitoring-plane summary: estimators, SLOs, adaptation outcomes, "
        "and drift->renegotiation causal chains",
    )
    monitor_report.add_argument("trace", help="trace JSON document")
    monitor_report.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="replay detection offline with this drift threshold instead of "
        "using the recorded monitoring section",
    )
    monitor_report.add_argument(
        "--pairs", type=int, default=10,
        help="causal drift->renegotiation pairs to list (default 10)",
    )
    monitor_report.set_defaults(func=_cmd_monitor_report)

    prom = sub.add_parser(
        "export-prom", help="Prometheus text exposition of the metrics snapshot"
    )
    prom.add_argument("trace", help="trace JSON document")
    prom.add_argument(
        "-o", "--output", default=None, help="write here instead of stdout"
    )
    prom.add_argument(
        "--prefix", default=DEFAULT_PREFIX,
        help=f"metric name prefix (default {DEFAULT_PREFIX!r})",
    )
    prom.set_defaults(func=_cmd_export_prom)

    stitch = sub.add_parser(
        "stitch",
        help="merge client- and daemon-side trace documents into one "
        "cross-process timeline per request (joined on trace_id)",
    )
    stitch.add_argument("client", help="client-side trace JSON (loadgen --trace-json)")
    stitch.add_argument(
        "daemon", help="daemon-side trace JSON (flight-recorder dump or export)"
    )
    stitch.add_argument(
        "-o", "--output", default=None,
        help="write the merged stitched-trace/1 JSON document here",
    )
    stitch.add_argument(
        "--limit", type=int, default=50, metavar="N",
        help="per-request rows to print (default 50)",
    )
    stitch.add_argument(
        "--require-complete", action="store_true",
        help="exit 1 when any client request lacks daemon-side telemetry",
    )
    stitch.set_defaults(func=_cmd_stitch)

    reconcile = sub.add_parser(
        "reconcile",
        help="verify global capacity conservation across per-shard event "
        "logs (flight dumps or trace documents, one per shard)",
    )
    reconcile.add_argument(
        "traces", nargs="+", metavar="TRACE",
        help="one event-carrying JSON document per shard",
    )
    reconcile.set_defaults(func=_cmd_reconcile)

    dashboard = sub.add_parser(
        "dashboard",
        help="live cluster telemetry: scrape shard/router /metrics on an "
        "interval, evaluate burn-rate SLOs, render admission rates, "
        "phase latencies and alerts",
    )
    dashboard.add_argument(
        "targets", nargs="+", metavar="HOST:PORT",
        help="shard daemons and/or the cluster router to scrape",
    )
    dashboard.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="scrape interval (default 1.0)",
    )
    dashboard.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N sweeps (default: run until interrupted)",
    )
    dashboard.add_argument(
        "--snapshot-json", default=None, metavar="PATH",
        help="on exit, write the final dashboard state -- targets, SLO "
        "statuses, budget low-water marks, every slo.* event -- as JSON "
        "(the CI artifact)",
    )
    dashboard.add_argument(
        "--slo-config", default=None, metavar="PATH",
        help="JSON list of BurnRateSLO objects replacing the built-in "
        "cluster SLOs (see docs/observability.md for the schema)",
    )
    dashboard.add_argument(
        "--short-window", type=float, default=6.0, metavar="SECONDS",
        help="short burn window for the built-in SLOs (default 6)",
    )
    dashboard.add_argument(
        "--long-window", type=float, default=20.0, metavar="SECONDS",
        help="long burn window for the built-in SLOs (default 20)",
    )
    dashboard.add_argument(
        "--budget-window", type=float, default=30.0, metavar="SECONDS",
        help="rolling error-budget window for the built-in SLOs (default 30)",
    )
    dashboard.add_argument(
        "--no-ansi", action="store_true",
        help="append frames as plain text instead of clearing the screen",
    )
    dashboard.add_argument(
        "--quiet", action="store_true",
        help="render no frames (useful with --snapshot-json in CI)",
    )
    dashboard.set_defaults(func=_cmd_dashboard)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
