"""Cluster telemetry: the fleet metrics scraper and time-series store.

Since the sharded-cluster work every ``repro-serve`` shard and the
``repro-cluster`` router expose their own isolated ``/metrics`` and
``/healthz``; this module is the layer that turns those per-process
snapshots into one fleet-wide view:

* :class:`TelemetryScraper` polls each target's ``/healthz`` +
  ``/metrics`` on an interval over the existing keep-alive
  :class:`~repro.service.client.ServiceClient`, parses the exposition
  with :func:`~repro.obs.prom.parse_exposition` (exemplar comments
  included), and records every sample into the store stamped with the
  target's ``role``/``shard`` identity -- auto-detected from
  ``/healthz`` so the operator only supplies ``host:port`` pairs.  A
  target that cannot be reached still produces a point: its synthetic
  ``up`` gauge drops to ``0``.

* :class:`TimeSeriesStore` is a bounded in-memory ring per series.
  Counters get *windowed increases* (consecutive-point deltas clamped
  at zero, so a restarted daemon's counter reset never produces a
  negative rate); histograms are decomposed into per-bucket cumulative
  series at ingest and re-assembled on demand as
  :class:`WindowedHistogram` rollups -- windowed, merged across every
  shard that matches, and quantile-interpolated the same way
  :class:`~repro.obs.metrics.Histogram` does it.

The store is what the :class:`~repro.obs.burn.BurnRateEngine` and the
``repro-obs dashboard`` renderer read; neither ever touches raw
exposition text.

Series *selectors* (``metric{label="value"}``, unmentioned labels
unconstrained) are shared with :class:`~repro.obs.slo.BurnRateSLO` --
see :func:`parse_selector`.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.prom import ParsedExposition, parse_exposition, split_series_key
from repro.service import http as _http
from repro.service.client import ServiceClient

__all__ = [
    "ScrapeResult",
    "TargetMeta",
    "TelemetryScraper",
    "TimeSeriesStore",
    "WindowedHistogram",
    "parse_selector",
    "selector_matches",
]

#: Synthetic per-target gauge recorded by the scraper: 1 reachable, 0 not.
UP_SERIES = "up"

#: Exceptions that mean "target unreachable", mirroring the router's view.
_UNREACHABLE = (ConnectionError, OSError, _http.ProtocolError, asyncio.TimeoutError)


def parse_selector(text: str) -> Tuple[str, Dict[str, str]]:
    """``metric{label="value",...}`` -> (metric, label subset).

    Label values may be quoted or bare (``verdict=established`` and
    ``verdict="established"`` are the same selector); unmentioned labels
    are unconstrained.
    """
    text = text.strip()
    if "{" not in text:
        return text, {}
    name, _, label_text = text.partition("{")
    labels: Dict[str, str] = {}
    for pair in label_text.rstrip("}").split(","):
        pair = pair.strip()
        if not pair:
            continue
        label, eq, value = pair.partition("=")
        if not eq:
            raise ValueError(f"malformed selector label {pair!r} in {text!r}")
        labels[label.strip()] = value.strip().strip('"')
    return name.strip(), labels


def selector_matches(selector: Tuple[str, Mapping[str, str]], name: str,
                     labels: Mapping[str, str]) -> bool:
    """True when the series (name, labels) satisfies the selector."""
    sel_name, sel_labels = selector
    if name != sel_name:
        return False
    return all(labels.get(key) == value for key, value in sel_labels.items())


@dataclass
class TargetMeta:
    """Identity and scrape health of one ``host:port`` target."""

    target: str
    host: str
    port: int
    role: str = ""
    shard: str = ""
    up: bool = False
    consecutive_failures: int = 0
    last_error: str = ""
    last_scrape: Optional[float] = None
    last_health: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ScrapeResult:
    """Outcome of one :meth:`TelemetryScraper.scrape_once` sweep."""

    ts: float
    reachable: int
    unreachable: int
    samples: int


class _Series:
    """One bounded ring of (timestamp, value) points."""

    __slots__ = ("kind", "name", "labels", "points")

    def __init__(self, kind: str, name: str, labels: Dict[str, str],
                 capacity: int) -> None:
        self.kind = kind
        self.name = name
        self.labels = labels
        self.points: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def record(self, ts: float, value: float) -> None:
        self.points.append((ts, value))

    def latest(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def window_increase(self, start: float, *, clamp: bool = True) -> float:
        """Sum of consecutive-point increments newer than ``start``.

        With ``clamp`` (the counter semantics) negative increments --
        a process restart resetting the counter -- contribute zero
        instead of poisoning the window.
        """
        total = 0.0
        previous: Optional[Tuple[float, float]] = None
        for ts, value in self.points:
            if previous is not None and ts > start:
                increment = value - previous[1]
                if clamp:
                    increment = max(0.0, increment)
                total += increment
            previous = (ts, value)
        return total


@dataclass
class WindowedHistogram:
    """A histogram rollup over one window, merged across targets.

    ``counts`` are non-cumulative per-bucket observation counts with the
    trailing ``+Inf`` overflow entry, exactly the layout of
    :class:`~repro.obs.metrics.Histogram`.
    """

    boundaries: Tuple[float, ...]
    counts: List[float]
    count: float
    sum: float

    def fraction_above(self, bound: float) -> float:
        """Fraction of windowed observations in buckets above ``bound``.

        Attribution is by bucket upper edge: a bucket counts as "above"
        when its upper boundary exceeds ``bound``, which is the
        conservative reading a latency SLO wants.
        """
        if self.count <= 0:
            return 0.0
        above = 0.0
        for index, bucket_count in enumerate(self.counts):
            upper = (
                self.boundaries[index]
                if index < len(self.boundaries)
                else float("inf")
            )
            if upper > bound:
                above += bucket_count
        return above / self.count

    def quantile(self, q: float) -> float:
        """Interpolated quantile, clamped to the outermost finite bounds."""
        if self.count <= 0:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                upper = (
                    self.boundaries[index]
                    if index < len(self.boundaries)
                    else (self.boundaries[-1] if self.boundaries else 0.0)
                )
                lower = self.boundaries[index - 1] if index > 0 else 0.0
                if index >= len(self.boundaries):
                    return upper  # overflow bucket: best estimate is the edge
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * fraction
        return self.boundaries[-1] if self.boundaries else 0.0


class TimeSeriesStore:
    """In-memory ring store for scraped fleet samples.

    Keyed twice: by target (one ring set per scraped process) and
    within a target by the parsed sample key.  ``capacity`` bounds each
    series' ring -- at the default 1 Hz scrape, 720 points is twelve
    minutes of history, far past any burn-rate window this repo uses.
    """

    def __init__(self, *, capacity: int = 720) -> None:
        if capacity < 2:
            raise ValueError("TimeSeriesStore capacity must be >= 2")
        self._capacity = capacity
        self._targets: Dict[str, TargetMeta] = {}
        self._series: Dict[str, Dict[str, _Series]] = {}

    # -- ingest ------------------------------------------------------------

    def _meta(self, target: str, host: str, port: int) -> TargetMeta:
        meta = self._targets.get(target)
        if meta is None:
            meta = TargetMeta(target=target, host=host, port=port)
            self._targets[target] = meta
            self._series[target] = {}
        return meta

    def _record(self, target: str, kind: str, key: str, ts: float,
                value: float, baseline: Optional[float] = None) -> None:
        rings = self._series[target]
        series = rings.get(key)
        if series is None:
            # Histogram component keys carry a "#le=..."/"#count"/"#sum"
            # suffix outside the label braces; name/labels always come
            # from the base sample key.
            name, labels = split_series_key(key.split("#", 1)[0])
            series = _Series(kind, name, labels, self._capacity)
            rings[key] = series
            if kind == "counter" and baseline is not None:
                # The target was scraped before without this counter, so
                # the series was born between sweeps at an implied zero.
                # Without this seed a counter whose entire increase lands
                # inside one scrape interval (a burst of rejections, a
                # label value first exercised mid-incident) would never
                # contribute to window_increase -- the first point has
                # no predecessor to diff against.
                series.record(baseline, 0.0)
        series.record(ts, value)

    def record_scrape(self, target: str, parsed: ParsedExposition, *,
                      ts: float, host: str = "", port: int = 0,
                      role: str = "", shard: str = "",
                      health: Optional[Mapping[str, object]] = None) -> int:
        """Ingest one successful scrape; returns the sample count."""
        meta = self._meta(target, host, port)
        baseline = meta.last_scrape
        meta.up = True
        meta.consecutive_failures = 0
        meta.last_error = ""
        meta.last_scrape = ts
        if role:
            meta.role = role
        if shard:
            meta.shard = shard
        if health is not None:
            meta.last_health = dict(health)
        self._record(target, "gauge", UP_SERIES, ts, 1.0)
        samples = 0
        for key, value in parsed.counters.items():
            self._record(target, "counter", key, ts, value, baseline)
            samples += 1
        for key, value in parsed.gauges.items():
            self._record(target, "gauge", key, ts, value)
            samples += 1
        for key, histogram in parsed.histograms.items():
            cumulative = 0.0
            for bound, bucket_count in zip(histogram.boundaries,
                                           histogram.bucket_counts):
                cumulative += bucket_count
                self._record(target, "counter", f"{key}#le={bound:g}", ts,
                             cumulative, baseline)
            self._record(target, "counter", f"{key}#count", ts,
                         histogram.count, baseline)
            self._record(target, "counter", f"{key}#sum", ts, histogram.sum,
                         baseline)
            samples += 1
        return samples

    def record_unreachable(self, target: str, *, ts: float, host: str = "",
                           port: int = 0, error: str = "") -> None:
        """Ingest one failed scrape: ``up`` drops to zero."""
        meta = self._meta(target, host, port)
        meta.up = False
        meta.consecutive_failures += 1
        meta.last_error = error
        meta.last_scrape = ts
        self._record(target, "gauge", UP_SERIES, ts, 0.0)

    # -- reads -------------------------------------------------------------

    def targets(self) -> List[TargetMeta]:
        return list(self._targets.values())

    def _matching_targets(self, role: Optional[str],
                          target: Optional[str] = None) -> Iterable[str]:
        for key, meta in self._targets.items():
            if target is not None and key != target:
                continue
            if role and meta.role != role:
                continue
            yield key

    def latest(self, target: str, key: str) -> Optional[float]:
        series = self._series.get(target, {}).get(key)
        return series.latest() if series is not None else None

    def latest_by_selector(self, selector_text: str, *,
                           role: Optional[str] = None
                           ) -> List[Tuple[str, str, float]]:
        """Latest value of every matching series: (target, key, value)."""
        selector = parse_selector(selector_text)
        out: List[Tuple[str, str, float]] = []
        for target in self._matching_targets(role):
            for key, series in self._series[target].items():
                if "#" in key:
                    continue  # histogram components are not point series
                if not selector_matches(selector, series.name, series.labels):
                    continue
                value = series.latest()
                if value is not None:
                    out.append((target, key, value))
        return out

    def counter_window_sum(self, selectors: Sequence[str], *, window: float,
                           now: float, role: Optional[str] = None,
                           target: Optional[str] = None) -> float:
        """Summed windowed increase of every counter matching a selector."""
        parsed_selectors = [parse_selector(text) for text in selectors]
        start = now - window
        total = 0.0
        for matched in self._matching_targets(role, target):
            for key, series in self._series[matched].items():
                if series.kind != "counter" or "#" in key:
                    continue
                if any(selector_matches(sel, series.name, series.labels)
                       for sel in parsed_selectors):
                    total += series.window_increase(start)
        return total

    def counter_rate(self, selectors: Sequence[str], *, window: float,
                     now: float, role: Optional[str] = None,
                     target: Optional[str] = None) -> float:
        """Per-second rate over the window (summed across matches)."""
        if window <= 0:
            return 0.0
        return self.counter_window_sum(selectors, window=window, now=now,
                                       role=role, target=target) / window

    def histogram_window(self, metric: str, *, window: float, now: float,
                         role: Optional[str] = None,
                         target: Optional[str] = None,
                         labels: Optional[Mapping[str, str]] = None
                         ) -> Optional[WindowedHistogram]:
        """Windowed, cross-target merge of one histogram metric.

        Matching label sets from different shards are summed
        bucket-by-bucket; merging requires identical boundaries (true
        for every repro daemon, which share the default bucket ladder) --
        a mismatched target is skipped rather than silently mangled.
        """
        selector = (metric, dict(labels or {}))
        start = now - window
        boundaries: Optional[Tuple[float, ...]] = None
        merged: Dict[float, float] = {}
        total_count = 0.0
        total_sum = 0.0
        matched = False
        for matched_target in self._matching_targets(role, target):
            rings = self._series[matched_target]
            by_key: Dict[str, Dict[float, _Series]] = {}
            for key, series in rings.items():
                if "#le=" not in key:
                    continue
                base, _, bound_text = key.rpartition("#le=")
                name, series_labels = split_series_key(base)
                if not selector_matches(selector, name, series_labels):
                    continue
                by_key.setdefault(base, {})[float(bound_text)] = series
            # Second pass per series-set (a target can host several
            # label sets of the same metric) so boundary agreement is
            # checked where it matters.
            for base, buckets in by_key.items():
                bounds = tuple(sorted(buckets))
                if boundaries is None:
                    boundaries = bounds
                elif bounds != boundaries:
                    continue
                matched = True
                previous = 0.0
                for bound in bounds:
                    increase = buckets[bound].window_increase(start)
                    bucket_delta = increase - previous
                    merged[bound] = merged.get(bound, 0.0) + max(0.0, bucket_delta)
                    previous = increase
                count_series = rings.get(f"{base}#count")
                sum_series = rings.get(f"{base}#sum")
                count_increase = (
                    count_series.window_increase(start)
                    if count_series is not None else 0.0
                )
                overflow = count_increase - previous
                merged[float("inf")] = merged.get(float("inf"), 0.0) + max(
                    0.0, overflow
                )
                total_count += count_increase
                if sum_series is not None:
                    total_sum += sum_series.window_increase(start, clamp=False)
        if not matched or boundaries is None:
            return None
        counts = [merged.get(bound, 0.0) for bound in boundaries]
        counts.append(merged.get(float("inf"), 0.0))
        return WindowedHistogram(boundaries=boundaries, counts=counts,
                                 count=total_count, sum=total_sum)


class TelemetryScraper:
    """Polls a fleet of ``host:port`` targets into a store.

    Roles and shard identities are discovered, not configured: each
    sweep hits ``/healthz`` first and stamps the target with the
    ``role`` / ``shard`` / ``shard_index`` fields the daemons report.
    One sweep is :meth:`scrape_once`; :meth:`run` loops it on
    ``interval`` with an optional per-sweep callback (the burn engine
    hooks in there).
    """

    def __init__(self, targets: Sequence[Tuple[str, int]],
                 store: Optional[TimeSeriesStore] = None, *,
                 interval: float = 1.0, timeout: float = 2.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not targets:
            raise ValueError("TelemetryScraper needs at least one target")
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        self.store = store if store is not None else TimeSeriesStore()
        self.interval = interval
        self.timeout = timeout
        self._clock = clock
        self._targets = [(host, int(port)) for host, port in targets]
        self._clients: Dict[str, ServiceClient] = {}

    @staticmethod
    def target_key(host: str, port: int) -> str:
        return f"{host}:{port}"

    def _client(self, host: str, port: int) -> ServiceClient:
        key = self.target_key(host, port)
        client = self._clients.get(key)
        if client is None:
            client = ServiceClient(host, port)
            self._clients[key] = client
        return client

    async def _scrape_target(self, host: str, port: int,
                             ts: float) -> Tuple[bool, int]:
        key = self.target_key(host, port)
        client = self._client(host, port)
        try:
            health = await asyncio.wait_for(client.healthz(),
                                            timeout=self.timeout)
            text = await asyncio.wait_for(client.metrics(),
                                          timeout=self.timeout)
        except _UNREACHABLE as exc:
            self.store.record_unreachable(
                key, ts=ts, host=host, port=port,
                error=f"{type(exc).__name__}: {exc}",
            )
            return False, 0
        parsed = parse_exposition(text)
        role = str(health.get("role", "")) if isinstance(health, dict) else ""
        shard = ""
        if isinstance(health, dict):
            if health.get("shard"):
                shard = str(health["shard"])
            elif health.get("shard_index") is not None:
                shard = f"shard-{health['shard_index']}"
        samples = self.store.record_scrape(
            key, parsed, ts=ts, host=host, port=port, role=role,
            shard=shard, health=health if isinstance(health, dict) else None,
        )
        return True, samples

    async def scrape_once(self) -> ScrapeResult:
        """One concurrent sweep over every target."""
        ts = self._clock()
        outcomes = await asyncio.gather(
            *(self._scrape_target(host, port, ts)
              for host, port in self._targets)
        )
        reachable = sum(1 for ok, _ in outcomes if ok)
        samples = sum(count for _, count in outcomes)
        return ScrapeResult(ts=ts, reachable=reachable,
                            unreachable=len(outcomes) - reachable,
                            samples=samples)

    async def run(self, *, iterations: Optional[int] = None,
                  on_scrape: Optional[Callable[[ScrapeResult], object]] = None
                  ) -> int:
        """Scrape on the interval; returns the number of sweeps done.

        ``iterations=None`` loops until cancelled.  ``on_scrape`` runs
        after every sweep (awaited when it returns a coroutine), which
        is where the burn engine and the dashboard renderer attach.
        """
        done = 0
        try:
            while iterations is None or done < iterations:
                started = self._clock()
                result = await self.scrape_once()
                done += 1
                if on_scrape is not None:
                    maybe = on_scrape(result)
                    if asyncio.iscoroutine(maybe):
                        await maybe
                if iterations is not None and done >= iterations:
                    break
                elapsed = self._clock() - started
                await asyncio.sleep(max(0.0, self.interval - elapsed))
        finally:
            await self.aclose()
        return done

    async def aclose(self) -> None:
        clients = list(self._clients.values())
        self._clients.clear()
        for client in clients:
            await client.aclose()
