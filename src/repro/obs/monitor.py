"""Online monitoring plane: streaming estimators, drift detection, SLO
watchdogs, and the §5 adaptation loop.

Where :mod:`repro.obs.analyze` answers questions *after* a run, this
module watches the live :class:`~repro.obs.events.EventLog` stream (via
:meth:`EventLog.subscribe`) and reacts *during* it:

* an :class:`OnlineMonitor` maintains rolling-window estimators per
  broker -- EWMA availability, the §4.3.1 Availability Change Index
  alpha (reusing :class:`repro.brokers.history.AvailabilityHistory`),
  contention index psi, and a rolling rejection rate -- purely from the
  event stream, so it is deterministic for a deterministic run and
  needs no access to the brokers themselves;
* **drift detectors** compare each live session's planned-against
  availability (captured from its ``session.planned`` /
  ``session.admitted`` records) with the broker's current estimate and
  emit ``session.drift`` when they diverge beyond a configurable
  threshold (plus periodic ``broker.observed`` digests);
* **SLO watchdogs** evaluate declarative :class:`~repro.obs.slo.SLOSpec`
  bounds against the estimators and emit ``slo.violated`` (with
  hysteresis -- one event per crossing, re-armed on recovery);
* an :class:`AdaptationPolicy` closes the loop: on drift or violation it
  renegotiates the affected session through
  :meth:`repro.runtime.coordinator.ReservationCoordinator.renegotiate`
  (the §4.3 downgrade/upgrade path), which emits
  ``session.renegotiated``.

The monitor never consumes its own output: monitoring-plane event kinds
are ignored on input, so subscribing it to the same log it emits into
cannot recurse.  Nothing here reads the wall clock into its *logic*
(only the watchdog-latency histogram does), so serial and parallel sweep
runs produce byte-identical monitor digests.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.brokers.history import AvailabilityHistory
from repro.obs import metrics as _metrics
from repro.obs.events import EventLog, ReservationEvent
from repro.obs.slo import SLOSpec, SLOViolation

__all__ = [
    "AdaptationPolicy",
    "BrokerEstimate",
    "MONITOR_EVENT_KINDS",
    "MonitorConfig",
    "OnlineMonitor",
    "replay_events",
]

#: Event kinds the monitoring plane *produces*; ignored on its input so
#: a monitor subscribed to the log it emits into cannot feed on itself.
MONITOR_EVENT_KINDS = frozenset(
    {"broker.observed", "session.drift", "slo.violated", "session.renegotiated"}
)

#: Watchdog-latency boundaries (seconds): event dispatch is microseconds.
WATCHDOG_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2,
)


@dataclass(frozen=True)
class MonitorConfig:
    """Tuning knobs of the online monitoring plane.

    Frozen and picklable so it can ride on a
    :class:`~repro.sim.SimulationConfig` into pool workers.
    """

    #: Relative divergence between a session's planned-against
    #: availability and the live EWMA estimate that counts as drift.
    drift_threshold: float = 0.25
    #: Smoothing factor of the EWMA estimators (1.0 = last sample wins).
    ewma_alpha: float = 0.3
    #: The §4.3.1 averaging window ``T`` of the online alpha, sim time.
    window: float = 3.0
    #: Rolling window of the rejection-rate estimator, sim time.
    rate_window: float = 60.0
    #: Emit one ``broker.observed`` digest every N availability updates
    #: of a resource (0 disables the digests).
    observe_every: int = 8
    #: Declarative objectives the watchdogs evaluate.
    slos: Tuple[SLOSpec, ...] = ()
    #: Drive the adaptation loop (renegotiations); False = detect only.
    adapt: bool = True
    #: Renegotiation budget per session.
    max_renegotiations: int = 2
    #: Minimum sim time between renegotiations of one session.
    cooldown: float = 5.0
    #: Bound on the adaptation queue; overflow is counted, not grown.
    queue_capacity: int = 256

    def __post_init__(self) -> None:
        if self.drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be positive, got {self.drift_threshold!r}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must lie in (0, 1], got {self.ewma_alpha!r}"
            )
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window!r}")
        if self.rate_window <= 0:
            raise ValueError(
                f"rate_window must be positive, got {self.rate_window!r}"
            )
        if self.observe_every < 0:
            raise ValueError(
                f"observe_every must be >= 0, got {self.observe_every!r}"
            )
        if self.max_renegotiations < 0:
            raise ValueError(
                f"max_renegotiations must be >= 0, got {self.max_renegotiations!r}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown!r}")
        if self.queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive, got {self.queue_capacity!r}"
            )


class BrokerEstimate:
    """Rolling estimators of one resource, fed purely from its events."""

    __slots__ = (
        "resource",
        "ewma_available",
        "alpha",
        "psi",
        "updates",
        "_history",
        "_attempts",
    )

    def __init__(self, resource: str, window: float) -> None:
        self.resource = resource
        #: EWMA of observed availability (None until the first sample --
        #: an empty history never divides or drifts).
        self.ewma_available: Optional[float] = None
        #: Latest §4.3.1 Availability Change Index (1.0 = unchanged).
        self.alpha: float = 1.0
        #: EWMA of plan psi when this resource was the bottleneck.
        self.psi: Optional[float] = None
        #: Availability samples folded in so far.
        self.updates: int = 0
        self._history = AvailabilityHistory(window=window)
        #: (sim time, rejected) of each admission attempt, rolling.
        self._attempts: Deque[Tuple[float, bool]] = deque()

    def record_available(
        self, now: Optional[float], available: float, ewma_alpha: float
    ) -> None:
        """Fold one availability observation into the estimators."""
        if self.ewma_available is None:
            self.ewma_available = float(available)
        else:
            self.ewma_available += ewma_alpha * (available - self.ewma_available)
        if now is not None:
            self.alpha = self._history.alpha(now, available)
        self.updates += 1

    def record_attempt(
        self, now: Optional[float], rejected: bool, rate_window: float
    ) -> None:
        """Record one admission attempt for the rolling rejection rate."""
        if now is None:
            return
        self._attempts.append((now, rejected))
        self._prune(now, rate_window)

    def record_psi(self, psi: float, ewma_alpha: float) -> None:
        """Fold one bottleneck contention index into the psi EWMA."""
        if self.psi is None:
            self.psi = float(psi)
        else:
            self.psi += ewma_alpha * (psi - self.psi)

    def rejection_rate(self, now: Optional[float], rate_window: float) -> float:
        """Rejected fraction of the attempts within the rolling window."""
        if now is not None:
            self._prune(now, rate_window)
        if not self._attempts:
            return 0.0
        rejected = sum(1 for _t, was_rejected in self._attempts if was_rejected)
        return rejected / len(self._attempts)

    def attempt_counts(
        self, now: Optional[float], rate_window: float
    ) -> Tuple[int, int]:
        """(attempts, rejections) within the rolling window."""
        if now is not None:
            self._prune(now, rate_window)
        rejected = sum(1 for _t, was_rejected in self._attempts if was_rejected)
        return len(self._attempts), rejected

    def _prune(self, now: float, rate_window: float) -> None:
        cutoff = now - rate_window
        while self._attempts and self._attempts[0][0] < cutoff:
            self._attempts.popleft()

    def digest(self, now: Optional[float], rate_window: float) -> dict:
        """JSON-compatible snapshot of the estimators."""
        return {
            "ewma_available": self.ewma_available,
            "alpha": self.alpha,
            "psi": self.psi,
            "rejection_rate": self.rejection_rate(now, rate_window),
            "updates": self.updates,
        }


@dataclass
class _SessionWatch:
    """What one live session's reservation was planned against."""

    service: str = ""
    #: resource -> availability the plan was computed from.
    planned_available: Dict[str, float] = field(default_factory=dict)
    psi: float = 0.0
    bottleneck: Optional[str] = None
    #: Paper-style numeric end-to-end level (higher = better).
    level: Optional[int] = None


class OnlineMonitor:
    """Streaming consumer of the event log; the monitoring plane's core.

    Subscribe :meth:`on_event` to a live :class:`EventLog` (or feed a
    recorded stream through :func:`replay_events`).  Emissions go to
    ``log`` -- usually the same log it subscribes to; its own event
    kinds are ignored on input, so that is not circular.
    """

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        *,
        log: Optional[EventLog] = None,
        policy: Optional["AdaptationPolicy"] = None,
    ) -> None:
        self.config = config if config is not None else MonitorConfig()
        self.log = log
        self.policy = policy
        if policy is not None:
            policy.monitor = self
        self.estimates: Dict[str, BrokerEstimate] = {}
        #: session -> baseline staged by ``session.planned``, promoted
        #: to :attr:`_active` by ``session.admitted``.
        self._staged: Dict[str, _SessionWatch] = {}
        self._active: Dict[str, _SessionWatch] = {}
        #: resource -> active sessions planned against it.
        self._by_resource: Dict[str, Set[str]] = {}
        #: session -> resources already flagged since the last admit.
        self._drifted: Dict[str, Set[str]] = {}
        #: EWMA of admitted sessions' numeric levels (the delivered-QoS
        #: estimator the ``min_qos_level`` objective watches).
        self._qos_ewma: Optional[float] = None
        #: EWMA of planned bottleneck psi (the ``max_psi`` objective).
        self._psi_ewma: Optional[float] = None
        #: (slo name, objective) -> currently tripped (hysteresis).
        self._slo_state: Dict[Tuple[str, str], bool] = {}
        self._outcomes = 0
        self._sessions_seen: Set[str] = set()
        self._last_time: Optional[float] = None
        self.events_seen = 0
        self.drift_detected = 0
        self.slo_violations = 0

    # -- stream input ------------------------------------------------------

    def on_event(self, event: ReservationEvent) -> None:
        """The :meth:`EventLog.subscribe` callback."""
        if event.kind in MONITOR_EVENT_KINDS or event.kind == "log.truncated":
            return
        started = _time.perf_counter()
        self.events_seen += 1
        if event.time is not None:
            self._last_time = event.time
        try:
            self._dispatch(event)
        finally:
            registry = _metrics.active_registry()
            if registry is not None:
                registry.histogram(
                    "monitor.watchdog_seconds", buckets=WATCHDOG_BUCKETS
                ).observe(_time.perf_counter() - started)

    def _dispatch(self, event: ReservationEvent) -> None:
        kind = event.kind
        if kind == "broker.probe":
            if event.attributes.get("stale"):
                return  # stale observations describe the past, not now
            self._observe(event.resource, event.time, event.attributes.get("available"))
        elif kind == "broker.grant":
            attributes = event.attributes
            available = attributes.get("available")
            requested = attributes.get("requested", 0.0)
            post = None
            if available is not None:
                post = float(available) - float(requested)
            self._record_attempt(event.resource, event.time, rejected=False)
            self._observe(event.resource, event.time, post)
        elif kind == "broker.release":
            self._observe(event.resource, event.time, event.attributes.get("available"))
        elif kind == "broker.reject":
            self._record_attempt(event.resource, event.time, rejected=True)
            self._observe(event.resource, event.time, event.attributes.get("available"))
        elif kind == "session.planned":
            self._stage_session(event)
        elif kind == "session.admitted":
            self._admit_session(event)
            self._evaluate_slos(event.time)
        elif kind == "session.rejected":
            if event.session:
                self._sessions_seen.add(event.session)
            self._outcomes += 1
            self._evaluate_slos(event.time)

    # -- per-broker estimators ---------------------------------------------

    def _estimate_for(self, resource: str) -> BrokerEstimate:
        estimate = self.estimates.get(resource)
        if estimate is None:
            estimate = self.estimates[resource] = BrokerEstimate(
                resource, self.config.window
            )
        return estimate

    def _observe(
        self, resource: Optional[str], now: Optional[float], available: object
    ) -> None:
        if resource is None or available is None:
            return
        estimate = self._estimate_for(resource)
        estimate.record_available(now, float(available), self.config.ewma_alpha)
        if (
            self.config.observe_every
            and estimate.updates % self.config.observe_every == 0
        ):
            self._emit(
                "broker.observed",
                resource=resource,
                time=now,
                **estimate.digest(now, self.config.rate_window),
            )
        self._check_drift(resource, now)

    def _record_attempt(
        self, resource: Optional[str], now: Optional[float], *, rejected: bool
    ) -> None:
        if resource is None:
            return
        self._estimate_for(resource).record_attempt(
            now, rejected, self.config.rate_window
        )

    # -- session baselines --------------------------------------------------

    def _stage_session(self, event: ReservationEvent) -> None:
        if not event.session:
            return
        available = event.attributes.get("available") or {}
        self._staged[event.session] = _SessionWatch(
            service=str(event.attributes.get("service", "")),
            planned_available={
                str(resource): float(value) for resource, value in available.items()
            },
            psi=float(event.attributes.get("psi", 0.0)),
            bottleneck=event.attributes.get("bottleneck"),
        )
        psi = event.attributes.get("psi")
        if psi is not None:
            if self._psi_ewma is None:
                self._psi_ewma = float(psi)
            else:
                self._psi_ewma += self.config.ewma_alpha * (
                    float(psi) - self._psi_ewma
                )
            bottleneck = event.attributes.get("bottleneck")
            if bottleneck:
                self._estimate_for(str(bottleneck)).record_psi(
                    float(psi), self.config.ewma_alpha
                )

    def _admit_session(self, event: ReservationEvent) -> None:
        session_id = event.session
        if not session_id:
            return
        watch = self._staged.pop(session_id, None)
        if watch is None:
            # Admission without a visible plan record (e.g. a truncated
            # stream): nothing to baseline against, track level only.
            watch = _SessionWatch(service=str(event.attributes.get("service", "")))
        level = event.attributes.get("numeric_level")
        watch.level = int(level) if level is not None else None
        # A re-admission (renegotiation or fault re-plan) refreshes the
        # baseline: old drift flags and resource links are dropped.
        self._forget_session(session_id)
        self._active[session_id] = watch
        for resource in watch.planned_available:
            self._by_resource.setdefault(resource, set()).add(session_id)
        self._sessions_seen.add(session_id)
        self._outcomes += 1
        if self.policy is not None:
            self.policy.set_level(session_id, watch.level)
        if watch.level is not None:
            if self._qos_ewma is None:
                self._qos_ewma = float(watch.level)
            else:
                self._qos_ewma += self.config.ewma_alpha * (
                    watch.level - self._qos_ewma
                )

    def _forget_session(self, session_id: str) -> None:
        previous = self._active.pop(session_id, None)
        if previous is not None:
            for resource in previous.planned_available:
                sessions = self._by_resource.get(resource)
                if sessions is not None:
                    sessions.discard(session_id)
                    if not sessions:
                        del self._by_resource[resource]
        self._drifted.pop(session_id, None)

    def session_closed(self, session_id: str) -> None:
        """Stop watching a session (its hold finished or it tore down)."""
        self._forget_session(session_id)
        self._staged.pop(session_id, None)

    # -- drift detection ----------------------------------------------------

    def _check_drift(self, resource: str, now: Optional[float]) -> None:
        estimate = self.estimates.get(resource)
        if estimate is None or estimate.ewma_available is None:
            return
        observed = estimate.ewma_available
        # Nested renegotiations mutate the watch sets mid-iteration;
        # walk a sorted copy (sorted for deterministic firing order).
        for session_id in sorted(self._by_resource.get(resource, ())):
            watch = self._active.get(session_id)
            if watch is None:
                continue
            planned = watch.planned_available.get(resource)
            if planned is None:
                continue
            relative = abs(observed - planned) / max(abs(planned), 1e-9)
            if relative <= self.config.drift_threshold:
                continue
            flagged = self._drifted.setdefault(session_id, set())
            if resource in flagged:
                continue  # one drift event per (session, resource) baseline
            flagged.add(resource)
            self.drift_detected += 1
            self._emit(
                "session.drift",
                session=session_id,
                resource=resource,
                time=now,
                planned=planned,
                observed=observed,
                relative=relative,
                direction="down" if observed < planned else "up",
            )
            registry = _metrics.active_registry()
            if registry is not None:
                registry.counter("monitor.drift_detected", resource=resource).inc()
            if self.policy is not None:
                self.policy.on_drift(session_id, resource, now)

    # -- SLO watchdogs ------------------------------------------------------

    def global_rejection_rate(self, now: Optional[float]) -> float:
        """Rejected fraction of all admission attempts in the window."""
        attempts = 0
        rejected = 0
        for estimate in self.estimates.values():
            seen, bad = estimate.attempt_counts(now, self.config.rate_window)
            attempts += seen
            rejected += bad
        return rejected / attempts if attempts else 0.0

    def _evaluate_slos(self, now: Optional[float]) -> None:
        if not self.config.slos:
            return
        for spec in self.config.slos:
            if self._outcomes < spec.min_sessions:
                continue
            checks: List[Tuple[str, float, float, bool]] = []
            if spec.max_rejection_rate is not None:
                measured = self.global_rejection_rate(now)
                checks.append(
                    (
                        "rejection_rate",
                        measured,
                        spec.max_rejection_rate,
                        measured > spec.max_rejection_rate,
                    )
                )
            if spec.min_qos_level is not None and self._qos_ewma is not None:
                checks.append(
                    (
                        "qos_level",
                        self._qos_ewma,
                        spec.min_qos_level,
                        self._qos_ewma < spec.min_qos_level,
                    )
                )
            if spec.max_psi is not None and self._psi_ewma is not None:
                checks.append(
                    ("psi", self._psi_ewma, spec.max_psi, self._psi_ewma > spec.max_psi)
                )
            for objective, measured, limit, violated in checks:
                key = (spec.name, objective)
                if not violated:
                    self._slo_state[key] = False  # recovered: re-arm
                    continue
                if self._slo_state.get(key):
                    continue  # still tripped: one event per crossing
                self._slo_state[key] = True
                self.slo_violations += 1
                violation = SLOViolation(spec.name, objective, measured, limit)
                session_id = self._slo_candidate(objective)
                self._emit(
                    "slo.violated",
                    session=session_id,
                    time=now,
                    **violation.to_attributes(),
                )
                registry = _metrics.active_registry()
                if registry is not None:
                    registry.counter("monitor.slo_violations", slo=spec.name).inc()
                if self.policy is not None and session_id is not None:
                    self.policy.on_violation(session_id, spec.name, now)

    def _slo_candidate(self, objective: str) -> Optional[str]:
        """The live session to renegotiate for a tripped objective.

        A too-low delivered QoS is best helped by re-planning the worst
        session (it may now upgrade); pressure objectives (psi, rejection
        rate) by re-planning the most contended one (it may downgrade and
        free the bottleneck).  Ties break on session id for determinism.
        """
        if not self._active:
            return None
        if objective == "qos_level":
            return min(
                self._active,
                key=lambda sid: (
                    self._active[sid].level
                    if self._active[sid].level is not None
                    else 1 << 30,
                    sid,
                ),
            )
        return max(self._active, key=lambda sid: (self._active[sid].psi, sid))

    # -- output -------------------------------------------------------------

    def _emit(
        self,
        kind: str,
        *,
        session: Optional[str] = None,
        resource: Optional[str] = None,
        time: Optional[float] = None,
        **attributes: object,
    ) -> None:
        if self.log is not None:
            self.log.emit(
                kind, session=session, resource=resource, time=time, **attributes
            )

    def report(self) -> dict:
        """JSON-compatible digest of the plane's state (the trace
        document's ``monitoring`` section).

        Contains no wall-clock values, so two deterministic runs yield
        byte-identical reports regardless of worker count.
        """
        now = self._last_time
        document = {
            "events_seen": self.events_seen,
            "drift_detected": self.drift_detected,
            "slo_violations": self.slo_violations,
            "sessions_tracked": len(self._sessions_seen),
            "sessions_live": len(self._active),
            "qos_ewma": self._qos_ewma,
            "psi_ewma": self._psi_ewma,
            "rejection_rate": self.global_rejection_rate(now),
            "brokers": {
                resource: self.estimates[resource].digest(now, self.config.rate_window)
                for resource in sorted(self.estimates)
            },
        }
        if self.policy is not None:
            document["adaptation"] = self.policy.stats()
        return document


def replay_events(
    events: Sequence[ReservationEvent],
    config: Optional[MonitorConfig] = None,
) -> Tuple[OnlineMonitor, EventLog]:
    """Run the monitoring plane offline over a recorded event stream.

    What ``repro-obs watch``/``monitor-report`` use on traces that were
    recorded without a live monitor: the detections land in the returned
    private :class:`EventLog` instead of the (absent) live one.  Events
    already produced by a live monitor in the recording are ignored on
    input, so replaying a monitored trace does not double-detect.
    """
    log = EventLog()
    monitor = OnlineMonitor(config, log=log)
    for event in sorted(events, key=lambda e: e.seq):
        monitor.on_event(event)
    return monitor, log


class AdaptationPolicy:
    """The §5 loop: drift/violation in, renegotiation out.

    Sessions are registered with :meth:`watch` (carrying everything
    :meth:`~repro.runtime.coordinator.ReservationCoordinator.renegotiate`
    needs) and deregistered with :meth:`unwatch`.  Trigger handling is
    synchronous but reentrancy-safe: a renegotiation's own events may
    raise further triggers, which queue (bounded) and drain in order.
    """

    def __init__(self, coordinator, config: Optional[MonitorConfig] = None) -> None:
        self.coordinator = coordinator
        self.config = config if config is not None else MonitorConfig()
        self.monitor: Optional[OnlineMonitor] = None
        self._contexts: Dict[str, dict] = {}
        self._pending: Deque[Tuple[str, str, Optional[float]]] = deque()
        self._draining = False
        self._count: Dict[str, int] = {}
        self._last: Dict[str, float] = {}
        #: outcome -> count over every renegotiation attempted.
        self.outcomes: Dict[str, int] = {}
        #: session -> numeric level it holds after renegotiation(s).
        self.delivered: Dict[str, int] = {}
        #: sessions that lost their reservation (failed, not restorable).
        self.dropped: Set[str] = set()
        self.triggered = 0
        self.queue_dropped = 0

    # -- session registry ---------------------------------------------------

    def watch(
        self,
        session_id: str,
        *,
        service_name: str,
        binding,
        planner,
        component_hosts=None,
        source_label: Optional[str] = None,
        demand_scale: float = 1.0,
        level: Optional[int] = None,
    ) -> None:
        """Register a live session and the arguments to re-plan it."""
        self._contexts[session_id] = {
            "service_name": service_name,
            "binding": binding,
            "planner": planner,
            "component_hosts": component_hosts,
            "source_label": source_label,
            "demand_scale": demand_scale,
            "level": level,
        }

    def unwatch(self, session_id: str) -> None:
        """Deregister a session (finished or torn down)."""
        self._contexts.pop(session_id, None)

    def set_level(self, session_id: str, level: Optional[int]) -> None:
        """Record the numeric level a watched session was admitted at."""
        context = self._contexts.get(session_id)
        if context is not None:
            context["level"] = level

    # -- triggers -----------------------------------------------------------

    def on_drift(
        self, session_id: str, resource: str, now: Optional[float]
    ) -> None:
        """Drift detected against ``resource``: queue a renegotiation."""
        self._enqueue(session_id, "drift", now)

    def on_violation(self, session_id: str, slo: str, now: Optional[float]) -> None:
        """SLO tripped: queue a renegotiation of the candidate session."""
        self._enqueue(session_id, f"slo:{slo}", now)

    def _enqueue(self, session_id: str, trigger: str, now: Optional[float]) -> None:
        if session_id not in self._contexts or session_id in self.dropped:
            return
        if self._count.get(session_id, 0) >= self.config.max_renegotiations:
            return
        last = self._last.get(session_id)
        if last is not None and now is not None and now - last < self.config.cooldown:
            return
        if len(self._pending) >= self.config.queue_capacity:
            self.queue_dropped += 1
            return
        self._pending.append((session_id, trigger, now))
        self._drain()

    def _drain(self) -> None:
        if self._draining:
            return  # a renegotiation in flight raised this trigger
        self._draining = True
        try:
            while self._pending:
                session_id, trigger, now = self._pending.popleft()
                self._renegotiate(session_id, trigger, now)
        finally:
            self._draining = False

    def _renegotiate(
        self, session_id: str, trigger: str, now: Optional[float]
    ) -> None:
        context = self._contexts.get(session_id)
        if context is None or session_id in self.dropped:
            return
        if self._count.get(session_id, 0) >= self.config.max_renegotiations:
            return
        self._count[session_id] = self._count.get(session_id, 0) + 1
        if now is not None:
            self._last[session_id] = now
        self.triggered += 1
        renegotiation = self.coordinator.renegotiate(
            session_id,
            context["service_name"],
            context["binding"],
            context["planner"],
            component_hosts=context["component_hosts"],
            source_label=context["source_label"],
            demand_scale=context["demand_scale"],
            trigger=trigger,
            previous_level=context["level"],
            now=now,
        )
        outcome = renegotiation.outcome
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if renegotiation.success:
            context["level"] = renegotiation.new_level
            if renegotiation.new_level is not None:
                self.delivered[session_id] = renegotiation.new_level
        elif outcome == "failed_dropped":
            self.dropped.add(session_id)

    # -- outcome patching ---------------------------------------------------

    def finalize_outcome(self, outcome):
        """Fold renegotiations into a finished session's outcome.

        A session whose reservation was renegotiated delivered its *new*
        level; one that lost its reservation to a non-restorable failed
        renegotiation did not deliver at all.  Returns a (possibly
        replaced) :class:`~repro.runtime.session.SessionOutcome`.
        """
        if outcome.session_id in self.dropped:
            if not outcome.success:
                return outcome
            return replace(
                outcome, success=False, qos_level=None, reason="renegotiation_failed"
            )
        level = self.delivered.get(outcome.session_id)
        if outcome.success and level is not None and level != outcome.qos_level:
            return replace(outcome, qos_level=level)
        return outcome

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict:
        """JSON-compatible digest (the monitoring report's
        ``adaptation`` section)."""
        return {
            "triggered": self.triggered,
            "outcomes": dict(sorted(self.outcomes.items())),
            "sessions_renegotiated": len(self.delivered),
            "sessions_dropped": len(self.dropped),
            "queue_dropped": self.queue_dropped,
        }
