"""Request-scoped trace context: W3C-style ids across the service boundary.

A :class:`TraceContext` carries the identity of one end-to-end request:
a 128-bit ``trace_id`` shared by every process that touches the request,
a 64-bit ``span_id`` naming the current hop, and an optional
human-oriented ``request_id`` (the daemon's per-request tag, or the
load generator's session id).  The context travels between processes as
a W3C ``traceparent`` header (``00-<trace_id>-<span_id>-<flags>``) and
within a process as a :class:`contextvars.ContextVar`, so every asyncio
task sees exactly the context its request bound -- two concurrent
admissions can never observe each other's ids.

The tracer (:mod:`repro.obs.trace`) and the event log
(:mod:`repro.obs.events`) read the current context at record time and
stamp ``trace_id``/``request_id`` onto every :class:`SpanRecord` and
:class:`ReservationEvent` emitted while a context is bound.  Nothing is
stamped when no context is active, so run-to-completion simulations are
byte-identical to their pre-tracing selves.

Parsing is deliberately lenient: a malformed or truncated
``traceparent`` yields ``None`` and the caller starts a fresh root
trace -- a bad header must never fail a request.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Iterator, Optional

__all__ = [
    "TRACEPARENT_HEADER",
    "REQUEST_ID_HEADER",
    "TraceContext",
    "bind_trace_context",
    "child_context",
    "current_trace_context",
    "format_traceparent",
    "new_trace_context",
    "parse_traceparent",
    "reset_trace_context",
    "trace_context",
]

#: The propagation headers (lowercase, as :mod:`repro.service.http`
#: normalises inbound header names).
TRACEPARENT_HEADER = "traceparent"
REQUEST_ID_HEADER = "x-request-id"

_SUPPORTED_VERSION = "00"
_HEX = set("0123456789abcdef")


@dataclass(frozen=True)
class TraceContext:
    """One request's identity (immutable; derive children, never mutate)."""

    #: 32 lowercase hex chars shared across every hop of the request.
    trace_id: str
    #: 16 lowercase hex chars naming this hop.
    span_id: str
    #: The upstream hop's span id (None at the root).
    parent_id: Optional[str] = None
    #: Free-form request tag stamped onto spans/events alongside trace_id.
    request_id: Optional[str] = None

    def traceparent(self) -> str:
        """This context as an outbound ``traceparent`` header value."""
        return format_traceparent(self)


def _hex_id(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


def new_trace_context(request_id: Optional[str] = None) -> TraceContext:
    """A fresh root context (new trace_id, no parent)."""
    return TraceContext(
        trace_id=_hex_id(16), span_id=_hex_id(8), request_id=request_id
    )


def child_context(
    parent: TraceContext, request_id: Optional[str] = None
) -> TraceContext:
    """A new hop within ``parent``'s trace (fresh span_id, same trace_id)."""
    return replace(
        parent,
        span_id=_hex_id(8),
        parent_id=parent.span_id,
        request_id=request_id if request_id is not None else parent.request_id,
    )


def _is_hex(text: str, length: int) -> bool:
    return len(text) == length and all(ch in _HEX for ch in text)


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Decode a ``traceparent`` header; None on anything malformed.

    Accepts exactly the W3C shape
    ``<2 hex version>-<32 hex trace_id>-<16 hex parent_id>-<2 hex flags>``
    with lowercase hex digits; all-zero trace or span ids are invalid per
    the spec and also yield None.  Callers treat None as "start a fresh
    root trace" -- a truncated or garbage header never errors.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, parent_id, flags = parts
    if not _is_hex(version, 2) or version == "ff":
        return None
    if not _is_hex(trace_id, 32) or set(trace_id) == {"0"}:
        return None
    if not _is_hex(parent_id, 16) or set(parent_id) == {"0"}:
        return None
    if not _is_hex(flags, 2):
        return None
    return TraceContext(trace_id=trace_id, span_id=_hex_id(8), parent_id=parent_id)


def format_traceparent(context: TraceContext) -> str:
    """Encode a context as an outbound ``traceparent`` header value."""
    return f"{_SUPPORTED_VERSION}-{context.trace_id}-{context.span_id}-01"


#: The bound context of the current task/thread; None outside a request.
_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace_context() -> Optional[TraceContext]:
    """The context bound in this task, or None outside any request."""
    return _CURRENT.get()


def bind_trace_context(context: Optional[TraceContext]):
    """Bind ``context`` in the current task; returns the reset token."""
    return _CURRENT.set(context)


def reset_trace_context(token) -> None:
    """Undo a :func:`bind_trace_context` (pass its returned token)."""
    _CURRENT.reset(token)


@contextmanager
def trace_context(context: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Bind ``context`` for the duration of the block, then restore."""
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)
