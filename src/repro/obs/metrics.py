"""Counters, gauges and histograms for brokers, proxies and sessions.

A :class:`MetricsRegistry` hands out labelled instruments on demand:

* :class:`Counter` -- monotonically increasing count (grants, rejections,
  releases, session outcomes);
* :class:`Gauge` -- last-written value (per-broker utilization);
* :class:`Histogram` -- fixed-boundary bucketed distribution (establish
  latency, the contention index of chosen plans).

Instruments are keyed by ``(name, sorted labels)``, so
``registry.counter("broker.grants", resource="cpu:H1")`` always returns
the same object.  Like :mod:`repro.obs.trace`, instrumented code goes
through the module-level :func:`active_registry`; when no registry is
installed (the default) the check is a single global read and recording
costs nothing.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PSI_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "install",
    "metering",
    "uninstall",
]

#: Establish-latency boundaries (seconds): sub-millisecond planning up
#: to protocol round trips.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Contention-index boundaries: psi of an admissible plan lies in (0, 1].
DEFAULT_PSI_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)

Labels = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount!r}")
        self.value += amount

    def rate(self, elapsed: float) -> float:
        """Events per time unit over an ``elapsed`` interval.

        ``elapsed`` is whatever clock the caller accounts in (wall
        seconds, simulated time units); non-positive intervals raise.
        """
        if elapsed <= 0:
            raise ValueError(f"elapsed interval must be positive, got {elapsed!r}")
        return self.value / elapsed

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {"value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta``."""
        self.value += delta

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {"value": self.value}


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``boundaries`` are inclusive upper bounds of the finite buckets; one
    implicit overflow bucket catches everything beyond the last bound.

    An observation may carry an *exemplar* -- an opaque string (in
    practice a trace_id) kept per bucket, last write wins.  Exemplars
    live beside the distribution in :attr:`exemplars` and are exposed by
    the Prometheus renderer; :meth:`to_dict` deliberately excludes them
    so trace documents, ledgers and the diff gate see an unchanged
    shape.
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "sum", "min", "max", "exemplars")

    def __init__(self, boundaries: Tuple[float, ...]) -> None:
        if not boundaries:
            raise ValueError("a histogram needs at least one bucket boundary")
        if list(boundaries) != sorted(boundaries):
            raise ValueError(f"bucket boundaries must be sorted: {boundaries!r}")
        self.boundaries = tuple(float(b) for b in boundaries)
        self.bucket_counts = [0] * (len(boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket index -> (observed value, exemplar string); last write wins.
        self.exemplars: Dict[int, Tuple[float, str]] = {}

    def observe(self, value: float, *, exemplar: Optional[str] = None) -> None:
        """Record one observation, optionally tagged with an exemplar."""
        bucket = bisect.bisect_left(self.boundaries, value)
        self.bucket_counts[bucket] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if exemplar is not None:
            self.exemplars[bucket] = (value, exemplar)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) from the buckets.

        Linear interpolation within the containing bucket, the standard
        Prometheus ``histogram_quantile`` estimate; observations landing
        in the overflow bucket are reported as the recorded maximum.
        Returns 0 on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0.0
        lower = 0.0
        for bound, bucket_count in zip(self.boundaries, self.bucket_counts):
            if bucket_count and cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (bound - lower)
                # The true extremes are tracked exactly; never report an
                # interpolated value outside the observed range.
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            cumulative += bucket_count
            lower = bound
        return self.max if self.max is not None else lower

    def to_dict(self) -> dict:
        """JSON-compatible representation (boundaries + counts + stats)."""
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


def _label_key(labels: Dict[str, object]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _sort_key(item):
    """Deterministic export order: by name, then formatted label string.

    Every reader of the registry (snapshot, rows, iter_*) sorts with this
    one key so trace documents, CSV rows and ``repro-obs diff`` output
    are stable across runs and Python versions.
    """
    (name, labels) = item[0]
    return (name, format_labels(labels))


def format_labels(labels: Labels) -> str:
    """Prometheus-style ``{k=v,...}`` suffix ("" when unlabelled)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class MetricsRegistry:
    """Directory of every instrument created during one run."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}

    # -- instrument access (get-or-create) ----------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for (name, labels), created on first use."""
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        *,
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram for (name, labels), created on first use.

        ``buckets`` only matters at creation; later calls reuse the
        existing boundaries.
        """
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # -- reading -------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of a counter (0 when never written)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        return sum(
            instrument.value
            for (counter_name, _labels), instrument in self._counters.items()
            if counter_name == name
        )

    def iter_counters(self) -> List[Tuple[str, Dict[str, str], float]]:
        """Every counter as ``(name, labels, value)``, sorted by key."""
        return [
            (name, dict(labels), counter.value)
            for (name, labels), counter in sorted(self._counters.items(), key=_sort_key)
        ]

    def iter_gauges(self) -> List[Tuple[str, Dict[str, str], float]]:
        """Every gauge as ``(name, labels, value)``, sorted by key."""
        return [
            (name, dict(labels), gauge.value)
            for (name, labels), gauge in sorted(self._gauges.items(), key=_sort_key)
        ]

    def iter_histograms(self) -> List[Tuple[str, Dict[str, str], Histogram]]:
        """Every histogram as ``(name, labels, instrument)``, sorted by key."""
        return [
            (name, dict(labels), histogram)
            for (name, labels), histogram in sorted(self._histograms.items(), key=_sort_key)
        ]

    def rows(self) -> List[Tuple[str, str, str, str, float]]:
        """Flat ``(kind, name, labels, field, value)`` rows for CSV export.

        Histograms expand to one row per summary field plus one per
        bucket (field ``le=<bound>``; the overflow bucket is ``le=inf``).
        """
        out: List[Tuple[str, str, str, str, float]] = []
        for (name, labels), counter in sorted(self._counters.items(), key=_sort_key):
            out.append(("counter", name, format_labels(labels), "value", counter.value))
        for (name, labels), gauge in sorted(self._gauges.items(), key=_sort_key):
            out.append(("gauge", name, format_labels(labels), "value", gauge.value))
        for (name, labels), histogram in sorted(self._histograms.items(), key=_sort_key):
            label_text = format_labels(labels)
            out.append(("histogram", name, label_text, "count", float(histogram.count)))
            out.append(("histogram", name, label_text, "sum", histogram.sum))
            bounds = [f"le={bound:g}" for bound in histogram.boundaries] + ["le=inf"]
            for bound, bucket_count in zip(bounds, histogram.bucket_counts):
                out.append(("histogram", name, label_text, bound, float(bucket_count)))
        return out

    def snapshot(self) -> dict:
        """JSON-compatible dump of every instrument, keyed ``name{labels}``."""
        return {
            "counters": {
                name + format_labels(labels): counter.to_dict()
                for (name, labels), counter in sorted(self._counters.items(), key=_sort_key)
            },
            "gauges": {
                name + format_labels(labels): gauge.to_dict()
                for (name, labels), gauge in sorted(self._gauges.items(), key=_sort_key)
            },
            "histograms": {
                name + format_labels(labels): histogram.to_dict()
                for (name, labels), histogram in sorted(self._histograms.items(), key=_sort_key)
            },
        }


#: The installed registry; None means metrics are disabled (the default).
_ACTIVE: Optional[MetricsRegistry] = None


def install(registry: MetricsRegistry) -> None:
    """Make ``registry`` receive every metric from instrumented code."""
    global _ACTIVE
    _ACTIVE = registry


def uninstall() -> None:
    """Disable metrics (instrumentation reverts to the no-op path)."""
    global _ACTIVE
    _ACTIVE = None


def active_registry() -> Optional[MetricsRegistry]:
    """The installed registry, or None when metrics are disabled."""
    return _ACTIVE


@contextmanager
def metering(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of the block, then restore."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
