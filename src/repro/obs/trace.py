"""Structured span tracing for the planning and reservation hot paths.

A :class:`Tracer` records *spans*: named enter/exit intervals timed with
the monotonic :func:`time.perf_counter` clock.  Spans nest -- a span
opened while another is active becomes its child -- so one
``establish`` span contains the ``qrg_build``, ``dijkstra`` and
``plan`` spans of the session it admitted, each with its own wall time.
The nesting stack lives in a :class:`contextvars.ContextVar`, so spans
opened by concurrent asyncio tasks (the service daemon, the open-loop
load generator's clients) nest within their own task only and never
corrupt each other's parentage.

When a request-scoped :class:`~repro.obs.context.TraceContext` is bound
(see :mod:`repro.obs.context`), every finished span is stamped with its
``trace_id``/``request_id`` -- the linkage ``repro-obs stitch`` uses to
merge client- and daemon-side trace documents into one cross-process
timeline.  Outside any request nothing is stamped and the record shape
is unchanged.

Instrumented code never talks to a tracer directly; it calls the
module-level :func:`span` / :func:`event` helpers, which dispatch to the
*installed* tracer or, when none is installed (the default), to a no-op
singleton.  The disabled path is a single module-global read plus an
empty context manager, so instrumentation stays effectively free in
production runs and benchmarks (< 1 microsecond per call site).

Typical use::

    tracer = Tracer()
    with tracing(tracer):
        run_simulation(config)
    for record in tracer.records:
        print(record.name, record.duration)

A ``Tracer(capacity=N)`` keeps only the N most recent records (a ring
buffer) -- the always-on flight recorder of the service daemon runs on
one so a long-lived process never grows without bound.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import context as _context

__all__ = [
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "event",
    "install",
    "span",
    "tracing",
    "uninstall",
]


@dataclass
class SpanRecord:
    """One finished span (or instant event, when ``duration`` is 0).

    ``start`` is seconds since the tracer was created (monotonic clock);
    ``index`` is the span's enter order; ``parent_index`` links a nested
    span to its enclosing one (None at top level).  ``trace_id`` /
    ``request_id`` carry the request context active when the span
    finished (None outside any request).
    """

    name: str
    start: float
    duration: float
    depth: int
    index: int
    parent_index: Optional[int]
    attributes: Dict[str, object] = field(default_factory=dict)
    trace_id: Optional[str] = None
    request_id: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-compatible representation (the exporter's event schema).

        The trace-context keys appear only when stamped, so documents
        from un-contexted runs are byte-identical to the pre-v4 shape.
        """
        payload = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "index": self.index,
            "parent": self.parent_index,
            "attributes": dict(self.attributes),
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload


class _ActiveSpan:
    """Context manager for one live span of a real tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_start", "_index", "_parent", "_depth", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def set(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes while the span is running."""
        self._attributes.update(attributes)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self._index = tracer._next_index
        tracer._next_index += 1
        stack = tracer._stack.get()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        self._token = tracer._stack.set(stack + (self._index,))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._stack.reset(self._token)
        if exc_type is not None:
            self._attributes["error"] = f"{exc_type.__name__}: {exc}"
        context = _context.current_trace_context()
        tracer.records.append(
            SpanRecord(
                name=self._name,
                start=self._start - tracer._epoch,
                duration=end - self._start,
                depth=self._depth,
                index=self._index,
                parent_index=self._parent,
                attributes=self._attributes,
                trace_id=context.trace_id if context is not None else None,
                request_id=context.request_id if context is not None else None,
            )
        )
        return False


class _NullSpan:
    """Shared do-nothing span used whenever tracing is disabled."""

    __slots__ = ()

    def set(self, **_attributes: object) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span records for one run.

    The tracer itself is always "on"; disabling tracing means not
    installing any tracer (see :func:`install` / :func:`tracing`).
    ``capacity`` turns the record store into a ring buffer keeping only
    the most recent records -- the flight-recorder mode of the service
    daemon; None (the default) keeps everything.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.records = deque(maxlen=capacity) if capacity is not None else []
        # The span nesting stack is task-local: concurrent asyncio tasks
        # each see only their own open spans.
        self._stack: ContextVar[Tuple[int, ...]] = ContextVar(
            "repro_tracer_stack", default=()
        )
        self._next_index = 0
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _ActiveSpan:
        """A context manager timing one named span."""
        return _ActiveSpan(self, name, attributes)

    def event(self, name: str, **attributes: object) -> None:
        """Record an instant (zero-duration) event."""
        index = self._next_index
        self._next_index += 1
        stack = self._stack.get()
        context = _context.current_trace_context()
        self.records.append(
            SpanRecord(
                name=name,
                start=time.perf_counter() - self._epoch,
                duration=0.0,
                depth=len(stack),
                index=index,
                parent_index=stack[-1] if stack else None,
                attributes=attributes,
                trace_id=context.trace_id if context is not None else None,
                request_id=context.request_id if context is not None else None,
            )
        )

    def clear(self) -> None:
        """Drop every recorded span (the epoch is kept)."""
        self.records.clear()

    # -- aggregation (summaries and tests) ---------------------------------

    def count(self, name: str) -> int:
        """Number of finished spans with the given name."""
        return sum(1 for record in self.records if record.name == name)

    def total_time(self, name: str) -> float:
        """Summed duration of every span with the given name (seconds)."""
        return sum(record.duration for record in self.records if record.name == name)

    def names(self) -> List[str]:
        """Distinct span names, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.name, None)
        return list(seen)

    def records_for_trace(self, trace_id: str) -> List[SpanRecord]:
        """Every record stamped with the given trace id, oldest first."""
        return [record for record in self.records if record.trace_id == trace_id]

    def to_dicts(self) -> List[dict]:
        """Every record as a JSON-compatible dict, in completion order."""
        return [record.to_dict() for record in self.records]


#: The installed tracer; None means tracing is disabled (the default).
_ACTIVE: Optional[Tracer] = None


def install(tracer: Tracer) -> None:
    """Make ``tracer`` receive every span from instrumented code."""
    global _ACTIVE
    _ACTIVE = tracer


def uninstall() -> None:
    """Disable tracing (instrumentation reverts to the no-op path)."""
    global _ACTIVE
    _ACTIVE = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block, then restore."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, **attributes: object):
    """Open a span on the installed tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


def event(name: str, **attributes: object) -> None:
    """Record an instant event on the installed tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.event(name, **attributes)
