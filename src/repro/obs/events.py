"""Causal reservation event log (the *why* behind the span timings).

Spans (:mod:`repro.obs.trace`) answer "where did the time go"; this
module answers "why was this reservation rejected or downgraded, and
which broker was the bottleneck".  An :class:`EventLog` records *typed*
reservation-lifecycle events:

* ``session.planned`` / ``session.admitted`` / ``session.degraded`` /
  ``session.rejected`` -- one causal record per establishment attempt,
  carrying the requested-vs-available resource vectors and the plan's
  contention index psi;
* ``broker.probe`` / ``broker.grant`` / ``broker.reject`` /
  ``broker.release`` -- every admission decision with the requested
  amount against the broker's availability at that instant;
* ``proxy.segment_applied`` / ``proxy.segment_rejected`` -- phase-3
  segment outcomes per QoSProxy;
* ``planner.tradeoff_backoff`` -- the §4.3.1 policy choosing a lower
  end-to-end level than the best feasible one;
* ``fault.injected`` / ``segment.timeout`` / ``segment.retry`` /
  ``session.replanned`` / ``lease.expired`` -- the fault-injection and
  recovery lifecycle of :mod:`repro.faults`: every fired fault, every
  per-phase timeout and bounded retry of the fault-tolerant
  coordinator, every re-plan after a failed host or admission loss, and
  every orphaned reserve/commit lease reclaimed by the reaper;
* ``broker.observed`` / ``session.drift`` / ``slo.violated`` /
  ``session.renegotiated`` -- the online monitoring plane of
  :mod:`repro.obs.monitor`: periodic rolling-estimate digests per
  broker, detected divergence between a session's planned-against
  availability and the live one, declarative SLO violations, and the
  §5 adaptation loop's renegotiations;
* ``slo.burn_rate`` / ``slo.budget_exhausted`` -- the cluster telemetry
  plane of :mod:`repro.obs.burn`: SRE-style multi-window burn-rate alert
  transitions (``state="firing"`` / ``state="resolved"``) and the moment
  a rolling error budget runs dry, both computed over scraped fleet
  metrics rather than any single process;
* ``log.truncated`` -- the single marker this log emits when its
  capacity bound is first hit (see :class:`EventLog`).

Like the tracer and the metrics registry, instrumented code dispatches
through the module-level :func:`emit` helper, which is a single global
read plus an early return when no log is installed -- the disabled path
stays effectively free.  Events are causally ordered by a monotonic
``seq`` counter; broker-side events additionally carry the simulation
clock (``time``) so per-resource timelines can be reconstructed from an
exported trace document (see :mod:`repro.obs.analyze`).

Live consumers can :meth:`~EventLog.subscribe` a callback to an
:class:`EventLog`; subscribers see *every* emitted event -- including
the ones the capacity bound keeps out of storage -- which is what the
online monitoring plane builds on.  With no subscriber installed the
dispatch cost is one empty-list truth test on the already-enabled path;
the disabled path is untouched.

When a request-scoped :class:`~repro.obs.context.TraceContext` is bound
(the service daemon binds one per admission), every emitted event is
stamped with its ``trace_id``/``request_id``, linking the causal record
to the client request that caused it.  Outside any request the fields
stay None and the serialized shape is unchanged.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs import context as _context

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "ReservationEvent",
    "active_event_log",
    "emit",
    "event_logging",
    "install",
    "uninstall",
]

#: The closed set of event kinds; :meth:`EventLog.emit` rejects others so
#: the trace document's event vocabulary stays a stable, documented schema.
EVENT_KINDS = frozenset(
    {
        "session.planned",
        "session.admitted",
        "session.degraded",
        "session.rejected",
        "broker.probe",
        "broker.grant",
        "broker.reject",
        "broker.release",
        "proxy.segment_applied",
        "proxy.segment_rejected",
        "planner.tradeoff_backoff",
        "fault.injected",
        "segment.timeout",
        "segment.retry",
        "session.replanned",
        "lease.reserved",
        "lease.committed",
        "lease.aborted",
        "lease.expired",
        "broker.observed",
        "session.drift",
        "slo.violated",
        "session.renegotiated",
        "slo.burn_rate",
        "slo.budget_exhausted",
        "log.truncated",
    }
)


@dataclass
class ReservationEvent:
    """One recorded lifecycle event.

    ``seq`` is the log-wide causal order; ``wall`` is seconds since the
    log was created (monotonic clock); ``time`` is the simulation clock
    of the emitter when it has one (brokers do, the coordinator reports
    the observation instant of its snapshot), else None.
    """

    kind: str
    seq: int
    wall: float
    time: Optional[float] = None
    session: Optional[str] = None
    resource: Optional[str] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    trace_id: Optional[str] = None
    request_id: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-compatible representation (the trace document's schema).

        The trace-context keys appear only when stamped, so documents
        from un-contexted runs keep the pre-v4 shape byte-for-byte.
        """
        payload = {
            "kind": self.kind,
            "seq": self.seq,
            "wall": self.wall,
            "time": self.time,
            "session": self.session,
            "resource": self.resource,
            "attributes": dict(self.attributes),
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ReservationEvent":
        """Rebuild an event from its :meth:`to_dict` form (trace loading)."""
        return cls(
            kind=payload["kind"],
            seq=int(payload["seq"]),
            wall=float(payload.get("wall", 0.0)),
            time=payload.get("time"),
            session=payload.get("session"),
            resource=payload.get("resource"),
            attributes=dict(payload.get("attributes", {})),
            trace_id=payload.get("trace_id"),
            request_id=payload.get("request_id"),
        )


class EventLog:
    """Collects reservation-lifecycle events for one run.

    ``capacity`` bounds memory on very long runs: once reached, further
    events are counted in :attr:`dropped` instead of stored (newest
    dropped, oldest kept -- the causal prefix stays intact), and a
    single ``log.truncated`` marker is appended so a truncated log is
    distinguishable from a quiet one.  Subscribers (see
    :meth:`subscribe`) are exempt from the bound: they receive every
    emitted event, stored or not.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.records: List[ReservationEvent] = []
        self.capacity = capacity
        self.dropped = 0
        self._next_seq = 0
        self._epoch = _time.perf_counter()
        self._truncated = False
        self._subscribers: List[Callable[[ReservationEvent], None]] = []

    # -- live subscribers --------------------------------------------------

    def subscribe(self, callback: Callable[[ReservationEvent], None]):
        """Deliver every subsequently emitted event to ``callback``.

        Callbacks run synchronously inside :meth:`emit`, in subscription
        order, and see the full stream even when the capacity bound
        drops events from storage.  Returns ``callback`` so the caller
        can keep the handle for :meth:`unsubscribe`.
        """
        if not callable(callback):
            raise TypeError(f"subscriber must be callable, got {callback!r}")
        if callback not in self._subscribers:
            self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[ReservationEvent], None]) -> None:
        """Stop delivering events to ``callback`` (no-op when unknown)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    @property
    def subscriber_count(self) -> int:
        """Number of live subscribers."""
        return len(self._subscribers)

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        kind: str,
        *,
        session: Optional[str] = None,
        resource: Optional[str] = None,
        time: Optional[float] = None,
        **attributes: object,
    ) -> None:
        """Record one event; raises ValueError on unknown kinds."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; known kinds: {sorted(EVENT_KINDS)}"
            )
        seq = self._next_seq
        self._next_seq += 1
        context = _context.current_trace_context()
        trace_id = context.trace_id if context is not None else None
        request_id = context.request_id if context is not None else None
        if self.capacity is not None and len(self.records) >= self.capacity + (
            1 if self._truncated else 0
        ):
            self.dropped += 1
            if not self._truncated:
                # One marker records that (and where) truncation began;
                # it occupies a single slot past the capacity bound so
                # the stored prefix itself stays intact.
                self._truncated = True
                marker = ReservationEvent(
                    kind="log.truncated",
                    seq=self._next_seq,
                    wall=_time.perf_counter() - self._epoch,
                    time=time,
                    attributes={"capacity": self.capacity, "first_dropped_seq": seq},
                )
                self._next_seq += 1
                self.records.append(marker)
                for callback in self._subscribers:
                    callback(marker)
            if self._subscribers:
                event = ReservationEvent(
                    kind=kind,
                    seq=seq,
                    wall=_time.perf_counter() - self._epoch,
                    time=time,
                    session=session,
                    resource=resource,
                    attributes=attributes,
                    trace_id=trace_id,
                    request_id=request_id,
                )
                for callback in self._subscribers:
                    callback(event)
            return
        event = ReservationEvent(
            kind=kind,
            seq=seq,
            wall=_time.perf_counter() - self._epoch,
            time=time,
            session=session,
            resource=resource,
            attributes=attributes,
            trace_id=trace_id,
            request_id=request_id,
        )
        self.records.append(event)
        for callback in self._subscribers:
            callback(event)

    def clear(self) -> None:
        """Drop every recorded event (epoch and seq counter are kept)."""
        self.records.clear()
        self.dropped = 0
        self._truncated = False

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ReservationEvent]:
        return iter(self.records)

    def count(self, kind: str) -> int:
        """Number of recorded events of the given kind."""
        return sum(1 for record in self.records if record.kind == kind)

    def kinds(self) -> List[str]:
        """Distinct event kinds, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.kind, None)
        return list(seen)

    def kind_counts(self) -> Dict[str, int]:
        """kind -> number of recorded events (sorted by kind)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return dict(sorted(counts.items()))

    def for_session(self, session_id: str) -> List[ReservationEvent]:
        """Every event tagged with the given session id, in causal order."""
        return [record for record in self.records if record.session == session_id]

    def for_resource(self, resource_id: str) -> List[ReservationEvent]:
        """Every event tagged with the given resource id, in causal order."""
        return [record for record in self.records if record.resource == resource_id]

    def for_trace(self, trace_id: str) -> List[ReservationEvent]:
        """Every event stamped with the given trace id, in causal order."""
        return [record for record in self.records if record.trace_id == trace_id]

    def to_dicts(self) -> List[dict]:
        """Every event as a JSON-compatible dict, in causal order."""
        return [record.to_dict() for record in self.records]


#: The installed event log; None means event logging is disabled (default).
_ACTIVE: Optional[EventLog] = None


def install(log: EventLog, *, force: bool = False) -> None:
    """Make ``log`` receive every event from instrumented code.

    Installing over a *different* already-installed log raises: silently
    replacing it would detach that log's consumers (e.g. a subscribed
    online monitor) mid-run.  Re-installing the same log is idempotent.
    ``force=True`` is for callers that deliberately manage a save/restore
    stack of handles (:class:`~repro.obs.ObservationSession`).
    """
    global _ACTIVE
    if not force and _ACTIVE is not None and _ACTIVE is not log:
        raise RuntimeError(
            "an EventLog is already installed; uninstall() it first "
            "(or use event_logging()/ObservationSession, which save and "
            "restore the previous log)"
        )
    _ACTIVE = log


def uninstall() -> None:
    """Disable event logging (instrumentation reverts to the no-op path)."""
    global _ACTIVE
    _ACTIVE = None


def active_event_log() -> Optional[EventLog]:
    """The installed event log, or None when event logging is disabled."""
    return _ACTIVE


@contextmanager
def event_logging(log: EventLog) -> Iterator[EventLog]:
    """Install ``log`` for the duration of the block, then restore."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = log
    try:
        yield log
    finally:
        _ACTIVE = previous


def emit(
    kind: str,
    *,
    session: Optional[str] = None,
    resource: Optional[str] = None,
    time: Optional[float] = None,
    **attributes: object,
) -> None:
    """Record an event on the installed log (no-op when disabled)."""
    log = _ACTIVE
    if log is not None:
        log.emit(kind, session=session, resource=resource, time=time, **attributes)
