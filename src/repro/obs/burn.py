"""SRE-style multi-window burn-rate alerting over scraped fleet metrics.

Per-process ``SLOSpec`` watchdogs (:mod:`repro.obs.monitor`) answer "is
this broker out of bounds *right now*"; this module answers the
operator's question -- "is the *cluster* spending its error budget too
fast" -- using the standard SRE construction:

* every :class:`~repro.obs.slo.BurnRateSLO` defines an error rate
  (failed admissions over all admissions, or the fraction of requests
  over a latency bound) measured from the
  :class:`~repro.obs.telemetry.TimeSeriesStore`'s windowed rollups;
* *burn rate* is that error rate divided by the budget ``1 - target``
  (burn 1.0 = spending the budget exactly as fast as allowed);
* an alert **fires** only when both the short- and the long-window burn
  exceed the SLO's threshold -- the short window makes detection fast,
  the long window keeps one bad scrape from paging -- and **resolves**
  once both drop back under it;
* the rolling *error budget* over ``budget_window`` is reported as a
  remaining fraction (1.0 = untouched, <= 0 = exhausted).

State transitions are emitted as events -- ``slo.burn_rate`` with
``state="firing"`` / ``state="resolved"`` and ``slo.budget_exhausted``
-- into the installed :class:`~repro.obs.events.EventLog` (or an
explicit one), so cluster alerts stitch into the same merged event
timeline and flight-recorder tooling as every other lifecycle event.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs import events as _events
from repro.obs.slo import BurnRateSLO
from repro.obs.telemetry import TimeSeriesStore

__all__ = ["BurnRateEngine", "SLOStatus", "default_cluster_slos"]


def default_cluster_slos(*, short_window: float = 6.0,
                         long_window: float = 20.0,
                         budget_window: float = 30.0) -> List[BurnRateSLO]:
    """The stock cluster SLOs the dashboard and CI smoke run with.

    * ``admission-availability`` -- of the requests the router decided,
      how many were *served* (established, or rejected on merit by
      admission control -- a QoS-aware "no" is the system working) vs
      failed for infrastructure reasons (unreachable/draining/erroring
      shards).  A ``kill -9``'d shard turns its slice of traffic into
      infra rejections, which is exactly what burns this budget.
    * ``admission-latency`` -- the fraction of shard-side planning
      phases that exceed 250 ms, merged across every shard.
    """
    return [
        BurnRateSLO(
            name="admission-availability",
            kind="availability",
            target=0.99,
            good=(
                'repro_cluster_admissions_total{verdict="established"}',
                'repro_cluster_admissions_total{verdict="rejected_merit"}',
            ),
            bad=('repro_cluster_admissions_total{verdict="rejected_infra"}',),
            role="cluster-router",
            short_window=short_window,
            long_window=long_window,
            budget_window=budget_window,
            burn_threshold=5.0,
        ),
        BurnRateSLO(
            name="admission-latency",
            kind="latency",
            target=0.95,
            histogram="repro_daemon_admission_phase_seconds",
            latency_bound=0.25,
            role="shard",
            short_window=short_window,
            long_window=long_window,
            budget_window=budget_window,
            burn_threshold=5.0,
        ),
    ]


@dataclass
class SLOStatus:
    """One SLO's evaluation at one instant (what the dashboard shows)."""

    slo: str
    kind: str
    target: float
    error_rate_short: float
    error_rate_long: float
    burn_short: float
    burn_long: float
    threshold: float
    budget_remaining: float
    state: str  # "ok" | "firing"
    firing_since: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "kind": self.kind,
            "target": self.target,
            "error_rate_short": self.error_rate_short,
            "error_rate_long": self.error_rate_long,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "threshold": self.threshold,
            "budget_remaining": self.budget_remaining,
            "state": self.state,
            "firing_since": self.firing_since,
        }


class _AlertState:
    __slots__ = ("firing", "firing_since", "budget_exhausted", "min_budget")

    def __init__(self) -> None:
        self.firing = False
        self.firing_since: Optional[float] = None
        self.budget_exhausted = False
        self.min_budget = 1.0


class BurnRateEngine:
    """Evaluates burn-rate SLOs against a store and emits alert events.

    Call :meth:`evaluate` after every scrape sweep (the scraper's
    ``on_scrape`` hook is the natural place).  Transitions emit events;
    steady states do not, so a firing alert produces exactly one
    ``slo.burn_rate`` event per incident plus one on resolution.
    """

    def __init__(self, slos: Sequence[BurnRateSLO],
                 store: TimeSeriesStore, *,
                 event_log: Optional[_events.EventLog] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate BurnRateSLO names: {names}")
        self.slos = list(slos)
        self.store = store
        self._event_log = event_log
        self._clock = clock
        self._states: Dict[str, _AlertState] = {
            slo.name: _AlertState() for slo in self.slos
        }
        self.last_statuses: List[SLOStatus] = []

    # -- measurement -------------------------------------------------------

    def _error_rate(self, slo: BurnRateSLO, window: float,
                    now: float) -> float:
        role = slo.role or None
        if slo.kind == "availability":
            good = self.store.counter_window_sum(
                list(slo.good), window=window, now=now, role=role
            )
            bad = self.store.counter_window_sum(
                list(slo.bad), window=window, now=now, role=role
            )
            total = good + bad
            return bad / total if total > 0 else 0.0
        rollup = self.store.histogram_window(
            slo.histogram, window=window, now=now, role=role
        )
        if rollup is None or rollup.count <= 0:
            return 0.0
        return rollup.fraction_above(slo.latency_bound)

    def _emit(self, kind: str, **attributes: object) -> None:
        if self._event_log is not None:
            self._event_log.emit(kind, **attributes)
        else:
            _events.emit(kind, **attributes)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> List[SLOStatus]:
        """One pass over every SLO; returns their statuses in order."""
        if now is None:
            now = self._clock()
        statuses: List[SLOStatus] = []
        for slo in self.slos:
            state = self._states[slo.name]
            rate_short = self._error_rate(slo, slo.short_window, now)
            rate_long = self._error_rate(slo, slo.long_window, now)
            rate_budget = self._error_rate(slo, slo.budget_window, now)
            budget = slo.error_budget
            burn_short = rate_short / budget
            burn_long = rate_long / budget
            budget_remaining = 1.0 - rate_budget / budget
            state.min_budget = min(state.min_budget, budget_remaining)
            should_fire = (
                burn_short > slo.burn_threshold
                and burn_long > slo.burn_threshold
            )
            if should_fire and not state.firing:
                state.firing = True
                state.firing_since = now
                self._emit(
                    "slo.burn_rate",
                    slo=slo.name, state="firing", slo_kind=slo.kind,
                    burn_short=round(burn_short, 4),
                    burn_long=round(burn_long, 4),
                    threshold=slo.burn_threshold,
                    budget_remaining=round(budget_remaining, 4),
                )
            elif state.firing and not should_fire:
                duration = (
                    now - state.firing_since
                    if state.firing_since is not None else 0.0
                )
                state.firing = False
                state.firing_since = None
                self._emit(
                    "slo.burn_rate",
                    slo=slo.name, state="resolved", slo_kind=slo.kind,
                    burn_short=round(burn_short, 4),
                    burn_long=round(burn_long, 4),
                    threshold=slo.burn_threshold,
                    budget_remaining=round(budget_remaining, 4),
                    firing_seconds=round(duration, 3),
                )
            if budget_remaining <= 0.0 and not state.budget_exhausted:
                state.budget_exhausted = True
                self._emit(
                    "slo.budget_exhausted",
                    slo=slo.name, slo_kind=slo.kind,
                    budget_remaining=round(budget_remaining, 4),
                    budget_window=slo.budget_window,
                )
            elif budget_remaining > 0.0:
                state.budget_exhausted = False
            statuses.append(SLOStatus(
                slo=slo.name, kind=slo.kind, target=slo.target,
                error_rate_short=rate_short, error_rate_long=rate_long,
                burn_short=burn_short, burn_long=burn_long,
                threshold=slo.burn_threshold,
                budget_remaining=budget_remaining,
                state="firing" if state.firing else "ok",
                firing_since=state.firing_since,
            ))
        self.last_statuses = statuses
        return statuses

    # -- introspection -----------------------------------------------------

    def min_budget(self, name: str) -> float:
        """The lowest budget fraction this SLO has seen (for recovery
        assertions: the budget *recovered* when the latest reading sits
        above this low-water mark)."""
        return self._states[name].min_budget

    def firing(self) -> List[str]:
        """Names of SLOs currently in the firing state."""
        return [name for name, state in self._states.items() if state.firing]
