"""repro.obs -- tracing and metrics for the reservation system.

The observability layer has three parts:

* :mod:`repro.obs.trace`   -- span-style structured tracer (per-phase
  wall times of QRG construction, minimax Dijkstra, plan assembly, and
  the two-phase establish/teardown protocol);
* :mod:`repro.obs.metrics` -- counters / gauges / histograms (per-broker
  grants, rejections, releases, utilization; per-session outcomes);
* :mod:`repro.obs.export`  -- JSON trace, CSV metrics, and text summary
  exporters.

Instrumented code dispatches through module-level "active" handles that
default to no-ops, so the whole layer is effectively free unless an
:class:`ObservationSession` (or the lower-level ``install`` functions)
turns it on::

    from repro.obs import ObservationSession

    with ObservationSession() as obs:
        result = run_simulation(config)
    obs.write_trace_json("trace.json")
    print(obs.summary())

See ``docs/observability.md`` for the event schema and exporter formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.obs import events as _events
from repro.obs import export as _export
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.context import (
    TraceContext,
    bind_trace_context,
    child_context,
    current_trace_context,
    new_trace_context,
    parse_traceparent,
    reset_trace_context,
    trace_context,
)
from repro.obs.events import (
    EVENT_KINDS,
    EventLog,
    ReservationEvent,
    active_event_log,
    event_logging,
)
from repro.obs.flight import FlightRecorder
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    observability_to_dict,
    summary_report,
    write_metrics_csv,
    write_summary,
    write_trace_json,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_PSI_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    metering,
)
from repro.obs.trace import SpanRecord, Tracer, active_tracer, tracing
from repro.obs.slo import BurnRateSLO

__all__ = [
    "BurnRateEngine",
    "BurnRateSLO",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PSI_BUCKETS",
    "EVENT_KINDS",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityConfig",
    "ObservabilityError",
    "ObservationSession",
    "ObservationSummary",
    "ReservationEvent",
    "SpanRecord",
    "TRACE_SCHEMA_VERSION",
    "TelemetryScraper",
    "TimeSeriesStore",
    "TraceContext",
    "Tracer",
    "active_event_log",
    "active_observation_session",
    "active_registry",
    "active_tracer",
    "bind_trace_context",
    "child_context",
    "current_trace_context",
    "event_logging",
    "metering",
    "new_trace_context",
    "observability_to_dict",
    "parse_traceparent",
    "reset_trace_context",
    "reset_worker_observability",
    "summary_report",
    "trace_context",
    "tracing",
    "write_metrics_csv",
    "write_summary",
    "write_trace_json",
]

#: Cluster-telemetry entry points, resolved lazily (PEP 562): eager
#: imports would drag the whole service/client stack into every
#: ``repro.obs`` import, and the scraper is only wanted by live tooling.
_LAZY_TELEMETRY = {
    "BurnRateEngine": "repro.obs.burn",
    "TelemetryScraper": "repro.obs.telemetry",
    "TimeSeriesStore": "repro.obs.telemetry",
}


def __getattr__(name: str):
    target = _LAZY_TELEMETRY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


class ObservabilityError(RuntimeError):
    """Misuse of the observability layer (e.g. nested sessions)."""


@dataclass(frozen=True)
class ObservabilityConfig:
    """What to observe in a run and where to export it.

    Hangs off :class:`repro.sim.SimulationConfig` (``observability``
    field); all paths are optional -- with none set, the collected
    tracer/registry are still attached to the
    :class:`~repro.sim.SimulationResult` for in-process inspection.
    """

    #: Collect span records (per-phase timings).
    trace: bool = True
    #: Collect counters/gauges/histograms.
    metrics: bool = True
    #: Collect the causal reservation event log (session/broker/proxy
    #: lifecycle events; see :mod:`repro.obs.events`).
    events: bool = True
    #: Cap on retained events (None = unbounded); beyond it, newer
    #: events are counted as dropped instead of stored.
    event_capacity: Optional[int] = None
    #: Write the machine-readable JSON trace document here.
    trace_path: Optional[str] = None
    #: Write flat CSV metric rows here.
    metrics_path: Optional[str] = None
    #: Write the results/-style text summary here.
    summary_path: Optional[str] = None

    @property
    def enabled(self) -> bool:
        """True when anything at all is being collected."""
        return self.trace or self.metrics or self.events


@dataclass(frozen=True)
class ObservationSummary:
    """A detached, picklable digest of one finished observed run.

    The live :class:`Tracer` / :class:`MetricsRegistry` of an
    :class:`ObservationSession` hold per-record object graphs that have
    no business crossing a process boundary; pool workers ship this
    summary back instead (see ``SimulationResult.detached()``).  It
    carries the span totals and the full metrics snapshot -- the same
    aggregates the JSON trace document reports.
    """

    #: span name -> {"count": ..., "total_seconds": ...}
    span_totals: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    #: :meth:`MetricsRegistry.snapshot` output (counters/gauges/histograms).
    metrics: Mapping[str, Mapping[str, dict]] = field(default_factory=dict)
    #: event kind -> count (:meth:`EventLog.kind_counts` output).
    event_counts: Mapping[str, int] = field(default_factory=dict)

    def event_count(self, kind: str) -> int:
        """Number of recorded events of the given kind (0 when absent)."""
        return int(self.event_counts.get(kind, 0))

    def span_count(self, name: str) -> int:
        """Number of finished spans with the given name (0 when absent)."""
        return int(self.span_totals.get(name, {}).get("count", 0))

    def span_seconds(self, name: str) -> float:
        """Summed duration of spans with the given name (0 when absent)."""
        return float(self.span_totals.get(name, {}).get("total_seconds", 0.0))

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        counters = self.metrics.get("counters", {})
        total = 0.0
        for key, value in counters.items():
            if key == name or key.startswith(name + "{"):
                total += value["value"]
        return total


#: The process's active session; at most one may be live at a time.
_ACTIVE_SESSION: Optional["ObservationSession"] = None


def active_observation_session() -> Optional["ObservationSession"]:
    """The live :class:`ObservationSession`, or None."""
    return _ACTIVE_SESSION


def reset_worker_observability() -> None:
    """Give a pool worker a clean, isolated observability state.

    A forked worker inherits the parent's installed tracer/registry and
    active-session marker; recording into them from the child is exactly
    the cross-run interleaving the exclusive-session rule exists to
    prevent.  Process-pool initialisers call this first.
    """
    global _ACTIVE_SESSION
    _ACTIVE_SESSION = None
    _trace.uninstall()
    _metrics.uninstall()
    _events.uninstall()


class ObservationSession:
    """Installs a tracer and/or metrics registry for one block of work.

    A thin convenience over :func:`repro.obs.trace.install` and
    :func:`repro.obs.metrics.install` that restores the previously
    installed handles on exit and bundles the exporters.

    Sessions are *exclusive* per process: the instrumented hot paths
    dispatch through module-level handles, so a second session activated
    while one is live would silently interleave spans and metrics from
    unrelated runs into one registry.  Nested or concurrent activation
    therefore raises :class:`ObservabilityError`; run concurrent observed
    simulations in separate worker processes instead (each worker gets
    its own isolated handles via :func:`reset_worker_observability`).
    """

    def __init__(self, config: Optional[ObservabilityConfig] = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.tracer: Optional[Tracer] = Tracer() if self.config.trace else None
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else None
        )
        self.event_log: Optional[EventLog] = (
            EventLog(capacity=self.config.event_capacity) if self.config.events else None
        )
        self._previous_tracer: Optional[Tracer] = None
        self._previous_registry: Optional[MetricsRegistry] = None
        self._previous_event_log: Optional[EventLog] = None
        #: Digest of the run's online monitoring plane (set by
        #: :func:`repro.sim.run_simulation` when monitoring is enabled);
        #: exported as the trace document's ``monitoring`` section.
        self.monitoring: Optional[dict] = None

    def __enter__(self) -> "ObservationSession":
        global _ACTIVE_SESSION
        if _ACTIVE_SESSION is not None:
            raise ObservabilityError(
                "an ObservationSession is already active in this process; "
                "concurrent sessions would interleave their spans and metrics "
                "into one registry.  Finish the active session first, or run "
                "the second observed simulation in its own worker process "
                "(the parallel sweep runner does this for you)."
            )
        _ACTIVE_SESSION = self
        self._previous_tracer = _trace.active_tracer()
        self._previous_registry = _metrics.active_registry()
        self._previous_event_log = _events.active_event_log()
        if self.tracer is not None:
            _trace.install(self.tracer)
        if self.registry is not None:
            _metrics.install(self.registry)
        if self.event_log is not None:
            _events.install(self.event_log, force=True)
        return self

    def __exit__(self, *_exc) -> bool:
        global _ACTIVE_SESSION
        if _ACTIVE_SESSION is self:
            _ACTIVE_SESSION = None
        if self.tracer is not None:
            if self._previous_tracer is None:
                _trace.uninstall()
            else:
                _trace.install(self._previous_tracer)
        if self.registry is not None:
            if self._previous_registry is None:
                _metrics.uninstall()
            else:
                _metrics.install(self._previous_registry)
        if self.event_log is not None:
            if self._previous_event_log is None:
                _events.uninstall()
            else:
                _events.install(self._previous_event_log, force=True)
        return False

    # -- detaching ---------------------------------------------------------

    def summarize(self) -> ObservationSummary:
        """A detached, picklable :class:`ObservationSummary` of this session."""
        span_totals: Dict[str, Dict[str, float]] = {}
        if self.tracer is not None:
            span_totals = {
                name: {
                    "count": self.tracer.count(name),
                    "total_seconds": self.tracer.total_time(name),
                }
                for name in self.tracer.names()
            }
        metrics = self.registry.snapshot() if self.registry is not None else {}
        event_counts = (
            self.event_log.kind_counts() if self.event_log is not None else {}
        )
        return ObservationSummary(
            span_totals=span_totals, metrics=metrics, event_counts=event_counts
        )

    # -- exports -----------------------------------------------------------

    def to_dict(self, *, meta: Optional[dict] = None) -> dict:
        """The JSON trace document as a plain dict."""
        return observability_to_dict(
            self.tracer, self.registry, self.event_log,
            monitoring=self.monitoring, meta=meta,
        )

    def write_trace_json(self, path, *, meta: Optional[dict] = None) -> Path:
        """Write the JSON trace document; returns the written path."""
        return write_trace_json(
            path, self.tracer, self.registry, self.event_log,
            monitoring=self.monitoring, meta=meta,
        )

    def write_metrics_csv(self, path) -> Path:
        """Write the flat CSV metric rows; returns the written path."""
        if self.registry is None:
            raise ValueError("metrics collection is disabled for this session")
        return write_metrics_csv(path, self.registry)

    def summary(self, *, title: str = "observability summary") -> str:
        """The results/-style text report."""
        return summary_report(self.tracer, self.registry, self.event_log, title=title)

    def write_summary(self, path, *, title: str = "observability summary") -> Path:
        """Write the text report; returns the written path."""
        return write_summary(path, self.tracer, self.registry, self.event_log, title=title)

    def export(self, *, meta: Optional[dict] = None) -> None:
        """Write every export path configured on the config (if any)."""
        if self.config.trace_path:
            self.write_trace_json(self.config.trace_path, meta=meta)
        if self.config.metrics_path and self.registry is not None:
            self.write_metrics_csv(self.config.metrics_path)
        if self.config.summary_path:
            self.write_summary(self.config.summary_path)
