"""Exporters: JSON traces, CSV metrics, and text summary reports.

Three output shapes, all built from a :class:`~repro.obs.trace.Tracer`
and/or a :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`write_trace_json` -- one self-describing JSON document with the
  span records (see :meth:`SpanRecord.to_dict` for the event schema) and
  the full metrics snapshot; the machine-readable artifact of a run;
* :func:`write_metrics_csv` -- flat ``kind,name,labels,field,value``
  rows, loadable by any spreadsheet/pandas pipeline;
* :func:`summary_report` / :func:`write_summary` -- the human-readable
  digest in the style of the ``results/*.txt`` artifacts: per-phase
  timing totals and per-broker grant/reject tallies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, format_labels
from repro.obs.trace import Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "observability_to_dict",
    "summary_report",
    "write_metrics_csv",
    "write_summary",
    "write_trace_json",
]

PathLike = Union[str, Path]

#: Schema version stamped into every JSON trace document.  v2 added the
#: causal reservation event log (``events`` + ``event_counts``); v3
#: added the optional ``monitoring`` section (the online monitoring
#: plane's digest, see :mod:`repro.obs.monitor`); v4 added optional
#: ``trace_id``/``request_id`` keys on spans and events (present only
#: when a request-scoped :mod:`repro.obs.context` was bound -- the
#: cross-process linkage ``repro-obs stitch`` merges on) plus the
#: flight-recorder ``meta`` fields of :mod:`repro.obs.flight`.  v1-v3
#: documents remain loadable -- see :func:`repro.obs.analyze.load_trace`.
TRACE_SCHEMA_VERSION = 4


def observability_to_dict(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
    *,
    monitoring: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> dict:
    """The JSON trace document as a plain dict (see the docs' schema)."""
    document: dict = {"schema_version": TRACE_SCHEMA_VERSION}
    if meta:
        document["meta"] = dict(meta)
    if tracer is not None:
        document["spans"] = tracer.to_dicts()
        document["span_totals"] = {
            name: {"count": tracer.count(name), "total_seconds": tracer.total_time(name)}
            for name in tracer.names()
        }
    if registry is not None:
        document["metrics"] = registry.snapshot()
    if events is not None:
        document["events"] = events.to_dicts()
        document["event_counts"] = events.kind_counts()
        if events.dropped:
            document["events_dropped"] = events.dropped
    if monitoring:
        document["monitoring"] = dict(monitoring)
    return document


def write_trace_json(
    path: PathLike,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
    *,
    monitoring: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> Path:
    """Write the JSON trace document; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = observability_to_dict(tracer, registry, events, monitoring=monitoring, meta=meta)
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target


def write_metrics_csv(path: PathLike, registry: MetricsRegistry) -> Path:
    """Write every instrument as flat CSV rows; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "name", "labels", "field", "value"])
        for row in registry.rows():
            writer.writerow(row)
    return target


def _broker_table(registry: MetricsRegistry) -> List[str]:
    """Per-resource grants/rejections/releases rows, aligned."""
    per_resource: Dict[str, Dict[str, float]] = {}
    for name, labels, value in registry.iter_counters():
        if not name.startswith("broker."):
            continue
        resource = labels.get("resource", format_labels(tuple(sorted(labels.items()))) or "-")
        per_resource.setdefault(resource, {})[name.split(".", 1)[1]] = value
    if not per_resource:
        return []
    lines = ["per-broker reservations:", f"  {'resource':<14} {'grants':>8} {'rejects':>8} {'releases':>9}"]
    for resource in sorted(per_resource):
        counts = per_resource[resource]
        lines.append(
            f"  {resource:<14} {counts.get('grants', 0):>8g} "
            f"{counts.get('rejections', 0):>8g} {counts.get('releases', 0):>9g}"
        )
    return lines


def _histogram_table(registry: MetricsRegistry) -> List[str]:
    """Per-histogram distribution rows: count, mean and p50/p95/p99."""
    histograms = registry.iter_histograms()
    if not any(histogram.count for _n, _l, histogram in histograms):
        return []
    lines = [
        "distributions:",
        f"  {'histogram':<30} {'count':>7} {'mean':>11} {'p50':>11} {'p95':>11} {'p99':>11}",
    ]
    for name, labels, histogram in histograms:
        if not histogram.count:
            continue
        label_text = format_labels(tuple(sorted((k, v) for k, v in labels.items())))
        lines.append(
            f"  {name + label_text:<30} {histogram.count:>7} {histogram.mean:>11.6g} "
            f"{histogram.percentile(0.50):>11.6g} {histogram.percentile(0.95):>11.6g} "
            f"{histogram.percentile(0.99):>11.6g}"
        )
    return lines


def summary_report(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
    *,
    title: str = "observability summary",
) -> str:
    """A ``results/``-style text report of one traced run."""
    lines: List[str] = [title, "=" * len(title)]
    if tracer is not None and tracer.records:
        lines.append("")
        lines.append("per-phase timings:")
        lines.append(f"  {'span':<22} {'count':>7} {'total_s':>10} {'mean_us':>10}")
        for name in tracer.names():
            count = tracer.count(name)
            total = tracer.total_time(name)
            mean_us = 1e6 * total / count if count else 0.0
            lines.append(f"  {name:<22} {count:>7} {total:>10.4f} {mean_us:>10.1f}")
    if registry is not None:
        broker_lines = _broker_table(registry)
        if broker_lines:
            lines.append("")
            lines.extend(broker_lines)
        histogram_lines = _histogram_table(registry)
        if histogram_lines:
            lines.append("")
            lines.extend(histogram_lines)
        session_names = sorted(
            {name for name, _labels, _value in registry.iter_counters() if name.startswith("session.")}
        )
        if session_names:
            lines.append("")
            lines.append("session outcomes:")
            for name in session_names:
                lines.append(f"  {name:<24} {registry.counter_total(name):g}")
    if events is not None and len(events):
        lines.append("")
        lines.append("reservation events:")
        for kind, count in events.kind_counts().items():
            lines.append(f"  {kind:<26} {count:g}")
        if events.dropped:
            lines.append(f"  (dropped beyond capacity: {events.dropped})")
    lines.append("")
    return "\n".join(lines)


def write_summary(
    path: PathLike,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
    *,
    title: str = "observability summary",
) -> Path:
    """Write the text summary report; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(summary_report(tracer, registry, events, title=title))
    return target
