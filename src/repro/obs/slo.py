"""Declarative service-level objectives for the online monitoring plane.

An :class:`SLOSpec` names a bound the run is expected to keep -- a
maximum broker rejection rate, a minimum delivered QoS level, a maximum
contention index psi -- and the :class:`~repro.obs.monitor.OnlineMonitor`
watchdogs evaluate every spec against its rolling estimators as the
event stream arrives, emitting one ``slo.violated`` event per crossing
(with hysteresis: a spec re-arms only after its objective recovers).

Specs are plain frozen data so they can ride on a
:class:`~repro.obs.monitor.MonitorConfig` across process boundaries
(the parallel sweep runner pickles configs into pool workers).

:class:`BurnRateSLO` is the *fleet-level* counterpart introduced with
the cluster telemetry plane: instead of a per-process threshold it
declares a target ratio of good events (admission success rate, or
requests under a latency bound) and the SRE-style multi-window
burn-rate parameters the :class:`~repro.obs.burn.BurnRateEngine`
evaluates against scraped time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

__all__ = ["BurnRateSLO", "SLOSpec", "SLOViolation"]


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective; at least one bound must be set.

    ``max_rejection_rate`` bounds the rolling fraction of broker
    admission attempts rejected (over the monitor's ``rate_window``);
    ``min_qos_level`` bounds the EWMA of admitted sessions' paper-style
    numeric levels (best = N .. worst = 1, so *higher* is better);
    ``max_psi`` bounds the EWMA of planned bottleneck contention
    indices.  ``min_sessions`` is a warm-up: no objective is evaluated
    before that many sessions produced an outcome, so a single early
    rejection cannot trip a rate bound computed over one sample.
    """

    name: str
    max_rejection_rate: Optional[float] = None
    min_qos_level: Optional[float] = None
    max_psi: Optional[float] = None
    min_sessions: int = 5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLOSpec needs a non-empty name")
        if (
            self.max_rejection_rate is None
            and self.min_qos_level is None
            and self.max_psi is None
        ):
            raise ValueError(
                f"SLOSpec {self.name!r} sets no objective; give at least one "
                "of max_rejection_rate / min_qos_level / max_psi"
            )
        if self.max_rejection_rate is not None and not 0.0 <= self.max_rejection_rate <= 1.0:
            raise ValueError(
                f"max_rejection_rate must be within [0, 1], got {self.max_rejection_rate!r}"
            )
        if self.max_psi is not None and self.max_psi <= 0.0:
            raise ValueError(f"max_psi must be positive, got {self.max_psi!r}")
        if self.min_sessions < 0:
            raise ValueError(f"min_sessions must be >= 0, got {self.min_sessions!r}")


@dataclass(frozen=True)
class SLOViolation:
    """One detected crossing of one objective of one spec."""

    slo: str
    #: Which bound tripped: ``rejection_rate`` / ``qos_level`` / ``psi``.
    objective: str
    #: The measured rolling value at detection time.
    measured: float
    #: The spec's bound it crossed.
    limit: float

    def to_attributes(self) -> dict:
        """The ``slo.violated`` event's attribute payload."""
        return {
            "slo": self.slo,
            "objective": self.objective,
            "measured": self.measured,
            "limit": self.limit,
        }


@dataclass(frozen=True)
class BurnRateSLO:
    """One fleet-level objective evaluated over scraped time series.

    ``kind`` picks the objective shape:

    * ``"availability"`` -- good/bad are counter *selectors* (see below);
      the error rate over a window is ``bad / (good + bad)``.
    * ``"latency"`` -- ``histogram`` names a scraped histogram metric
      (exposition name, e.g. ``repro_daemon_admission_phase_seconds``)
      and ``latency_bound`` the objective bound in the histogram's unit;
      the error rate is the windowed fraction of observations above the
      bound, merged across every target the selector matches.

    A *selector* is ``metric_name`` or ``metric_name{label="value",...}``:
    the metric name must match exactly and every given label must match;
    labels the selector does not mention are unconstrained, so one
    selector naturally sums across shards.  ``role`` additionally
    restricts which scrape targets contribute ("" = all).

    Burn rate is the SRE definition -- ``error_rate / (1 - target)`` --
    and an alert fires only when **both** the short and the long window
    burn exceed ``burn_threshold``, which is what makes the alert fast
    on real incidents yet quiet on blips.  ``budget_window`` is the
    rolling period the error budget is accounted over.
    """

    name: str
    kind: str
    target: float
    good: Tuple[str, ...] = ()
    bad: Tuple[str, ...] = ()
    histogram: str = ""
    latency_bound: float = 0.0
    role: str = ""
    short_window: float = 5.0
    long_window: float = 30.0
    budget_window: float = 60.0
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("BurnRateSLO needs a non-empty name")
        if self.kind not in ("availability", "latency"):
            raise ValueError(
                f"BurnRateSLO {self.name!r}: kind must be 'availability' or "
                f"'latency', got {self.kind!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"BurnRateSLO {self.name!r}: target must be in (0, 1), "
                f"got {self.target!r}"
            )
        if self.kind == "availability" and not (self.good and self.bad):
            raise ValueError(
                f"BurnRateSLO {self.name!r}: availability kind needs both "
                "good and bad counter selectors"
            )
        if self.kind == "latency" and (not self.histogram or self.latency_bound <= 0.0):
            raise ValueError(
                f"BurnRateSLO {self.name!r}: latency kind needs a histogram "
                "metric and a positive latency_bound"
            )
        if not 0.0 < self.short_window < self.long_window:
            raise ValueError(
                f"BurnRateSLO {self.name!r}: need 0 < short_window < "
                f"long_window, got {self.short_window!r} / {self.long_window!r}"
            )
        if self.budget_window < self.long_window:
            raise ValueError(
                f"BurnRateSLO {self.name!r}: budget_window must be >= "
                f"long_window, got {self.budget_window!r}"
            )
        if self.burn_threshold <= 0.0:
            raise ValueError(
                f"BurnRateSLO {self.name!r}: burn_threshold must be positive"
            )

    @property
    def error_budget(self) -> float:
        """The allowed error fraction, ``1 - target``."""
        return 1.0 - self.target

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "BurnRateSLO":
        """Build from one JSON object of an ``--slo-config`` document."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown BurnRateSLO fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(doc)
        for tuple_field in ("good", "bad"):
            if tuple_field in kwargs:
                value = kwargs[tuple_field]
                if isinstance(value, str):
                    value = [value]
                kwargs[tuple_field] = tuple(value)  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]
