"""Declarative service-level objectives for the online monitoring plane.

An :class:`SLOSpec` names a bound the run is expected to keep -- a
maximum broker rejection rate, a minimum delivered QoS level, a maximum
contention index psi -- and the :class:`~repro.obs.monitor.OnlineMonitor`
watchdogs evaluate every spec against its rolling estimators as the
event stream arrives, emitting one ``slo.violated`` event per crossing
(with hysteresis: a spec re-arms only after its objective recovers).

Specs are plain frozen data so they can ride on a
:class:`~repro.obs.monitor.MonitorConfig` across process boundaries
(the parallel sweep runner pickles configs into pool workers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SLOSpec", "SLOViolation"]


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective; at least one bound must be set.

    ``max_rejection_rate`` bounds the rolling fraction of broker
    admission attempts rejected (over the monitor's ``rate_window``);
    ``min_qos_level`` bounds the EWMA of admitted sessions' paper-style
    numeric levels (best = N .. worst = 1, so *higher* is better);
    ``max_psi`` bounds the EWMA of planned bottleneck contention
    indices.  ``min_sessions`` is a warm-up: no objective is evaluated
    before that many sessions produced an outcome, so a single early
    rejection cannot trip a rate bound computed over one sample.
    """

    name: str
    max_rejection_rate: Optional[float] = None
    min_qos_level: Optional[float] = None
    max_psi: Optional[float] = None
    min_sessions: int = 5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLOSpec needs a non-empty name")
        if (
            self.max_rejection_rate is None
            and self.min_qos_level is None
            and self.max_psi is None
        ):
            raise ValueError(
                f"SLOSpec {self.name!r} sets no objective; give at least one "
                "of max_rejection_rate / min_qos_level / max_psi"
            )
        if self.max_rejection_rate is not None and not 0.0 <= self.max_rejection_rate <= 1.0:
            raise ValueError(
                f"max_rejection_rate must be within [0, 1], got {self.max_rejection_rate!r}"
            )
        if self.max_psi is not None and self.max_psi <= 0.0:
            raise ValueError(f"max_psi must be positive, got {self.max_psi!r}")
        if self.min_sessions < 0:
            raise ValueError(f"min_sessions must be >= 0, got {self.min_sessions!r}")


@dataclass(frozen=True)
class SLOViolation:
    """One detected crossing of one objective of one spec."""

    slo: str
    #: Which bound tripped: ``rejection_rate`` / ``qos_level`` / ``psi``.
    objective: str
    #: The measured rolling value at detection time.
    measured: float
    #: The spec's bound it crossed.
    limit: float

    def to_attributes(self) -> dict:
        """The ``slo.violated`` event's attribute payload."""
        return {
            "slo": self.slo,
            "objective": self.objective,
            "measured": self.measured,
            "limit": self.limit,
        }
