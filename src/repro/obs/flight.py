"""Always-on flight recorder: the daemon's black box for postmortems.

A :class:`FlightRecorder` keeps a bounded ring of the most recent
telemetry -- spans (a :class:`~repro.obs.trace.Tracer` in capacity
mode), causal reservation events (subscribed to the live
:class:`~repro.obs.events.EventLog`, so it sees the full stream even
past the log's own storage bound), and a small dict of wire counters
(requests, bytes, errors).  Memory stays constant no matter how long
the daemon runs.

:meth:`snapshot` materialises the rings as a schema-v4 trace document
(the same shape :func:`repro.obs.export.write_trace_json` produces, so
``repro-obs summarize``/``stitch`` consume dumps directly), and
:meth:`dump` writes it to a JSON artifact.  The service daemon dumps on
SIGQUIT, on an unhandled handler exception, and on demand via
``POST /v1/debug/dump`` -- the three moments a postmortem needs the
last few thousand spans and events that led up to *now*.
"""

from __future__ import annotations

import json
import time as _time
from collections import deque
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.events import EventLog, ReservationEvent
from repro.obs.export import observability_to_dict
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["DEFAULT_EVENT_CAPACITY", "DEFAULT_SPAN_CAPACITY", "FlightRecorder"]

#: Ring sizes: generous enough to cover a multi-hundred-request burst
#: (each admission emits ~5 spans and ~10 events) while keeping a dump
#: comfortably under a few megabytes.
DEFAULT_SPAN_CAPACITY = 4096
DEFAULT_EVENT_CAPACITY = 16384


class FlightRecorder:
    """Bounded rings of recent spans, events and wire counters."""

    def __init__(
        self,
        *,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
    ) -> None:
        if event_capacity <= 0:
            raise ValueError(f"event_capacity must be positive, got {event_capacity!r}")
        #: Install this tracer (``obs.trace.install``) to feed the ring.
        self.tracer = Tracer(capacity=span_capacity)
        #: Recent events as to_dict() payloads, oldest first.
        self.events = deque(maxlen=event_capacity)
        #: Free-form transport counters (requests, bytes, errors).
        self.wire: Dict[str, float] = {}
        self.events_seen = 0
        self.dump_count = 0
        self._attached: Optional[EventLog] = None
        self._started_unix = _time.time()

    # -- event plumbing ----------------------------------------------------

    def _on_event(self, event: ReservationEvent) -> None:
        self.events.append(event.to_dict())
        self.events_seen += 1

    def attach(self, log: EventLog) -> None:
        """Subscribe to ``log`` so every emitted event enters the ring."""
        if self._attached is not None:
            raise RuntimeError("flight recorder is already attached to an event log")
        log.subscribe(self._on_event)
        self._attached = log

    def detach(self) -> None:
        """Stop recording events (no-op when not attached)."""
        if self._attached is not None:
            self._attached.unsubscribe(self._on_event)
            self._attached = None

    # -- wire counters -----------------------------------------------------

    def record_wire(self, key: str, amount: float = 1.0) -> None:
        """Bump a transport counter (created at zero on first use)."""
        self.wire[key] = self.wire.get(key, 0.0) + amount

    # -- dumping -----------------------------------------------------------

    def snapshot(
        self,
        *,
        reason: str,
        registry: Optional[MetricsRegistry] = None,
        meta: Optional[dict] = None,
    ) -> dict:
        """The rings as a schema-v4 trace document.

        ``reason`` records what triggered the dump (``sigquit``,
        ``exception``, ``debug_endpoint``); extra ``meta`` keys merge
        into the document's meta section.
        """
        document_meta = {
            "flight_recorder": True,
            "reason": reason,
            "dumped_at_unix": _time.time(),
            "recorder_started_unix": self._started_unix,
            "span_capacity": self.tracer.capacity,
            "event_capacity": self.events.maxlen,
            "events_seen": self.events_seen,
            "dump_count": self.dump_count,
        }
        if meta:
            document_meta.update(meta)
        document = observability_to_dict(self.tracer, registry, None, meta=document_meta)
        events = list(self.events)
        document["events"] = events
        counts: Dict[str, int] = {}
        for payload in events:
            counts[payload["kind"]] = counts.get(payload["kind"], 0) + 1
        document["event_counts"] = dict(sorted(counts.items()))
        dropped = self.events_seen - len(events)
        if dropped:
            document["events_dropped"] = dropped
        document["wire"] = dict(self.wire)
        return document

    def dump(
        self,
        path: Union[str, Path],
        *,
        reason: str,
        registry: Optional[MetricsRegistry] = None,
        meta: Optional[dict] = None,
    ) -> Path:
        """Write :meth:`snapshot` as JSON; returns the written path."""
        self.dump_count += 1
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        document = self.snapshot(reason=reason, registry=registry, meta=meta)
        target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
        return target
