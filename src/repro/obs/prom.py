"""Prometheus text exposition of a metrics snapshot.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` -- live, or the
``snapshot()`` dict carried inside an exported trace document -- in the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so any
scrape-compatible tooling can ingest a finished run:

* counters become ``<name>_total`` with a ``# TYPE ... counter`` header;
* gauges keep their name with a ``# TYPE ... gauge`` header;
* histograms expand to the cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count``.

Dots in instrument names (``broker.grants``) become underscores, and the
configured ``prefix`` namespaces everything (``repro_broker_grants``).
No Prometheus client library is involved -- the format is plain text.

Histogram *exemplars* (per-bucket trace ids recorded by
``Histogram.observe(..., exemplar=...)``) are rendered as ``# EXEMPLAR``
comment lines next to their bucket series.  The classic text format has
no exemplar syntax (that is OpenMetrics) and ignores unknown comment
lines, so the output stays scrapeable by either while a human tailing
``/metrics`` can still jump from a slow bucket to the trace that
landed there.

:func:`parse_exposition` is the inverse: it reads an exposition body (a
live ``/metrics`` scrape or a rendered snapshot) back into typed samples
-- counters, gauges, histogram series re-assembled from their
``_bucket``/``_sum``/``_count`` parts, and the ``# EXEMPLAR`` comment
lines -- which is what the cluster telemetry scraper
(:mod:`repro.obs.telemetry`) ingests.  Render -> parse is lossless for
every value the renderer can produce, including ``+Inf``/``-Inf``/
``NaN`` spellings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, format_labels

__all__ = [
    "ExpositionParseError",
    "ParsedExemplar",
    "ParsedExposition",
    "ParsedHistogram",
    "parse_exposition",
    "registry_exposition",
    "snapshot_exposition",
    "split_series_key",
]

DEFAULT_PREFIX = "repro_"


@lru_cache(maxsize=4096)
def _metric_name(name: str, prefix: str) -> str:
    """A legal Prometheus metric name (``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    sanitized = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in prefix + name
    )
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


@lru_cache(maxsize=8192)
def _render_label_items(items: Tuple[Tuple[str, str], ...]) -> str:
    if not items:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in items
    )
    return "{" + body + "}"


def _render_labels(labels: Mapping[str, str]) -> str:
    # The same label sets recur on every scrape of the same registry;
    # the items-tuple cache skips re-escaping and re-joining them.
    return _render_label_items(tuple(sorted(labels.items())))


@lru_cache(maxsize=8192)
def _parse_instrument_key(key: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Split a snapshot key ``name{k=v,...}`` back into name and labels."""
    if "{" not in key:
        return key, ()
    name, _, label_text = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in label_text.rstrip("}").split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, tuple(labels.items())


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        # The exposition format spells NaN exactly like this; Python's
        # repr(float("nan")) is lowercase "nan", which scrapers reject.
        return "NaN"
    return repr(value)


class _Writer:
    """Accumulates exposition lines, one ``# TYPE`` header per metric."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._typed: Dict[str, str] = {}

    def sample(self, metric: str, kind: str, labels: Mapping[str, str], value: float,
               *, sample_suffix: str = "") -> None:
        declared = self._typed.get(metric)
        if declared is None:
            self._typed[metric] = kind
            self._lines.append(f"# TYPE {metric} {kind}")
        self._lines.append(
            f"{metric}{sample_suffix}{_render_labels(labels)} {_format_value(value)}"
        )

    def comment(self, line: str) -> None:
        self._lines.append(f"# {line}")

    def text(self) -> str:
        return "\n".join(self._lines) + ("\n" if self._lines else "")


def snapshot_exposition(snapshot: Mapping[str, Mapping[str, dict]], *,
                        prefix: str = DEFAULT_PREFIX,
                        exemplars: Optional[Mapping[str, Mapping[int, Tuple[float, str]]]] = None) -> str:
    """Prometheus text exposition of a ``MetricsRegistry.snapshot()`` dict.

    Works equally on the ``metrics`` section of a loaded trace document,
    which is the same snapshot shape -- that is what ``repro-obs
    export-prom`` feeds it.  ``exemplars`` maps a histogram's snapshot
    key (``name{labels}``) to its per-bucket ``(value, trace_id)``
    exemplars; each is rendered as an ``# EXEMPLAR`` comment line after
    that histogram's series (see the module docstring).
    """
    writer = _Writer()
    for key, payload in snapshot.get("counters", {}).items():
        name, label_items = _parse_instrument_key(key)
        metric = _metric_name(name, prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        writer.sample(metric, "counter", dict(label_items),
                      float(payload["value"]))
    for key, payload in snapshot.get("gauges", {}).items():
        name, label_items = _parse_instrument_key(key)
        writer.sample(_metric_name(name, prefix), "gauge", dict(label_items),
                      float(payload["value"]))
    for key, payload in snapshot.get("histograms", {}).items():
        name, label_items = _parse_instrument_key(key)
        labels = dict(label_items)
        metric = _metric_name(name, prefix)
        cumulative = 0.0
        boundaries = list(payload.get("boundaries", []))
        bucket_counts = list(payload.get("bucket_counts", []))
        for bound, bucket_count in zip(boundaries, bucket_counts):
            cumulative += bucket_count
            bucket_labels = dict(labels)
            bucket_labels["le"] = f"{float(bound):g}"
            writer.sample(metric, "histogram", bucket_labels, cumulative,
                          sample_suffix="_bucket")
        total_count = float(payload.get("count", cumulative))
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        writer.sample(metric, "histogram", inf_labels, total_count,
                      sample_suffix="_bucket")
        writer.sample(metric, "histogram", labels, float(payload.get("sum", 0.0)),
                      sample_suffix="_sum")
        writer.sample(metric, "histogram", labels, total_count, sample_suffix="_count")
        for bucket_index, (value, exemplar) in sorted(
            (exemplars or {}).get(key, {}).items()
        ):
            if bucket_index < len(boundaries):
                le = f"{float(boundaries[bucket_index]):g}"
            else:
                le = "+Inf"
            bucket_labels = dict(labels)
            bucket_labels["le"] = le
            writer.comment(
                f"EXEMPLAR {metric}_bucket{_render_labels(bucket_labels)} "
                f"trace_id={exemplar} value={_format_value(value)}"
            )
    return writer.text()


def registry_exposition(registry: MetricsRegistry, *, prefix: str = DEFAULT_PREFIX) -> str:
    """Prometheus text exposition of a live :class:`MetricsRegistry`.

    Unlike the snapshot path, a live registry still holds its histograms'
    exemplars, so they are collected here and rendered as ``# EXEMPLAR``
    comment lines.
    """
    exemplars = {
        name + format_labels(tuple(sorted(labels.items()))): dict(histogram.exemplars)
        for name, labels, histogram in registry.iter_histograms()
        if histogram.exemplars
    }
    return snapshot_exposition(registry.snapshot(), prefix=prefix, exemplars=exemplars)


# -- parsing (the scraper's inverse of the renderer) ---------------------------


class ExpositionParseError(ValueError):
    """A line the exposition parser cannot make sense of."""


@dataclass(frozen=True)
class ParsedExemplar:
    """One ``# EXEMPLAR`` comment line, re-typed.

    ``series`` is the full bucket sample name (``<metric>_bucket``) and
    ``labels`` includes the bucket's ``le``; ``value`` is the
    observation that landed there and ``trace_id`` the trace it belongs
    to.
    """

    series: str
    labels: Dict[str, str]
    trace_id: str
    value: float


@dataclass
class ParsedHistogram:
    """One histogram re-assembled from its exposition series.

    ``boundaries`` are the finite ``le`` bounds in ascending order and
    ``bucket_counts`` the *non-cumulative* per-bucket counts (one extra
    entry for the ``+Inf`` overflow bucket), matching the layout of
    :class:`~repro.obs.metrics.Histogram` so a parsed scrape and a local
    instrument read identically.
    """

    boundaries: List[float] = field(default_factory=list)
    bucket_counts: List[float] = field(default_factory=list)
    count: float = 0.0
    sum: float = 0.0

    #: ``le`` -> cumulative count, in exposition order (parser internal).
    _cumulative: Dict[float, float] = field(default_factory=dict)

    def _finish(self) -> None:
        bounds = sorted(b for b in self._cumulative if not math.isinf(b))
        self.boundaries = bounds
        counts: List[float] = []
        previous = 0.0
        for bound in bounds:
            cumulative = self._cumulative[bound]
            counts.append(cumulative - previous)
            previous = cumulative
        overflow_total = self._cumulative.get(math.inf, self.count)
        counts.append(overflow_total - previous)
        self.bucket_counts = counts


@dataclass
class ParsedExposition:
    """Typed view of one exposition body, keyed like a registry snapshot.

    Sample keys are ``<metric>{label="value",...}`` with labels sorted,
    exactly how :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` keys
    instruments -- so store code can treat a parsed scrape and a local
    snapshot interchangeably.  Metric names keep whatever prefix the
    renderer applied (``repro_broker_grants_total``).
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, ParsedHistogram] = field(default_factory=dict)
    exemplars: List[ParsedExemplar] = field(default_factory=list)
    #: metric name -> declared ``# TYPE`` ("counter" / "gauge" / "histogram").
    types: Dict[str, str] = field(default_factory=dict)
    #: Samples with no ``# TYPE`` declaration (foreign scrape targets).
    untyped: Dict[str, float] = field(default_factory=dict)

    @property
    def sample_count(self) -> int:
        """Total number of typed samples parsed."""
        return (
            len(self.counters)
            + len(self.gauges)
            + len(self.histograms)
            + len(self.untyped)
        )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError as exc:
        raise ExpositionParseError(f"unparseable sample value {text!r}") from exc


@lru_cache(maxsize=8192)
def _parse_sample_prefix(
    prefix: str,
) -> Tuple[str, Tuple[Tuple[str, str], ...], str]:
    """``name{labels}`` -> (name, sorted label items, canonical key).

    Sample lines repeat their name-and-labels prefix verbatim on every
    scrape of the same target (only the value changes), so this cache
    turns steady-state parsing of a line into one ``rpartition`` plus a
    float parse.
    """
    if "{" in prefix:
        name, _, rest = prefix.partition("{")
        if not rest.endswith("}"):
            raise ExpositionParseError(f"unterminated label set: {prefix!r}")
        name = name.strip()
        labels = _parse_label_text(rest[:-1])
        items = tuple(sorted(labels.items()))
        return name, items, _key_from_items(name, items)
    name = prefix.strip()
    if not name:
        raise ExpositionParseError(f"malformed sample line: {prefix!r}")
    return name, (), name


@lru_cache(maxsize=8192)
def _histogram_bucket_parts(
    base: str, items: Tuple[Tuple[str, str], ...]
) -> Tuple[Optional[str], str]:
    """Bucket label items -> (the ``le`` text, the le-less series key)."""
    le_text: Optional[str] = None
    rest: List[Tuple[str, str]] = []
    for label, value in items:
        if label == "le":
            le_text = value
        else:
            rest.append((label, value))
    return le_text, _key_from_items(base, tuple(rest))


def _parse_label_text(label_text: str) -> Dict[str, str]:
    """``k="v",k2="v2"`` -> dict, undoing the renderer's escapes."""
    labels: Dict[str, str] = {}
    index = 0
    length = len(label_text)
    while index < length:
        eq = label_text.find('="', index)
        if eq < 0:
            raise ExpositionParseError(f"malformed labels: {label_text!r}")
        name = label_text[index:eq]
        value_chars: List[str] = []
        cursor = eq + 2
        while cursor < length:
            ch = label_text[cursor]
            if ch == "\\" and cursor + 1 < length:
                escaped = label_text[cursor + 1]
                value_chars.append("\n" if escaped == "n" else escaped)
                cursor += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            cursor += 1
        else:
            raise ExpositionParseError(f"unterminated label value: {label_text!r}")
        labels[name] = "".join(value_chars)
        index = cursor + 1
        if index < length and label_text[index] == ",":
            index += 1
    return labels


def split_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a parsed sample key ``name{k="v",...}`` into name and labels.

    The exact inverse of how :func:`parse_exposition` keys its samples
    (quoted, escaped, sorted labels) -- unlike the snapshot-key splitter
    this handles values containing commas or braces.
    """
    if "{" not in key:
        return key, {}
    name, _, label_text = key.partition("{")
    return name, _parse_label_text(label_text.rstrip("}"))


def _key_from_items(name: str, items: Tuple[Tuple[str, str], ...]) -> str:
    rendered = _render_label_items(items)
    return name + rendered if rendered else name


def _sample_key(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    return _key_from_items(name, tuple(sorted(labels.items())))


def _parse_exemplar_comment(body: str) -> Optional[ParsedExemplar]:
    """``EXEMPLAR <series>{labels} trace_id=<id> value=<v>`` or None."""
    try:
        series_part, trace_part, value_part = body.split(" ")[1:4]
    except ValueError:
        return None
    if not trace_part.startswith("trace_id=") or not value_part.startswith("value="):
        return None
    if "{" in series_part:
        name, _, rest = series_part.partition("{")
        labels = _parse_label_text(rest.rstrip("}"))
    else:
        name, labels = series_part, {}
    return ParsedExemplar(
        series=name,
        labels=labels,
        trace_id=trace_part[len("trace_id="):],
        value=_parse_value(value_part[len("value="):]),
    )


def parse_exposition(text: str) -> ParsedExposition:
    """Parse a Prometheus text exposition body into typed samples.

    The inverse of :func:`snapshot_exposition`: ``# TYPE`` headers type
    the samples, histogram ``_bucket``/``_sum``/``_count`` series are
    folded back into one :class:`ParsedHistogram` per label set, and
    ``# EXEMPLAR`` comment lines are collected.  Unknown comment lines
    are skipped (the format says so); samples that never saw a ``# TYPE``
    land in :attr:`ParsedExposition.untyped`.
    """
    parsed = ParsedExposition()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body == "TYPE" or body.startswith("TYPE "):
                parts = body.split()
                if len(parts) < 3:
                    raise ExpositionParseError(
                        f"truncated TYPE header: {line!r}"
                    )
                parsed.types[parts[1]] = parts[2]
                continue
            if body.startswith("EXEMPLAR "):
                exemplar = _parse_exemplar_comment(body)
                if exemplar is not None:
                    parsed.exemplars.append(exemplar)
            continue  # HELP and any other comment: ignored by spec
        prefix, sep, value_text = line.rpartition(" ")
        if not sep:
            raise ExpositionParseError(f"malformed sample line: {line!r}")
        name, items, key = _parse_sample_prefix(prefix)
        value = _parse_value(value_text)
        base, suffix = name, ""
        for candidate in ("_bucket", "_sum", "_count"):
            if name.endswith(candidate) and parsed.types.get(
                name[: -len(candidate)]
            ) == "histogram":
                base, suffix = name[: -len(candidate)], candidate
                break
        kind = parsed.types.get(base)
        if kind == "histogram":
            le_text, series_key = _histogram_bucket_parts(base, items)
            histogram = parsed.histograms.setdefault(
                series_key, ParsedHistogram()
            )
            if suffix == "_bucket":
                if le_text is None:
                    raise ExpositionParseError(
                        f"histogram bucket without le label: {line!r}"
                    )
                histogram._cumulative[_parse_value(le_text)] = value
            elif suffix == "_sum":
                histogram.sum = value
            elif suffix == "_count":
                histogram.count = value
            else:
                raise ExpositionParseError(
                    f"unexpected histogram sample {name!r}: {line!r}"
                )
        elif kind == "counter":
            parsed.counters[key] = value
        elif kind == "gauge":
            parsed.gauges[key] = value
        else:
            parsed.untyped[key] = value
    for histogram in parsed.histograms.values():
        histogram._finish()
    return parsed
