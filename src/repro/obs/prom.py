"""Prometheus text exposition of a metrics snapshot.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` -- live, or the
``snapshot()`` dict carried inside an exported trace document -- in the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so any
scrape-compatible tooling can ingest a finished run:

* counters become ``<name>_total`` with a ``# TYPE ... counter`` header;
* gauges keep their name with a ``# TYPE ... gauge`` header;
* histograms expand to the cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count``.

Dots in instrument names (``broker.grants``) become underscores, and the
configured ``prefix`` namespaces everything (``repro_broker_grants``).
No Prometheus client library is involved -- the format is plain text.

Histogram *exemplars* (per-bucket trace ids recorded by
``Histogram.observe(..., exemplar=...)``) are rendered as ``# EXEMPLAR``
comment lines next to their bucket series.  The classic text format has
no exemplar syntax (that is OpenMetrics) and ignores unknown comment
lines, so the output stays scrapeable by either while a human tailing
``/metrics`` can still jump from a slow bucket to the trace that
landed there.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, format_labels

__all__ = ["registry_exposition", "snapshot_exposition"]

DEFAULT_PREFIX = "repro_"


def _metric_name(name: str, prefix: str) -> str:
    """A legal Prometheus metric name (``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    sanitized = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in prefix + name
    )
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _parse_instrument_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a snapshot key ``name{k=v,...}`` back into name and labels."""
    if "{" not in key:
        return key, {}
    name, _, label_text = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in label_text.rstrip("}").split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        # The exposition format spells NaN exactly like this; Python's
        # repr(float("nan")) is lowercase "nan", which scrapers reject.
        return "NaN"
    return repr(value)


class _Writer:
    """Accumulates exposition lines, one ``# TYPE`` header per metric."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._typed: Dict[str, str] = {}

    def sample(self, metric: str, kind: str, labels: Mapping[str, str], value: float,
               *, sample_suffix: str = "") -> None:
        declared = self._typed.get(metric)
        if declared is None:
            self._typed[metric] = kind
            self._lines.append(f"# TYPE {metric} {kind}")
        self._lines.append(
            f"{metric}{sample_suffix}{_render_labels(labels)} {_format_value(value)}"
        )

    def comment(self, line: str) -> None:
        self._lines.append(f"# {line}")

    def text(self) -> str:
        return "\n".join(self._lines) + ("\n" if self._lines else "")


def snapshot_exposition(snapshot: Mapping[str, Mapping[str, dict]], *,
                        prefix: str = DEFAULT_PREFIX,
                        exemplars: Optional[Mapping[str, Mapping[int, Tuple[float, str]]]] = None) -> str:
    """Prometheus text exposition of a ``MetricsRegistry.snapshot()`` dict.

    Works equally on the ``metrics`` section of a loaded trace document,
    which is the same snapshot shape -- that is what ``repro-obs
    export-prom`` feeds it.  ``exemplars`` maps a histogram's snapshot
    key (``name{labels}``) to its per-bucket ``(value, trace_id)``
    exemplars; each is rendered as an ``# EXEMPLAR`` comment line after
    that histogram's series (see the module docstring).
    """
    writer = _Writer()
    for key, payload in snapshot.get("counters", {}).items():
        name, labels = _parse_instrument_key(key)
        metric = _metric_name(name, prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        writer.sample(metric, "counter", labels, float(payload["value"]))
    for key, payload in snapshot.get("gauges", {}).items():
        name, labels = _parse_instrument_key(key)
        writer.sample(_metric_name(name, prefix), "gauge", labels, float(payload["value"]))
    for key, payload in snapshot.get("histograms", {}).items():
        name, labels = _parse_instrument_key(key)
        metric = _metric_name(name, prefix)
        cumulative = 0.0
        boundaries = list(payload.get("boundaries", []))
        bucket_counts = list(payload.get("bucket_counts", []))
        for bound, bucket_count in zip(boundaries, bucket_counts):
            cumulative += bucket_count
            bucket_labels = dict(labels)
            bucket_labels["le"] = f"{float(bound):g}"
            writer.sample(metric, "histogram", bucket_labels, cumulative,
                          sample_suffix="_bucket")
        total_count = float(payload.get("count", cumulative))
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        writer.sample(metric, "histogram", inf_labels, total_count,
                      sample_suffix="_bucket")
        writer.sample(metric, "histogram", labels, float(payload.get("sum", 0.0)),
                      sample_suffix="_sum")
        writer.sample(metric, "histogram", labels, total_count, sample_suffix="_count")
        for bucket_index, (value, exemplar) in sorted(
            (exemplars or {}).get(key, {}).items()
        ):
            if bucket_index < len(boundaries):
                le = f"{float(boundaries[bucket_index]):g}"
            else:
                le = "+Inf"
            bucket_labels = dict(labels)
            bucket_labels["le"] = le
            writer.comment(
                f"EXEMPLAR {metric}_bucket{_render_labels(bucket_labels)} "
                f"trace_id={exemplar} value={_format_value(value)}"
            )
    return writer.text()


def registry_exposition(registry: MetricsRegistry, *, prefix: str = DEFAULT_PREFIX) -> str:
    """Prometheus text exposition of a live :class:`MetricsRegistry`.

    Unlike the snapshot path, a live registry still holds its histograms'
    exemplars, so they are collected here and rendered as ``# EXEMPLAR``
    comment lines.
    """
    exemplars = {
        name + format_labels(tuple(sorted(labels.items()))): dict(histogram.exemplars)
        for name, labels, histogram in registry.iter_histograms()
        if histogram.exemplars
    }
    return snapshot_exposition(registry.snapshot(), prefix=prefix, exemplars=exemplars)
