"""Trace analysis: answer "why" questions from an exported trace document.

Loads the JSON trace documents written by :func:`repro.obs.export
.write_trace_json` (schema v4 with request-scoped ``trace_id``/
``request_id`` stamps on spans and events; v1-v3 documents without them
still load) and computes:

* :func:`critical_path` -- per-session wall-time breakdown by phase
  *self time* (time in a span minus its children), the "where did this
  session's establishment latency go" view;
* :func:`broker_timelines` -- per-resource grant/reject/release counts
  and a utilization timeline over the simulation clock, reconstructed
  from ``broker.*`` events;
* :func:`top_bottlenecks` -- the top-K contended resources, scored from
  how often each was a plan's psi bottleneck, lost a phase-3 admission
  race, or rejected a broker request;
* :func:`diff_documents` / :func:`gate_diff` -- numeric deltas between
  two documents (trace or benchmark-ledger JSON), the engine behind
  ``repro-obs diff`` and the CI benchmark regression gate;
* :func:`stitch_traces` -- merge a *client-side* trace document (from
  the load generator or any traced ``ServiceClient`` caller) with a
  *daemon-side* one (a flight-recorder dump, or the daemon's exported
  trace) into one cross-process timeline per request, joined on the
  propagated ``trace_id`` -- the engine behind ``repro-obs stitch``.

Everything here consumes plain loaded JSON -- no live tracer or registry
is needed, so post-mortem analysis works on any exported artifact.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.events import ReservationEvent
from repro.obs.export import TRACE_SCHEMA_VERSION

__all__ = [
    "AdaptationSummary",
    "BottleneckReport",
    "BrokerTimeline",
    "DiffEntry",
    "FaultSummary",
    "RequestTimeline",
    "SessionBreakdown",
    "StitchReport",
    "TraceDocument",
    "TraceFormatError",
    "adaptation_summary",
    "broker_timelines",
    "critical_path",
    "diff_documents",
    "fault_summary",
    "gate_diff",
    "is_timing_path",
    "load_trace",
    "stitch_traces",
    "top_bottlenecks",
]

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """The document is not a loadable trace/ledger JSON."""


@dataclass
class TraceDocument:
    """One loaded trace document, version-normalised.

    v1 documents (no event log) load with ``events == []``; v1/v2
    documents (no online monitoring plane) load with ``monitoring ==
    {}``; consumers need not branch on the schema version.
    """

    schema_version: int
    meta: Dict[str, object] = field(default_factory=dict)
    spans: List[dict] = field(default_factory=list)
    span_totals: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, dict] = field(default_factory=dict)
    events: List[ReservationEvent] = field(default_factory=list)
    events_dropped: int = 0
    monitoring: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceDocument":
        """Normalise a loaded JSON document (schema v1 through v4)."""
        if not isinstance(payload, dict) or "schema_version" not in payload:
            raise TraceFormatError(
                "not a trace document: missing the 'schema_version' field"
            )
        version = int(payload["schema_version"])
        if not 1 <= version <= TRACE_SCHEMA_VERSION:
            raise TraceFormatError(
                f"unsupported trace schema version {version}; "
                f"this build reads versions 1..{TRACE_SCHEMA_VERSION}"
            )
        return cls(
            schema_version=version,
            meta=dict(payload.get("meta", {})),
            spans=list(payload.get("spans", [])),
            span_totals={
                name: dict(totals)
                for name, totals in payload.get("span_totals", {}).items()
            },
            metrics=dict(payload.get("metrics", {})),
            events=[
                ReservationEvent.from_dict(event)
                for event in payload.get("events", [])
            ],
            events_dropped=int(payload.get("events_dropped", 0)),
            monitoring=dict(payload.get("monitoring", {})),
        )

    def counters(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` view of the counters."""
        return {
            key: float(entry["value"])
            for key, entry in self.metrics.get("counters", {}).items()
        }

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        total = 0.0
        for key, value in self.counters().items():
            if key == name or key.startswith(name + "{"):
                total += value
        return total


def load_trace(path: PathLike) -> TraceDocument:
    """Load and normalise a trace JSON file (schema v1 through v4)."""
    payload = json.loads(Path(path).read_text())
    return TraceDocument.from_dict(payload)


# -- critical path -------------------------------------------------------------


@dataclass
class SessionBreakdown:
    """Where one session-establishment attempt spent its wall time."""

    session: str
    service: str
    outcome: str
    start: float
    total_seconds: float
    #: span name -> summed *self time* (duration minus children) within
    #: this session's establish tree, seconds.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def critical_phase(self) -> str:
        """The phase with the largest self time ("" when empty)."""
        if not self.phase_seconds:
            return ""
        return max(self.phase_seconds.items(), key=lambda item: (item[1], item[0]))[0]


def critical_path(
    doc: TraceDocument,
    *,
    session: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[SessionBreakdown]:
    """Per-session phase breakdowns, slowest establishment first.

    Every ``establish`` span roots one session attempt; each span in its
    subtree contributes its *self time* (duration minus direct children)
    under its own name, the root's overhead included under
    ``establish``.  ``session`` restricts to one session id; ``limit``
    keeps only the N slowest.
    """
    children: Dict[int, List[dict]] = {}
    for record in doc.spans:
        parent = record.get("parent")
        if parent is not None:
            children.setdefault(parent, []).append(record)

    breakdowns: List[SessionBreakdown] = []
    for record in doc.spans:
        if record["name"] != "establish":
            continue
        attributes = record.get("attributes", {})
        session_id = str(attributes.get("session", f"span-{record['index']}"))
        if session is not None and session_id != session:
            continue
        phase_seconds: Dict[str, float] = {}
        stack = [record]
        while stack:
            current = stack.pop()
            kids = children.get(current["index"], [])
            self_time = current["duration"] - sum(k["duration"] for k in kids)
            phase_seconds[current["name"]] = phase_seconds.get(
                current["name"], 0.0
            ) + max(self_time, 0.0)
            stack.extend(kids)
        breakdowns.append(
            SessionBreakdown(
                session=session_id,
                service=str(attributes.get("service", "")),
                outcome=str(attributes.get("outcome", "")),
                start=float(record.get("start", 0.0)),
                total_seconds=float(record["duration"]),
                phase_seconds=phase_seconds,
            )
        )
    breakdowns.sort(key=lambda b: (-b.total_seconds, b.session))
    if limit is not None:
        breakdowns = breakdowns[:limit]
    return breakdowns


def phase_totals(breakdowns: Sequence[SessionBreakdown]) -> Dict[str, float]:
    """Summed self time per phase over a set of session breakdowns."""
    totals: Dict[str, float] = {}
    for breakdown in breakdowns:
        for name, seconds in breakdown.phase_seconds.items():
            totals[name] = totals.get(name, 0.0) + seconds
    return dict(sorted(totals.items(), key=lambda item: -item[1]))


# -- broker timelines ----------------------------------------------------------


@dataclass
class BrokerTimeline:
    """One resource's admission story over the simulation clock."""

    resource: str
    grants: int = 0
    rejects: int = 0
    releases: int = 0
    probes: int = 0
    peak_utilization: float = 0.0
    first_reject_time: Optional[float] = None
    #: (sim time, utilization) after each granting/releasing event.
    utilization_points: List[Tuple[float, float]] = field(default_factory=list)
    #: (sim time, requested, available) of each rejection.
    reject_points: List[Tuple[float, float, float]] = field(default_factory=list)

    @property
    def attempts(self) -> int:
        """Reservation attempts seen (grants + rejects)."""
        return self.grants + self.rejects

    @property
    def rejection_rate(self) -> float:
        """Fraction of reservation attempts rejected (0 when none)."""
        return self.rejects / self.attempts if self.attempts else 0.0


def broker_timelines(doc: TraceDocument) -> Dict[str, BrokerTimeline]:
    """Per-resource utilization/rejection timelines from ``broker.*`` events.

    Returns an empty mapping for v1 documents (no event log).
    """
    timelines: Dict[str, BrokerTimeline] = {}
    ordered = sorted(
        (e for e in doc.events if e.kind.startswith("broker.") and e.resource),
        key=lambda e: (e.time if e.time is not None else math.inf, e.seq),
    )
    for event in ordered:
        timeline = timelines.get(event.resource)
        if timeline is None:
            timeline = timelines[event.resource] = BrokerTimeline(event.resource)
        attributes = event.attributes
        if event.kind == "broker.probe":
            timeline.probes += 1
            continue
        utilization = attributes.get("utilization")
        if event.kind == "broker.grant":
            timeline.grants += 1
        elif event.kind == "broker.release":
            timeline.releases += 1
        elif event.kind == "broker.reject":
            timeline.rejects += 1
            if timeline.first_reject_time is None:
                timeline.first_reject_time = event.time
            timeline.reject_points.append(
                (
                    event.time if event.time is not None else math.nan,
                    float(attributes.get("requested", 0.0)),
                    float(attributes.get("available", 0.0)),
                )
            )
            continue
        if utilization is not None and event.time is not None:
            utilization = float(utilization)
            timeline.utilization_points.append((event.time, utilization))
            timeline.peak_utilization = max(timeline.peak_utilization, utilization)
    return dict(sorted(timelines.items()))


# -- bottleneck ranking --------------------------------------------------------


@dataclass
class BottleneckReport:
    """How often (and how) one resource constrained the system."""

    resource: str
    #: Times a computed plan's psi bottleneck was this resource.
    planned_bottleneck: int = 0
    #: Phase-3 admission races lost on this resource (whole-session kills).
    admission_failures: int = 0
    #: Raw broker-level rejections.
    broker_rejects: int = 0
    #: Mean psi of the plans bottlenecked on this resource.
    mean_psi: float = 0.0
    _psi_sum: float = 0.0

    @property
    def score(self) -> float:
        """Severity: session kills weigh double plan-time pressure."""
        return (
            self.planned_bottleneck
            + 2.0 * self.admission_failures
            + 2.0 * self.broker_rejects
        )


def top_bottlenecks(doc: TraceDocument, k: int = 5) -> List[BottleneckReport]:
    """The top-``k`` contended resources, most severe first.

    Scored from the causal event log: every ``session.planned`` (and
    ``session.admitted``) names the plan's psi bottleneck; every
    ``session.rejected(reason=admission_failed)`` names the resource
    that lost the phase-3 race; every ``broker.reject`` is a raw
    admission refusal.  v1 documents yield an empty list.
    """
    reports: Dict[str, BottleneckReport] = {}

    def report_for(resource: str) -> BottleneckReport:
        report = reports.get(resource)
        if report is None:
            report = reports[resource] = BottleneckReport(resource)
        return report

    for event in doc.events:
        if event.kind == "session.planned":
            bottleneck = event.attributes.get("bottleneck")
            if bottleneck:
                report = report_for(str(bottleneck))
                report.planned_bottleneck += 1
                report._psi_sum += float(event.attributes.get("psi", 0.0))
        elif event.kind == "session.rejected":
            if event.attributes.get("reason") == "admission_failed" and event.resource:
                report_for(event.resource).admission_failures += 1
        elif event.kind == "broker.reject" and event.resource:
            report_for(event.resource).broker_rejects += 1
    for report in reports.values():
        if report.planned_bottleneck:
            report.mean_psi = report._psi_sum / report.planned_bottleneck
    ranked = sorted(reports.values(), key=lambda r: (-r.score, r.resource))
    return ranked[: max(k, 0)]


# -- fault-injection summary ---------------------------------------------------


@dataclass
class FaultSummary:
    """The fault/recovery story of one run, from its ``fault.*``,
    ``segment.*``, ``session.replanned`` and ``lease.expired`` events."""

    #: fault kind -> number of injected faults that fired.
    injected: Dict[str, int] = field(default_factory=dict)
    #: protocol phase -> timeouts the coordinator saw there.
    timeouts: Dict[str, int] = field(default_factory=dict)
    #: protocol phase -> bounded retries spent there.
    retries: Dict[str, int] = field(default_factory=dict)
    #: re-plan reason -> count (``admission_failed`` / ``host_unreachable``).
    replans: Dict[str, int] = field(default_factory=dict)
    #: orphaned leases the reaper reclaimed.
    leases_expired: int = 0
    #: sessions rejected because a host stayed unreachable.
    unreachable_rejections: int = 0

    @property
    def total_injected(self) -> int:
        """All injected faults, over every kind."""
        return sum(self.injected.values())

    @property
    def empty(self) -> bool:
        """True when the run saw no fault activity at all."""
        return (
            not self.injected
            and not self.timeouts
            and not self.retries
            and not self.replans
            and self.leases_expired == 0
        )


def fault_summary(doc: TraceDocument) -> FaultSummary:
    """Aggregate the fault-injection and recovery events of a document.

    Returns an all-zero summary for fault-free (or v1) documents, so
    callers can unconditionally ask and print only when non-empty.
    """
    summary = FaultSummary()
    for event in doc.events:
        if event.kind == "fault.injected":
            kind = str(event.attributes.get("fault", "unknown"))
            summary.injected[kind] = summary.injected.get(kind, 0) + 1
        elif event.kind == "segment.timeout":
            phase = str(event.attributes.get("phase", "unknown"))
            summary.timeouts[phase] = summary.timeouts.get(phase, 0) + 1
        elif event.kind == "segment.retry":
            phase = str(event.attributes.get("phase", "unknown"))
            summary.retries[phase] = summary.retries.get(phase, 0) + 1
        elif event.kind == "session.replanned":
            reason = str(event.attributes.get("reason", "unknown"))
            summary.replans[reason] = summary.replans.get(reason, 0) + 1
        elif event.kind == "lease.expired":
            summary.leases_expired += 1
        elif (
            event.kind == "session.rejected"
            and event.attributes.get("reason") == "host_unreachable"
        ):
            summary.unreachable_rejections += 1
    summary.injected = dict(sorted(summary.injected.items()))
    summary.timeouts = dict(sorted(summary.timeouts.items()))
    summary.retries = dict(sorted(summary.retries.items()))
    summary.replans = dict(sorted(summary.replans.items()))
    return summary


# -- adaptation (monitoring-plane) summary -------------------------------------


@dataclass
class AdaptationSummary:
    """The §5 adaptation story of one run, from its monitoring events
    (``broker.observed``, ``session.drift``, ``slo.violated``,
    ``session.renegotiated``)."""

    #: per-broker ``broker.observed`` digests seen.
    observations: int = 0
    #: resource -> drift detections against it.
    drifts: Dict[str, int] = field(default_factory=dict)
    #: SLO name -> violations.
    violations: Dict[str, int] = field(default_factory=dict)
    #: renegotiation outcome -> count (upgraded/downgraded/unchanged/...).
    renegotiations: Dict[str, int] = field(default_factory=dict)
    #: (session, trigger seq, renegotiation seq) causal pairs -- every
    #: renegotiation matched to the latest prior drift/violation that
    #: names the same session.
    causal_pairs: List[Tuple[str, int, int]] = field(default_factory=list)
    #: renegotiations with no prior drift/violation on their session.
    unmatched_renegotiations: int = 0

    @property
    def total_drifts(self) -> int:
        """All drift detections, over every resource."""
        return sum(self.drifts.values())

    @property
    def total_renegotiations(self) -> int:
        """All renegotiations, over every outcome."""
        return sum(self.renegotiations.values())

    @property
    def empty(self) -> bool:
        """True when the run saw no monitoring-plane activity at all."""
        return (
            self.observations == 0
            and not self.drifts
            and not self.violations
            and not self.renegotiations
        )


def adaptation_summary(doc: TraceDocument) -> AdaptationSummary:
    """Aggregate the online monitoring-plane events of a document.

    Every ``session.renegotiated`` is causally matched (by session id)
    to the latest earlier ``session.drift`` / ``slo.violated`` that
    triggered it; unmatched renegotiations are counted separately so the
    drift -> renegotiation chain is auditable.  Returns an all-zero
    summary for documents without monitoring events (v1/v2 included).
    """
    summary = AdaptationSummary()
    last_trigger_seq: Dict[str, int] = {}
    for event in doc.events:
        if event.kind == "broker.observed":
            summary.observations += 1
        elif event.kind == "session.drift":
            resource = event.resource or "unknown"
            summary.drifts[resource] = summary.drifts.get(resource, 0) + 1
            if event.session:
                last_trigger_seq[event.session] = event.seq
        elif event.kind == "slo.violated":
            name = str(event.attributes.get("slo", "unknown"))
            summary.violations[name] = summary.violations.get(name, 0) + 1
            if event.session:
                last_trigger_seq[event.session] = event.seq
        elif event.kind == "session.renegotiated":
            outcome = str(event.attributes.get("outcome", "unknown"))
            summary.renegotiations[outcome] = (
                summary.renegotiations.get(outcome, 0) + 1
            )
            trigger = last_trigger_seq.get(event.session or "")
            if trigger is None:
                summary.unmatched_renegotiations += 1
            else:
                summary.causal_pairs.append((event.session, trigger, event.seq))
    summary.drifts = dict(sorted(summary.drifts.items()))
    summary.violations = dict(sorted(summary.violations.items()))
    summary.renegotiations = dict(sorted(summary.renegotiations.items()))
    return summary


# -- cross-process stitching ---------------------------------------------------


@dataclass
class RequestTimeline:
    """One request's story across the service boundary.

    Joined on the propagated ``trace_id``: the client-side spans are the
    caller's view (connect + round trip), the daemon-side spans and
    causal events are what that request made the service do.  Spans are
    plain span dicts (schema v4 shape), oldest first.
    """

    trace_id: str
    request_id: Optional[str] = None
    session: Optional[str] = None
    client_spans: List[dict] = field(default_factory=list)
    daemon_spans: List[dict] = field(default_factory=list)
    daemon_events: List[ReservationEvent] = field(default_factory=list)

    @property
    def client_seconds(self) -> float:
        """The caller-observed wall time: its longest span's duration."""
        return max((float(s.get("duration", 0.0)) for s in self.client_spans), default=0.0)

    @property
    def daemon_seconds(self) -> float:
        """The daemon-observed wall time: its longest span's duration."""
        return max((float(s.get("duration", 0.0)) for s in self.daemon_spans), default=0.0)

    @property
    def outcome(self) -> str:
        """The request's session outcome from its causal events ("" when
        the events carry no ``session.*`` verdict)."""
        for event in reversed(self.daemon_events):
            if event.kind.startswith("session."):
                return event.kind.split(".", 1)[1]
        return ""

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Daemon-side summed duration per span name."""
        totals: Dict[str, float] = {}
        for record in self.daemon_spans:
            name = str(record.get("name", ""))
            totals[name] = totals.get(name, 0.0) + float(record.get("duration", 0.0))
        return totals

    def to_dict(self) -> dict:
        """JSON-compatible representation (the stitched document's shape)."""
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "session": self.session,
            "outcome": self.outcome,
            "client_seconds": self.client_seconds,
            "daemon_seconds": self.daemon_seconds,
            "client_spans": list(self.client_spans),
            "daemon_spans": list(self.daemon_spans),
            "daemon_events": [event.to_dict() for event in self.daemon_events],
        }


@dataclass
class StitchReport:
    """The result of merging a client and a daemon trace document."""

    #: One timeline per linked trace_id, in client send order.
    timelines: List[RequestTimeline] = field(default_factory=list)
    #: Client-side trace_ids with no daemon-side span or event -- the
    #: request never reached (or never finished inside) the daemon's
    #: telemetry window.
    orphan_client: List[str] = field(default_factory=list)
    #: Daemon-side trace_ids with no client-side span -- telemetry from
    #: callers outside the client document (or an untraced caller).
    orphan_daemon: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every client request linked to daemon-side telemetry."""
        return not self.orphan_client

    def to_dict(self) -> dict:
        """JSON-compatible stitched document."""
        return {
            "schema": "stitched-trace/1",
            "requests": [timeline.to_dict() for timeline in self.timelines],
            "orphan_client": list(self.orphan_client),
            "orphan_daemon": list(self.orphan_daemon),
            "complete": self.complete,
        }


def stitch_traces(client: TraceDocument, daemon: TraceDocument) -> StitchReport:
    """Merge client- and daemon-side documents into per-request timelines.

    Every span of the client document stamped with a ``trace_id`` opens
    (or extends) that trace's timeline; the daemon document contributes
    its stamped spans and causal events to the same key.  Client traces
    with no daemon-side telemetry land in ``orphan_client`` (the
    acceptance gate of the CI smoke run), daemon traces with no client
    side in ``orphan_daemon``.  Un-stamped records on either side are
    ignored -- they belong to no request.
    """
    timelines: Dict[str, RequestTimeline] = {}
    client_order: List[str] = []

    def timeline_for(trace_id: str) -> RequestTimeline:
        timeline = timelines.get(trace_id)
        if timeline is None:
            timeline = timelines[trace_id] = RequestTimeline(trace_id)
        return timeline

    for record in client.spans:
        trace_id = record.get("trace_id")
        if not trace_id:
            continue
        if trace_id not in timelines:
            client_order.append(trace_id)
        timeline = timeline_for(trace_id)
        timeline.client_spans.append(record)
        if timeline.request_id is None:
            timeline.request_id = record.get("request_id")
        session = record.get("attributes", {}).get("session")
        if timeline.session is None and session is not None:
            timeline.session = str(session)

    daemon_side = set()
    for record in daemon.spans:
        trace_id = record.get("trace_id")
        if not trace_id:
            continue
        daemon_side.add(trace_id)
        timeline = timeline_for(trace_id)
        timeline.daemon_spans.append(record)
        if timeline.request_id is None:
            timeline.request_id = record.get("request_id")
    for event in daemon.events:
        if not event.trace_id:
            continue
        daemon_side.add(event.trace_id)
        timeline = timeline_for(event.trace_id)
        timeline.daemon_events.append(event)
        if timeline.request_id is None:
            timeline.request_id = event.request_id
        if timeline.session is None and event.session is not None:
            timeline.session = event.session

    client_side = set(client_order)
    linked = [timelines[tid] for tid in client_order if tid in daemon_side]
    orphan_client = [tid for tid in client_order if tid not in daemon_side]
    orphan_daemon = sorted(daemon_side - client_side)
    return StitchReport(
        timelines=linked, orphan_client=orphan_client, orphan_daemon=orphan_daemon
    )


# -- document diffing ----------------------------------------------------------


@dataclass(frozen=True)
class DiffEntry:
    """One numeric leaf compared between two documents."""

    path: str
    base: Optional[float]
    new: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        """Absolute change (None when the leaf exists on one side only)."""
        if self.base is None or self.new is None:
            return None
        return self.new - self.base

    @property
    def relative(self) -> Optional[float]:
        """Relative change against the base (None when not computable)."""
        if self.base is None or self.new is None:
            return None
        if self.base == 0.0:
            return None if self.new == 0.0 else math.inf
        return (self.new - self.base) / abs(self.base)


def _flatten_numeric(payload: object, prefix: str, out: Dict[str, float]) -> None:
    """Collect numeric leaves of nested dicts under dotted paths.

    Lists are skipped on purpose: per-span/per-event arrays and histogram
    bucket vectors are detail, not comparable headline numbers.
    """
    if isinstance(payload, bool):
        return
    if isinstance(payload, (int, float)):
        out[prefix] = float(payload)
        return
    if isinstance(payload, dict):
        for key, value in payload.items():
            _flatten_numeric(value, f"{prefix}.{key}" if prefix else str(key), out)


def comparable_view(payload: dict) -> Dict[str, float]:
    """The numeric leaves of a document that are worth diffing.

    Trace documents compare their span totals, metrics and event counts
    (never the raw span/event arrays); benchmark ledgers and any other
    JSON object compare every numeric leaf.
    """
    if "schema_version" in payload:
        view: Dict[str, float] = {}
        for section in ("span_totals", "metrics", "event_counts", "meta"):
            if section in payload:
                _flatten_numeric(payload[section], section, view)
        return view
    view = {}
    for key, value in payload.items():
        # Per-runner timing baselines are gate *inputs* (substituted for
        # the headline's timing leaves when fingerprints differ), never
        # comparable leaves themselves.
        if key == "timing_baselines":
            continue
        _flatten_numeric(value, str(key), view)
    return view


def diff_documents(base: dict, new: dict) -> List[DiffEntry]:
    """Compare two loaded JSON documents leaf by leaf, sorted by path."""
    base_view = comparable_view(base)
    new_view = comparable_view(new)
    entries: List[DiffEntry] = []
    for path in sorted(set(base_view) | set(new_view)):
        entries.append(DiffEntry(path, base_view.get(path), new_view.get(path)))
    return entries


#: Path fragments treated as wall-clock measurements by :func:`gate_diff`:
#: machine-dependent, so they gate with their own runner-keyed tolerance
#: (``timing_tolerance``) or are excluded entirely (``ignore_timing``).
#: ``speedup`` counts as timing -- a wall-clock ratio is exactly as
#: hardware-dependent as the wall clocks it divides.
TIMING_FRAGMENTS = ("seconds", "wall", "_us", "_ms", "speedup")


def is_timing_path(path: str) -> bool:
    """True when a diff path is a wall-clock (machine-dependent) leaf."""
    lowered = path.lower()
    return any(fragment in lowered for fragment in TIMING_FRAGMENTS)


def gate_diff(
    entries: Sequence[DiffEntry],
    *,
    tolerance: float = 0.25,
    ignore_timing: bool = False,
    timing_tolerance: Optional[float] = None,
) -> List[DiffEntry]:
    """The entries whose relative change falls outside the tolerance band.

    ``tolerance`` is a symmetric relative band (0.25 = +-25% of the
    baseline value).  Leaves present on only one side always gate (a
    metric appeared or vanished).  Timing leaves (paths containing a
    :data:`TIMING_FRAGMENTS` fragment) are machine-dependent:
    ``timing_tolerance`` gives them their own, typically wider, band --
    the hard-fail flavour used when both documents were measured on the
    same runner fingerprint -- while ``ignore_timing`` skips them
    entirely so the gate stays deterministic across machines.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance!r}")
    if timing_tolerance is not None and timing_tolerance < 0:
        raise ValueError(f"timing_tolerance must be >= 0, got {timing_tolerance!r}")
    regressions: List[DiffEntry] = []
    for entry in entries:
        timing = is_timing_path(entry.path)
        if ignore_timing and timing:
            continue
        band = (
            timing_tolerance if (timing and timing_tolerance is not None) else tolerance
        )
        if entry.base is None or entry.new is None:
            regressions.append(entry)
            continue
        relative = entry.relative
        if relative is None:
            continue  # both zero
        if relative is math.inf or abs(relative) > band:
            regressions.append(entry)
    return regressions
