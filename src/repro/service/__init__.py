"""Long-lived reservation service: daemon, client, event plane, load gen.

Wraps :class:`~repro.runtime.coordinator.ReservationCoordinator` (or its
fault-tolerant variant) behind a network admission API so the paper's
three-phase protocol can be exercised by real concurrent clients instead
of a single in-process driver:

* :mod:`repro.service.daemon` -- the asyncio daemon (``repro-serve``).
* :mod:`repro.service.client` -- the asyncio reference client.
* :mod:`repro.service.events` -- EventLog fan-out with bounded
  per-subscriber queues and ``stream.truncated`` loss markers.
* :mod:`repro.service.loadgen` -- open-loop WorkloadSpec replay feeding
  the ``BENCH_service_load`` ledger.
* :mod:`repro.service.http` -- the stdlib HTTP/1.1 + RFC 6455 plumbing
  both sides share.
"""

from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    ServiceDrainingError,
    ServiceResponse,
)
from repro.service.daemon import (
    DaemonConfig,
    ReservationDaemon,
    ReservationService,
    ServiceError,
)
from repro.service.events import TRUNCATION_KIND, EventPlane, EventSubscriber
from repro.service.loadgen import LoadGenConfig, LoadReport, run_load

__all__ = [
    "DaemonConfig",
    "EventPlane",
    "EventSubscriber",
    "LoadGenConfig",
    "LoadReport",
    "ReservationDaemon",
    "ReservationService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceDrainingError",
    "ServiceError",
    "ServiceResponse",
    "TRUNCATION_KIND",
    "run_load",
]
