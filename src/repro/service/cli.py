"""``repro-serve``: run the reservation daemon until SIGINT/SIGTERM.

Boots a :class:`~repro.service.daemon.ReservationDaemon` over a seeded
:class:`~repro.sim.environment.GridEnvironment` and serves the admission
API, the WebSocket event plane, and ``/metrics`` until a termination
signal arrives; shutdown drains in-flight admissions before closing the
listener (bounded by ``--drain-timeout``).

SIGQUIT does *not* stop the daemon: it dumps the flight recorder (the
always-on ring of recent spans, events and wire counters) to
``--flight-dir`` and keeps serving -- the kill -QUIT postmortem idiom.
``--access-log`` writes one structured JSON line per request to stderr.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from repro.faults.plan import FaultConfig
from repro.service.daemon import DaemonConfig, ReservationDaemon
from repro.sim.experiment import ALGORITHMS, CONTENTION_INDICES

__all__ = ["build_config", "main"]


def build_config(argv: Optional[List[str]] = None) -> DaemonConfig:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="listen port (0 = ephemeral, printed on boot)")
    parser.add_argument("--seed", type=int, default=0,
                        help="grid + planner seed (admissions are "
                             "deterministic given the seed and request order)")
    parser.add_argument("--algorithm", default="basic", choices=sorted(ALGORITHMS))
    parser.add_argument("--contention-index", default="ratio",
                        choices=sorted(CONTENTION_INDICES))
    parser.add_argument("--capacity-min", type=float, default=1000.0)
    parser.add_argument("--capacity-max", type=float, default=4000.0)
    parser.add_argument("--no-tie-break", action="store_true",
                        help="disable the §4.3 load tie-break")
    parser.add_argument("--faults", action="store_true",
                        help="serve through the fault-tolerant coordinator "
                             "with an injected §6 fault plan")
    parser.add_argument("--event-capacity", type=int, default=65536,
                        help="bounded EventLog capacity")
    parser.add_argument("--subscriber-queue", type=int, default=256,
                        help="default per-WebSocket-subscriber queue bound")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="seconds to wait for in-flight admissions on "
                             "shutdown")
    parser.add_argument("--access-log", action="store_true",
                        help="write one JSON access-log line per request "
                             "to stderr (method/path/status/duration/"
                             "trace_id)")
    parser.add_argument("--flight-dir", default=None,
                        help="directory for flight-recorder dumps "
                             "(SIGQUIT, unhandled exceptions, and "
                             "POST /v1/debug/dump); unset = in-band "
                             "snapshots only")
    parser.add_argument("--shard-index", type=int, default=None,
                        help="serve only the ShardMap slice of the grid "
                             "with this index (cluster mode; requires "
                             "--shard-count)")
    parser.add_argument("--shard-count", type=int, default=1,
                        help="total number of shards in the cluster")
    parser.add_argument("--lease-ttl", type=float, default=5.0,
                        help="wall-clock TTL (seconds) of cross-shard "
                             "reserve leases before the reaper "
                             "releases them")
    args = parser.parse_args(argv)
    return DaemonConfig(
        host=args.host,
        port=args.port,
        seed=args.seed,
        algorithm=args.algorithm,
        capacity_range=(args.capacity_min, args.capacity_max),
        contention_index=args.contention_index,
        tie_break=not args.no_tie_break,
        faults=FaultConfig() if args.faults else None,
        event_capacity=args.event_capacity,
        subscriber_queue=args.subscriber_queue,
        drain_timeout=args.drain_timeout,
        access_log=args.access_log,
        flight_dir=args.flight_dir,
        shard_index=args.shard_index,
        shard_count=args.shard_count,
        lease_ttl=args.lease_ttl,
    )


async def _serve(config: DaemonConfig) -> None:
    daemon = ReservationDaemon(config)
    await daemon.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            signal.signal(signum, lambda *_: stop.set())

    def _sigquit_dump() -> None:
        try:
            path = daemon.service.flight_dump("sigquit")
        except Exception as exc:  # pragma: no cover - dump must not kill us
            print(f"repro-serve: flight dump failed: {exc}",
                  file=sys.stderr, flush=True)
            return
        if path is None:
            print("repro-serve: SIGQUIT received but --flight-dir is unset; "
                  "no dump written", file=sys.stderr, flush=True)
        else:
            print(f"repro-serve: flight recorder dumped to {path}",
                  file=sys.stderr, flush=True)

    if hasattr(signal, "SIGQUIT"):
        try:
            loop.add_signal_handler(signal.SIGQUIT, _sigquit_dump)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    shard = (
        f", shard={config.shard_index}/{config.shard_count}"
        if config.shard_index is not None
        else ""
    )
    print(
        f"repro-serve: listening on {config.host}:{daemon.port} "
        f"(algorithm={config.algorithm}, seed={config.seed}, "
        f"faults={'on' if config.faults else 'off'}{shard})",
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        print("repro-serve: draining and shutting down", flush=True)
        await daemon.shutdown(drain=True)


def main(argv: Optional[List[str]] = None) -> int:
    config = build_config(argv)
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
