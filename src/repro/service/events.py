"""The daemon's live event plane: EventLog -> bounded subscriber queues.

:class:`repro.obs.events.EventLog` delivers every emitted event to its
subscribers *synchronously inside emit*; a WebSocket consumer on the
other end of a TCP connection can be arbitrarily slow.  The
:class:`EventPlane` decouples the two: one synchronous fan-out callback
pushes JSON-ready event dicts into a bounded :class:`asyncio.Queue` per
subscriber, and a slow consumer loses events *from its own queue only* --
admission processing and every other subscriber are unaffected.

Loss is never silent: once a subscriber's queue has room again, the next
delivery is preceded by a single ``stream.truncated`` marker carrying the
number of events that subscriber missed (mirroring the ``log.truncated``
marker the bounded :class:`EventLog` itself appends at capacity).  Every
drop also increments the ``service.events_dropped`` counter (labelled by
why the queue had no room) on the installed metrics registry, so slow
consumers are visible at ``/metrics`` without tailing any stream.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.obs import metrics as _metrics
from repro.obs.events import EventLog, ReservationEvent

__all__ = ["EventPlane", "EventSubscriber", "TRUNCATION_KIND"]

#: The marker kind injected into a slow subscriber's stream.  Distinct
#: from ``log.truncated`` (the EventLog's own storage bound): this one is
#: per-subscriber and says "events were emitted that *you* did not get".
TRUNCATION_KIND = "stream.truncated"

#: Sentinel closing a subscriber's stream (queued on detach/close).
_CLOSE = None


class EventSubscriber:
    """One consumer's bounded view of the event stream."""

    def __init__(self, subscriber_id: int, maxsize: int) -> None:
        self.subscriber_id = subscriber_id
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        #: Events dropped since the last delivered truncation marker.
        self.dropped = 0
        #: Total events dropped over the subscriber's lifetime.
        self.total_dropped = 0
        self.closed = False

    async def next_event(self) -> Optional[dict]:
        """The next event dict, or None once the stream is closed."""
        if self.closed and self.queue.empty():
            return None
        item = await self.queue.get()
        if item is _CLOSE:
            self.closed = True
            return None
        return item


class EventPlane:
    """Fans one :class:`EventLog` out to bounded per-subscriber queues."""

    def __init__(self, *, queue_size: int = 256) -> None:
        if queue_size < 2:
            # One slot for the truncation marker plus one for a payload
            # is the minimum that lets a stalled consumer ever recover.
            raise ValueError(f"queue_size must be >= 2, got {queue_size!r}")
        self.queue_size = queue_size
        self._subscribers: Dict[int, EventSubscriber] = {}
        self._ids = itertools.count(1)
        self._log: Optional[EventLog] = None
        #: Total events fanned out (delivered or dropped), for /v1/query.
        self.events_seen = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, log: EventLog) -> None:
        """Start fanning out every event ``log`` emits."""
        if self._log is not None:
            raise RuntimeError("EventPlane is already attached to a log")
        self._log = log
        log.subscribe(self._deliver)

    def detach(self) -> None:
        """Stop fanning out and close every subscriber's stream."""
        if self._log is not None:
            self._log.unsubscribe(self._deliver)
            self._log = None
        for subscriber in list(self._subscribers.values()):
            self.unsubscribe(subscriber)

    # -- subscriptions -----------------------------------------------------

    def subscribe(self, *, queue_size: Optional[int] = None) -> EventSubscriber:
        """A new subscriber receiving every event from now on."""
        subscriber = EventSubscriber(next(self._ids), queue_size or self.queue_size)
        self._subscribers[subscriber.subscriber_id] = subscriber
        return subscriber

    def unsubscribe(self, subscriber: EventSubscriber) -> None:
        """Close the subscriber's stream (idempotent)."""
        self._subscribers.pop(subscriber.subscriber_id, None)
        if not subscriber.closed:
            subscriber.closed = True
            # Make sure the reader wakes up even on a full queue: drop
            # one pending event to make room for the close sentinel.
            try:
                subscriber.queue.put_nowait(_CLOSE)
            except asyncio.QueueFull:
                try:
                    subscriber.queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - racy branch
                    pass
                subscriber.queue.put_nowait(_CLOSE)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- fan-out -----------------------------------------------------------

    def _deliver(self, event: ReservationEvent) -> None:
        """EventLog subscriber callback: runs inside ``emit``."""
        self.events_seen += 1
        payload = event.to_dict()
        for subscriber in list(self._subscribers.values()):
            self._offer(subscriber, payload)

    def _offer(self, subscriber: EventSubscriber, payload: dict) -> None:
        queue = subscriber.queue
        if subscriber.dropped:
            # Recovery needs room for the marker *and* this event, or the
            # marker itself would immediately re-truncate the stream.
            if queue.maxsize - queue.qsize() < 2:
                self._count_drop(subscriber, "recovery_room")
                return
            queue.put_nowait(
                {
                    "kind": TRUNCATION_KIND,
                    "dropped": subscriber.dropped,
                    "resume_seq": payload.get("seq"),
                }
            )
            subscriber.dropped = 0
        try:
            queue.put_nowait(payload)
        except asyncio.QueueFull:
            self._count_drop(subscriber, "queue_full")

    @staticmethod
    def _count_drop(subscriber: EventSubscriber, reason: str) -> None:
        subscriber.dropped += 1
        subscriber.total_dropped += 1
        registry = _metrics.active_registry()
        if registry is not None:
            registry.counter("service.events_dropped", reason=reason).inc()
