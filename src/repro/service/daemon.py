"""The long-lived reservation service daemon (admission API + event plane).

Everything before this module is run-to-completion: build a grid, drive
a workload, exit.  :class:`ReservationService` keeps one
:class:`~repro.sim.environment.GridEnvironment` (and its
:class:`~repro.runtime.coordinator.ReservationCoordinator`, or the
fault-tolerant variant when a :class:`~repro.faults.plan.FaultConfig` is
configured) alive behind an admission API, and
:class:`ReservationDaemon` serves that API over HTTP:

===========================  ==================================================
``POST /v1/establish``       one three-phase establishment
``POST /v1/establish_batch`` N arrivals against one availability snapshot
``POST /v1/renegotiate``     §5 re-planning of a live session
``POST /v1/teardown``        release everything a session holds
``GET  /v1/query``           daemon + session + utilization state
``GET  /v1/events``          WebSocket stream of the causal event log
``GET  /metrics``            Prometheus text exposition of the live registry
``GET  /healthz``            liveness probe (uptime, in-flight, drain state)
``POST /v1/debug/dump``      flight-recorder snapshot on demand
===========================  ==================================================

Admissions execute *serialized* on the event loop under one lock, so
daemon decisions for a given request order are byte-identical to calling
``coordinator.establish`` in-process in that order -- the property the
acceptance test pins.  The event plane fans the coordinator's causal
:class:`~repro.obs.events.EventLog` out to WebSocket subscribers through
bounded queues (:mod:`repro.service.events`): a slow consumer loses its
own events behind a ``stream.truncated`` marker, never the daemon's.

Every request is handled under a request-scoped
:class:`~repro.obs.context.TraceContext` -- continued from the caller's
``traceparent`` header when present and valid, a fresh root otherwise
(a malformed header never fails a request).  While the context is bound,
every span the coordinator emits and every causal event carries the
request's ``trace_id``/``request_id``; trace ids never appear in
response bodies, so decisions stay byte-identical to in-process calls.
Per-phase admission latency (parse / queue_wait / plan / commit /
serialize) lands in ``daemon.admission_phase_seconds`` histograms with
trace-id exemplars, and an always-on :class:`~repro.obs.flight
.FlightRecorder` keeps the most recent spans + events + wire counters
for postmortem dumps (SIGQUIT, unhandled exception, or the debug
endpoint).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os as _os
import sys as _sys
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.errors import AdmissionError, ModelError, ReproError
from repro.core.planner import BasicPlanner, RandomPlanner
from repro.core.tradeoff import TradeoffPlanner
from repro.des.engine import Environment
from repro.des.rng import RandomStreams
from repro.faults.coordinator import FaultTolerantCoordinator, Lease
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_SEED_INDEX, FaultConfig, FaultPlan
from repro.obs import context as _context
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.events import EventLog
from repro.obs.flight import (
    DEFAULT_EVENT_CAPACITY,
    DEFAULT_SPAN_CAPACITY,
    FlightRecorder,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import registry_exposition
from repro.runtime.coordinator import EstablishmentResult, RenegotiationResult
from repro.runtime.messages import PlanSegment
from repro.service import http as _http
from repro.service.events import EventPlane
from repro.sim.environment import GridEnvironment
from repro.sim.experiment import ALGORITHMS, CONTENTION_INDICES, derive_run_seed
from repro.sim.workload import SessionArrival

__all__ = ["DaemonConfig", "ReservationDaemon", "ReservationService", "ServiceError"]


class ServiceError(ReproError):
    """A request the service refuses (bad input, unknown session, ...)."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class DaemonConfig:
    """Everything that defines one daemon instance.

    The grid-shaped fields (``seed``, ``capacity_range``, ``algorithm``,
    ``contention_index``, ``tie_break``) mean exactly what they mean on
    :class:`~repro.sim.SimulationConfig`, so a daemon and an in-process
    run built from the same values admit identically.
    """

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (see ``ReservationDaemon.port``).
    port: int = 8787
    seed: int = 0
    algorithm: str = "basic"
    capacity_range: Tuple[float, float] = (1000.0, 4000.0)
    contention_index: str = "ratio"
    tie_break: bool = True
    #: Route admissions through the fault-tolerant coordinator.
    faults: Optional[FaultConfig] = None
    #: Horizon the fault plan is generated over (TU of the DES clock).
    fault_horizon: float = 10800.0
    #: Retained-event bound of the daemon's EventLog (None = unbounded).
    event_capacity: Optional[int] = 65536
    #: Per-WebSocket-subscriber queue bound (the slow-consumer cutoff).
    subscriber_queue: int = 256
    #: Seconds shutdown waits for in-flight admissions before forcing.
    drain_timeout: float = 10.0
    #: Emit one JSON access-log line per request to stderr.
    access_log: bool = False
    #: Directory flight-recorder dumps are written to (None = no files;
    #: ``POST /v1/debug/dump`` still returns the snapshot in-band).
    flight_dir: Optional[str] = None
    #: Flight-recorder ring sizes (most recent spans / events kept).
    flight_spans: int = DEFAULT_SPAN_CAPACITY
    flight_events: int = DEFAULT_EVENT_CAPACITY
    #: Cluster sharding: this daemon owns the resources the
    #: :class:`~repro.cluster.shardmap.ShardMap` assigns to
    #: ``shard_index`` out of ``shard_count`` shards.  ``None`` (the
    #: default) keeps the historical single-daemon behaviour: the
    #: daemon owns every resource of its grid.
    shard_index: Optional[int] = None
    shard_count: int = 1
    #: Wall-clock TTL (seconds) of a two-phase ``/v1/reserve`` lease;
    #: leases neither committed nor aborted in time are reaped so a
    #: dead router never strands capacity.
    lease_ttl: float = 5.0

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ModelError(
                f"unknown algorithm {self.algorithm!r}; pick from {ALGORITHMS}"
            )
        if self.contention_index not in CONTENTION_INDICES:
            raise ModelError(
                f"unknown contention index {self.contention_index!r}; "
                f"pick from {sorted(CONTENTION_INDICES)}"
            )
        if self.subscriber_queue < 2:
            raise ModelError("subscriber_queue must be >= 2")
        if self.drain_timeout < 0:
            raise ModelError("drain_timeout must be >= 0")
        if self.flight_spans <= 0 or self.flight_events <= 0:
            raise ModelError("flight_spans and flight_events must be positive")
        if self.shard_count < 1:
            raise ModelError("shard_count must be >= 1")
        if self.shard_index is not None and not (
            0 <= self.shard_index < self.shard_count
        ):
            raise ModelError(
                f"shard_index {self.shard_index} out of range for "
                f"shard_count {self.shard_count}"
            )
        if self.lease_ttl <= 0:
            raise ModelError("lease_ttl must be positive")


class ReservationService:
    """The daemon's in-process core: grid + coordinator + event plane.

    Owns the process-global observability handles while started: its
    :class:`MetricsRegistry` backs ``/metrics`` and its
    :class:`EventLog` feeds the event plane.  ``start()``/``close()``
    install/uninstall them, so sequential daemons (tests, restarts)
    leave a clean process behind.
    """

    def __init__(self, config: DaemonConfig) -> None:
        self.config = config
        self.env = Environment()
        self.streams = RandomStreams(config.seed)
        self.registry = MetricsRegistry()
        self.log = EventLog(capacity=config.event_capacity)
        self.plane = EventPlane(queue_size=config.subscriber_queue)
        self.flight = FlightRecorder(
            span_capacity=config.flight_spans, event_capacity=config.flight_events
        )
        self.grid = GridEnvironment(
            self.env, self.streams, capacity_range=config.capacity_range
        )
        if config.faults is not None:
            plan = FaultPlan.generate(
                config.faults,
                seed=derive_run_seed(config.seed, FAULT_SEED_INDEX),
                horizon=config.fault_horizon,
                hosts=sorted(self.grid.proxies),
            )
            injector = FaultInjector(plan, clock=lambda: self.env.now)
            self.grid.coordinator = FaultTolerantCoordinator(
                self.grid.registry,
                self.grid.model_store,
                self.grid.proxies,
                injector=injector,
                env=self.env,
            )
        self.coordinator = self.grid.coordinator
        self.planner = self._make_planner()
        self.contention_index = CONTENTION_INDICES[config.contention_index]
        #: session_id -> the arrival facts needed to renegotiate/query it.
        self.sessions: Dict[str, dict] = {}
        self.counters = {"established": 0, "rejected": 0, "torn_down": 0}
        self.started_at = _time.monotonic()
        self._session_seq = 0
        self._started = False
        self._previous_tracer = None
        # Cluster sharding: which slice of the grid this daemon owns.
        # Every shard builds the identical same-seed grid (capacities
        # come from the seeded draw), but only grants reservations on
        # the resources the shard map assigns to it.
        self.shard_map = None
        self._owned_resources: Optional[frozenset] = None
        self.shard_registry = self.grid.registry
        if config.shard_index is not None:
            from repro.cluster.shardmap import ShardMap

            self.shard_map = ShardMap.from_topology(
                self.grid.topology, config.shard_count
            )
            self._owned_resources = frozenset(
                rid
                for rid in self.grid.registry.resource_ids()
                if self.shard_map.shard_of(rid) == config.shard_index
            )
            self.shard_registry = self.grid.registry.subset(
                sorted(self._owned_resources)
            )
        #: Two-phase reserve/commit leases (lease_id -> (lease, hosts)).
        self._shard_leases: Dict[str, Tuple[Lease, Tuple[str, ...]]] = {}
        self._lease_seq = itertools.count(1)
        self.lease_counters = {
            "reserved": 0, "committed": 0, "aborted": 0, "expired": 0
        }

    def _make_planner(self):
        if self.config.algorithm == "basic":
            return BasicPlanner(tie_break=self.config.tie_break)
        if self.config.algorithm == "tradeoff":
            return TradeoffPlanner(tie_break=self.config.tie_break)
        return RandomPlanner(rng=self.streams.stream("random-planner"))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Install the registry + event log + flight tracer, attach planes."""
        if self._started:
            return
        _metrics.install(self.registry)
        try:
            _events.install(self.log)
        except RuntimeError:
            _metrics.uninstall()
            raise
        self._previous_tracer = _trace.active_tracer()
        _trace.install(self.flight.tracer)
        self.flight.attach(self.log)
        self.plane.attach(self.log)
        self._started = True

    def close(self) -> None:
        """Detach the planes and release the global handles."""
        if not self._started:
            return
        self.plane.detach()
        self.flight.detach()
        if _trace.active_tracer() is self.flight.tracer:
            if self._previous_tracer is None:
                _trace.uninstall()
            else:
                _trace.install(self._previous_tracer)
        if _events.active_event_log() is self.log:
            _events.uninstall()
        if _metrics.active_registry() is self.registry:
            _metrics.uninstall()
        self._started = False

    def flight_dump(self, reason: str) -> Optional[Path]:
        """Dump the flight recorder (None when no ``flight_dir`` is set).

        File names carry the pid and a per-process sequence number so
        repeated dumps (and parallel daemons sharing a directory) never
        overwrite each other.
        """
        if self.config.flight_dir is None:
            return None
        name = f"flight-{reason}-{_os.getpid()}-{self.flight.dump_count}.json"
        return self.flight.dump(
            Path(self.config.flight_dir) / name,
            reason=reason,
            registry=self.registry,
            meta=self._flight_meta(),
        )

    def flight_snapshot(self, reason: str) -> dict:
        """The flight recorder's schema-v4 document, in-band."""
        return self.flight.snapshot(
            reason=reason, registry=self.registry, meta=self._flight_meta()
        )

    def _flight_meta(self) -> dict:
        return {
            "daemon_seed": self.config.seed,
            "daemon_algorithm": self.config.algorithm,
            "active_sessions": len(self.sessions),
            "counters": dict(self.counters),
        }

    # -- request decoding --------------------------------------------------

    def _fresh_session_id(self) -> str:
        self._session_seq += 1
        return f"svc-{self._session_seq}"

    def _arrival_from(self, payload: dict) -> SessionArrival:
        """Decode one establish payload into a workload-style arrival."""
        try:
            service = str(payload["service"])
            domain = str(payload["domain"])
        except KeyError as exc:
            raise ServiceError(f"missing required field {exc.args[0]!r}") from exc
        session_id = str(payload.get("session_id") or self._fresh_session_id())
        try:
            demand_scale = float(payload.get("demand_scale", 1.0))
            duration = float(payload.get("duration", 1.0))
            arrival_time = float(payload.get("arrival_time", 0.0))
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"non-numeric field: {exc}") from exc
        if demand_scale <= 0:
            raise ServiceError(f"demand_scale must be positive, got {demand_scale!r}")
        return SessionArrival(
            session_id=session_id,
            arrival_time=arrival_time,
            domain=domain,
            service=service,
            demand_scale=demand_scale,
            duration=duration,
        )

    def _placed(self, arrival: SessionArrival):
        """(binding, component_hosts) of an arrival; 400 on bad placement."""
        try:
            binding = self.grid.binding_for(arrival.service, arrival.domain)
            component_hosts = self.grid.component_hosts_for(
                arrival.service, arrival.domain
            )
        except ModelError as exc:
            raise ServiceError(str(exc)) from exc
        return binding, component_hosts

    # -- admission operations (serialized by the daemon's lock) ------------

    def establish(self, payload: dict) -> dict:
        """One three-phase establishment; returns the JSON-ready outcome."""
        arrival = self._arrival_from(payload)
        if arrival.session_id in self.sessions:
            raise ServiceError(
                f"session {arrival.session_id!r} already established", status=409
            )
        binding, component_hosts = self._placed(arrival)
        result = self.coordinator.establish(
            arrival.session_id,
            arrival.service,
            binding,
            self.planner,
            component_hosts=component_hosts,
            demand_scale=arrival.demand_scale,
            contention_index=self.contention_index,
        )
        return self._record(arrival, result)

    def establish_batch(self, payload: dict) -> List[dict]:
        """N arrivals admitted against one availability snapshot."""
        arrivals_payload = payload.get("arrivals")
        if not isinstance(arrivals_payload, list) or not arrivals_payload:
            raise ServiceError("'arrivals' must be a non-empty list")
        arrivals = [self._arrival_from(item) for item in arrivals_payload]
        seen = set()
        for arrival in arrivals:
            if arrival.session_id in self.sessions or arrival.session_id in seen:
                raise ServiceError(
                    f"session {arrival.session_id!r} already established", status=409
                )
            seen.add(arrival.session_id)
        requests = []
        for arrival in arrivals:
            binding, component_hosts = self._placed(arrival)
            requests.append(
                arrival.to_session_request(binding, component_hosts=component_hosts)
            )
        results = self.coordinator.establish_batch(
            requests, self.planner, contention_index=self.contention_index
        )
        return [
            self._record(arrival, result)
            for arrival, result in zip(arrivals, results)
        ]

    def _record(self, arrival: SessionArrival, result: EstablishmentResult) -> dict:
        """Track the outcome and shape the response document."""
        outcome = _establishment_to_dict(result)
        if result.success:
            self.counters["established"] += 1
            self.sessions[arrival.session_id] = {
                "service": arrival.service,
                "domain": arrival.domain,
                "demand_scale": arrival.demand_scale,
                "duration": arrival.duration,
                "level": result.qos_level,
                "established_at": _time.monotonic(),
            }
        else:
            self.counters["rejected"] += 1
        return outcome

    def renegotiate(self, payload: dict) -> dict:
        """§5 re-planning of a live session against fresh availability."""
        session_id = payload.get("session_id")
        if not session_id:
            raise ServiceError("missing required field 'session_id'")
        session = self.sessions.get(str(session_id))
        if session is None:
            raise ServiceError(f"unknown session {session_id!r}", status=404)
        binding = self.grid.binding_for(session["service"], session["domain"])
        component_hosts = self.grid.component_hosts_for(
            session["service"], session["domain"]
        )
        result = self.coordinator.renegotiate(
            str(session_id),
            session["service"],
            binding,
            self.planner,
            component_hosts=component_hosts,
            demand_scale=session["demand_scale"],
            contention_index=self.contention_index,
            trigger=str(payload.get("trigger", "api")),
            previous_level=session["level"],
        )
        if result.outcome == "failed_dropped":
            self.sessions.pop(str(session_id), None)
        else:
            session["level"] = result.new_level
        return _renegotiation_to_dict(result)

    def teardown(self, payload: dict) -> dict:
        """Release everything a session holds."""
        session_id = payload.get("session_id")
        if not session_id:
            raise ServiceError("missing required field 'session_id'")
        known = self.sessions.pop(str(session_id), None)
        released = self.coordinator.teardown(str(session_id))
        if known is None and released == 0:
            raise ServiceError(f"unknown session {session_id!r}", status=404)
        self.counters["torn_down"] += 1
        return {"session_id": str(session_id), "released": released}

    # -- cross-shard two-phase reserve/commit ------------------------------

    @property
    def shard_label(self) -> str:
        index = self.config.shard_index
        return f"shard-{index}" if index is not None else "shard-solo"

    def _check_owned(self, resource_id: str) -> None:
        if resource_id not in self.grid.registry:
            raise ServiceError(f"unknown resource {resource_id!r}")
        if (
            self._owned_resources is not None
            and resource_id not in self._owned_resources
        ):
            raise ServiceError(
                f"resource {resource_id!r} is not owned by shard "
                f"{self.config.shard_index}",
                status=409,
            )

    def reserve(self, payload: dict) -> dict:
        """Phase one of a cross-shard admission: hold capacity on a lease.

        Applies the demanded amounts through this shard's owning proxies
        atomically (all or nothing) and parks them on a TTL lease.  The
        router commits or aborts the lease; a router that dies first is
        covered by the reaper, which releases expired leases -- the
        PR 4 orphan-reaping contract applied across processes.
        """
        session_id = str(payload.get("session_id") or "")
        if not session_id:
            raise ServiceError("missing required field 'session_id'")
        demands_payload = payload.get("demands")
        if not isinstance(demands_payload, dict) or not demands_payload:
            raise ServiceError("'demands' must be a non-empty object")
        try:
            demands = {
                str(rid): float(amount)
                for rid, amount in demands_payload.items()
            }
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"non-numeric demand: {exc}") from exc
        per_proxy: Dict[str, Dict[str, float]] = {}
        for resource_id in sorted(demands):
            self._check_owned(resource_id)
            proxy = self.coordinator.proxy_for(resource_id)
            per_proxy.setdefault(proxy.host, {})[resource_id] = demands[resource_id]
        applied: List[Tuple[str, Tuple]] = []
        try:
            for host in sorted(per_proxy):
                proxy = self.grid.proxies[host]
                before = len(proxy.held_for(session_id))
                proxy.apply_segment(
                    PlanSegment(
                        session_id=session_id,
                        proxy_host=host,
                        demands=per_proxy[host],
                    )
                )
                applied.append(
                    (host, tuple(proxy.held_for(session_id)[before:]))
                )
        except AdmissionError as exc:
            for host, reservations in applied:
                self.grid.proxies[host].release_reservations(
                    session_id, reservations
                )
            return {
                "session_id": session_id,
                "reserved": False,
                "failed_resource": exc.resource_id,
            }
        reservations = tuple(
            reservation for _, held in applied for reservation in held
        )
        lease = Lease(
            lease_id=f"{session_id}@{self.shard_label}#{next(self._lease_seq)}",
            session_id=session_id,
            host=self.shard_label,
            reservations=reservations,
            reserved_at=_time.monotonic(),
            ttl=self.config.lease_ttl,
        )
        self._shard_leases[lease.lease_id] = (lease, tuple(sorted(per_proxy)))
        self.lease_counters["reserved"] += 1
        _events.emit(
            "lease.reserved",
            session=session_id,
            lease=lease.lease_id,
            shard=self.shard_label,
            resources=sorted(demands),
        )
        return {
            "session_id": session_id,
            "reserved": True,
            "lease_id": lease.lease_id,
            "ttl": self.config.lease_ttl,
        }

    def commit(self, payload: dict) -> dict:
        """Phase two: make a lease's reservations permanent."""
        lease_id = str(payload.get("lease_id") or "")
        if not lease_id:
            raise ServiceError("missing required field 'lease_id'")
        entry = self._shard_leases.pop(lease_id, None)
        if entry is None:
            raise ServiceError(
                f"unknown lease {lease_id!r} (expired or never reserved)",
                status=404,
            )
        lease, _hosts = entry
        meta = payload.get("session")
        record = {"cluster": True, "established_at": _time.monotonic()}
        if isinstance(meta, dict):
            for key in ("service", "domain", "demand_scale", "duration", "level"):
                if key in meta:
                    record[key] = meta[key]
        self.sessions.setdefault(lease.session_id, record)
        self.counters["established"] += 1
        self.lease_counters["committed"] += 1
        _events.emit(
            "lease.committed",
            session=lease.session_id,
            lease=lease_id,
            shard=self.shard_label,
        )
        return {
            "lease_id": lease_id,
            "session_id": lease.session_id,
            "committed": True,
        }

    def abort(self, payload: dict) -> dict:
        """Abort a lease, releasing its holds (idempotent on unknowns)."""
        lease_id = str(payload.get("lease_id") or "")
        if not lease_id:
            raise ServiceError("missing required field 'lease_id'")
        entry = self._shard_leases.pop(lease_id, None)
        if entry is None:
            return {"lease_id": lease_id, "aborted": False, "released": 0}
        lease, hosts = entry
        released = sum(
            self.grid.proxies[host].release_reservations(
                lease.session_id, lease.reservations
            )
            for host in hosts
        )
        self.lease_counters["aborted"] += 1
        _events.emit(
            "lease.aborted",
            session=lease.session_id,
            lease=lease_id,
            shard=self.shard_label,
            released=released,
        )
        return {"lease_id": lease_id, "aborted": True, "released": released}

    def reap_expired_leases(self, now: Optional[float] = None) -> int:
        """Release every lease past its TTL; returns the count reaped."""
        now = _time.monotonic() if now is None else now
        reaped = 0
        for lease_id in sorted(self._shard_leases):
            lease, hosts = self._shard_leases[lease_id]
            if now < lease.expires_at:
                continue
            del self._shard_leases[lease_id]
            released = sum(
                self.grid.proxies[host].release_reservations(
                    lease.session_id, lease.reservations
                )
                for host in hosts
            )
            self.lease_counters["expired"] += 1
            _events.emit(
                "lease.expired",
                session=lease.session_id,
                host=self.shard_label,
                lease=lease_id,
                released=released,
            )
            reaped += 1
        return reaped

    def availability(self) -> dict:
        """Observed availability of this shard's demand-addressable slice.

        Covers the cpu and end-to-end path brokers the shard owns (the
        resources plans name); link brokers stay internal to the paths.
        """
        observations: Dict[str, dict] = {}
        addressable = list(self.grid.cpu_brokers.values()) + list(
            self.grid.path_brokers.values()
        )
        for broker in addressable:
            if (
                self._owned_resources is not None
                and broker.resource_id not in self._owned_resources
            ):
                continue
            observation = broker.observe()
            observations[broker.resource_id] = {
                "available": observation.available,
                "alpha": observation.alpha,
                "observed_at": observation.observed_at,
            }
        return {
            "shard": self.config.shard_index,
            "shard_count": self.config.shard_count,
            "seed": self.config.seed,
            "resources": observations,
        }

    # -- read-only views ---------------------------------------------------

    def query(self, session_id: Optional[str] = None) -> dict:
        """Daemon state, or one session's record with ``session_id``."""
        if session_id is not None:
            session = self.sessions.get(session_id)
            if session is None:
                raise ServiceError(f"unknown session {session_id!r}", status=404)
            document = {"session_id": session_id}
            document.update(
                {k: v for k, v in session.items() if k != "established_at"}
            )
            return document
        document = {
            "uptime_seconds": _time.monotonic() - self.started_at,
            "algorithm": self.config.algorithm,
            "seed": self.config.seed,
            "fault_tolerant": self.config.faults is not None,
            "active_sessions": len(self.sessions),
            "counters": dict(self.counters),
            "event_log": {
                "recorded": len(self.log),
                "dropped": self.log.dropped,
                "subscribers": self.plane.subscriber_count,
                "fanned_out": self.plane.events_seen,
            },
            "utilization": {
                broker.resource_id: broker.utilization()
                for broker in self.grid.registry.brokers()
            },
        }
        # The shard section appears only for sharded daemons (or once
        # the 2PC endpoints have been used), so plain single-daemon
        # query responses stay byte-identical to the pre-cluster wire.
        if self.config.shard_index is not None or any(
            self.lease_counters.values()
        ):
            document["shard"] = {
                "index": self.config.shard_index,
                "count": self.config.shard_count,
                "owned_resources": len(self.shard_registry.resource_ids()),
                "pending_leases": len(self._shard_leases),
                "lease_counters": dict(self.lease_counters),
            }
        return document

    def metrics_exposition(self) -> str:
        """The ``/metrics`` body (Prometheus text format).

        Synced against the raw dict counters first, so cluster state --
        session outcomes, 2PC lease operations, shard identity -- is
        scrapeable without hitting ``/v1/query``.
        """
        self._sync_scrape_instruments()
        return registry_exposition(self.registry)

    def _sync_scrape_instruments(self) -> None:
        """Mirror dict-based state into registry instruments.

        The admission path keeps its counters in plain dicts (they
        predate the registry and ride on ``/v1/query``); scrape time is
        the one place both views must agree, so the mirror runs here --
        incrementing by the delta keeps the instruments monotone.
        """
        for outcome, value in self.counters.items():
            instrument = self.registry.counter("daemon.sessions", outcome=outcome)
            instrument.inc(max(0.0, value - instrument.value))
        for op, value in self.lease_counters.items():
            instrument = self.registry.counter("daemon.lease_operations", op=op)
            instrument.inc(max(0.0, value - instrument.value))
        self.registry.gauge("daemon.active_sessions").set(len(self.sessions))
        self.registry.gauge("daemon.pending_leases").set(len(self._shard_leases))
        if self.config.shard_index is not None:
            self.registry.gauge("daemon.shard_index").set(self.config.shard_index)
        self.registry.gauge("daemon.shard_count").set(self.config.shard_count)


def _establishment_to_dict(result: EstablishmentResult) -> dict:
    document = {
        "session_id": result.session_id,
        "success": result.success,
        "reason": result.reason,
        "failed_resource": result.failed_resource,
        "level": result.qos_level,
        "label": None,
        "psi": None,
    }
    if result.success and result.plan is not None:
        document["label"] = result.plan.end_to_end_label
        document["psi"] = result.plan.psi
    return document


def _renegotiation_to_dict(result: RenegotiationResult) -> dict:
    return {
        "session_id": result.session_id,
        "outcome": result.outcome,
        "success": result.success,
        "previous_level": result.previous_level,
        "new_level": result.new_level,
        "restored": result.restored,
        "result": _establishment_to_dict(result.result),
    }


@dataclass
class _DaemonStats:
    """Wire-level counters surfaced under /healthz."""

    requests: int = 0
    websocket_clients: int = 0


class ReservationDaemon:
    """Serves a :class:`ReservationService` over HTTP + WebSocket."""

    def __init__(self, config: Optional[DaemonConfig] = None) -> None:
        self.config = config or DaemonConfig()
        self.service = ReservationService(self.config)
        self.stats = _DaemonStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._lock = asyncio.Lock()
        self._inflight = 0
        self._drained = asyncio.Event()
        self._drained.set()
        self._draining = False
        self._ws_tasks: set = set()
        #: Open keep-alive connections (closed forcibly on shutdown so
        #: idle clients never stall ``Server.wait_closed``).
        self._connections: set = set()
        self._reaper_task: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves port 0 after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Install observability and bind the listening socket."""
        self.service.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        except BaseException:
            self.service.close()
            raise
        self._reaper_task = asyncio.create_task(self._reap_leases_forever())

    async def _reap_leases_forever(self) -> None:
        """Release expired 2PC leases in the background.

        Runs under the admission lock so a reap never interleaves with
        a commit/abort of the same lease.
        """
        interval = max(0.05, min(1.0, self.config.lease_ttl / 4))
        while True:
            await asyncio.sleep(interval)
            async with self._lock:
                self.service.reap_expired_leases()

    async def shutdown(self, *, drain: Optional[bool] = True) -> None:
        """Stop accepting work, drain in-flight admissions, release state.

        New admissions are refused with 503 the moment shutdown begins;
        requests already inside the admission lock complete (bounded by
        ``config.drain_timeout``).  WebSocket streams are closed, the
        socket and any idle keep-alive connections are closed, and the
        observability handles are uninstalled.
        """
        self._draining = True
        if drain:
            try:
                await asyncio.wait_for(
                    self._drained.wait(), timeout=self.config.drain_timeout
                )
            except asyncio.TimeoutError:  # pragma: no cover - pathological
                pass
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except asyncio.CancelledError:
                pass
            self._reaper_task = None
        if self._server is not None:
            self._server.close()
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._ws_tasks):
            task.cancel()
        if self._ws_tasks:
            await asyncio.gather(*self._ws_tasks, return_exceptions=True)
        self.service.close()

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro-serve`` entry point's core)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests until the client closes or asks us to.

        HTTP/1.1 keep-alive: the loop reads back-to-back requests off
        one socket; a clean EOF between requests ends it, a
        ``Connection: close`` request header (or drain) makes the next
        response the last one.
        """
        self._connections.add(writer)
        try:
            while True:
                started = _time.perf_counter()
                request: Optional[_http.Request] = None
                context: Optional[_context.TraceContext] = None
                response: Optional[bytes] = None
                try:
                    request = await _http.read_request(reader)
                    if request is None:
                        return
                    parse_seconds = _time.perf_counter() - started
                    self.stats.requests += 1
                    self.service.flight.record_wire("requests")
                    if request.path == "/v1/events" and request.wants_websocket:
                        await self._serve_websocket(request, reader, writer)
                        return
                    close = (
                        self._draining
                        or request.headers.get("connection", "").lower() == "close"
                    )
                    context = self._context_for(request)
                    token = _context.bind_trace_context(context)
                    try:
                        response = await self._dispatch(
                            request, parse_seconds, close
                        )
                    finally:
                        _context.reset_trace_context(token)
                    writer.write(response)
                    await writer.drain()
                    self.service.flight.record_wire("response_bytes", len(response))
                except _http.ProtocolError as exc:
                    self.service.flight.record_wire("protocol_errors")
                    try:
                        response = _http.json_response_bytes(400, {"error": str(exc)})
                        writer.write(response)
                        await writer.drain()
                    except (ConnectionError, RuntimeError):  # pragma: no cover
                        pass
                    return
                except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
                    return
                finally:
                    if request is not None and response is not None:
                        self._access_log(request, response, started, context)
                if close:
                    return
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass

    def _context_for(self, request: _http.Request) -> _context.TraceContext:
        """The request's trace context: continued or a fresh root.

        A valid ``traceparent`` header continues the caller's trace; a
        missing, truncated or malformed one silently starts a fresh root
        -- bad propagation must never fail a request.
        """
        request_id = request.headers.get(_context.REQUEST_ID_HEADER) or (
            f"req-{self.stats.requests}"
        )
        parent = _context.parse_traceparent(
            request.headers.get(_context.TRACEPARENT_HEADER)
        )
        if parent is None:
            return _context.new_trace_context(request_id=request_id)
        return _context.TraceContext(
            trace_id=parent.trace_id,
            span_id=parent.span_id,
            parent_id=parent.parent_id,
            request_id=request_id,
        )

    def _access_log(
        self,
        request: _http.Request,
        response: bytes,
        started: float,
        context: Optional[_context.TraceContext],
    ) -> None:
        """One structured JSON line per request, to stderr."""
        if not self.config.access_log:
            return
        try:
            status = int(response[9:12])
        except (ValueError, IndexError):  # pragma: no cover - defensive
            status = 0
        line = {
            "ts": round(_time.time(), 6),
            "method": request.method,
            "path": request.path,
            "status": status,
            "duration_ms": round(1e3 * (_time.perf_counter() - started), 3),
            "trace_id": context.trace_id if context else None,
            "request_id": context.request_id if context else None,
        }
        print(json.dumps(line, sort_keys=True), file=_sys.stderr, flush=True)

    async def _dispatch(
        self, request: _http.Request, parse_seconds: float, close: bool = True
    ) -> bytes:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return _http.json_response_bytes(
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "role": "shard",
                    "shard": self.service.shard_label,
                    "shard_index": self.service.config.shard_index,
                    "shard_count": self.service.config.shard_count,
                    "requests": self.stats.requests,
                    "websocket_clients": self.stats.websocket_clients,
                    "uptime_seconds": _time.monotonic() - self.service.started_at,
                    "inflight_admissions": self._inflight,
                    "draining": self._draining,
                },
                close=close,
            )
        if route == ("GET", "/metrics"):
            body = self.service.metrics_exposition().encode("utf-8")
            return _http.response_bytes(
                200, body, content_type="text/plain; version=0.0.4", close=close
            )
        if route == ("GET", "/v1/query"):
            return self._guarded(
                lambda: self.service.query(request.query.get("session_id")),
                close=close,
            )
        if route == ("GET", "/v1/availability"):
            return self._guarded(self.service.availability, close=close)
        if request.method != "POST":
            return _http.json_response_bytes(
                405,
                {"error": f"no route for {request.method} {request.path}"},
                close=close,
            )
        if request.path == "/v1/debug/dump":
            # The postmortem hatch works during drain on purpose: a
            # wedged daemon is exactly when the flight recorder matters.
            return self._guarded(self._debug_dump, close=close)
        handlers = {
            "/v1/establish": self.service.establish,
            "/v1/establish_batch": self.service.establish_batch,
            "/v1/renegotiate": self.service.renegotiate,
            "/v1/teardown": self.service.teardown,
            "/v1/reserve": self.service.reserve,
            "/v1/commit": self.service.commit,
            "/v1/abort": self.service.abort,
        }
        handler = handlers.get(request.path)
        if handler is None:
            return _http.json_response_bytes(
                404, {"error": f"unknown path {request.path!r}"}, close=close
            )
        # Drain refuses *new* admissions.  Commit/abort finish a 2PC
        # round already holding capacity, and teardown releases held
        # capacity, so they stay available -- a draining shard must not
        # wedge another shard's decision or strand a session's holds.
        if self._draining and request.path not in (
            "/v1/commit", "/v1/abort", "/v1/teardown"
        ):
            return _http.json_response_bytes(
                503,
                {"error": "daemon is shutting down", "draining": True},
                close=close,
            )
        decode_started = _time.perf_counter()
        payload = request.json()
        parse_seconds += _time.perf_counter() - decode_started
        name = request.path.rsplit("/", 1)[1]
        return await self._admit(handler, payload, name, parse_seconds, close)

    def _debug_dump(self) -> dict:
        path = self.service.flight_dump("debug_endpoint")
        return {
            "path": str(path) if path is not None else None,
            "document": self.service.flight_snapshot("debug_endpoint"),
        }

    async def _admit(
        self,
        handler,
        payload: dict,
        name: str,
        parse_seconds: float,
        close: bool = True,
    ) -> bytes:
        """Run one admission operation serialized under the lock.

        The in-flight window covers lock wait + execution, so shutdown's
        drain barrier sees every request that was accepted before the
        draining flag flipped.  Each phase of the admission (parse /
        queue_wait / plan / commit / serialize) lands in the
        ``daemon.admission_phase_seconds`` histogram, exemplared with
        the request's trace id.
        """
        context = _context.current_trace_context()
        trace_id = context.trace_id if context is not None else None
        self._inflight += 1
        self._drained.clear()
        queue_started = _time.perf_counter()
        try:
            async with self._lock:
                queue_wait = _time.perf_counter() - queue_started
                with _trace.span(f"daemon.{name}") as span:
                    status, document = self._run(handler, payload)
                    span.set(status=status)
                plan_seconds, commit_seconds = self._planning_phases(trace_id)
                serialize_started = _time.perf_counter()
                response = _http.json_response_bytes(status, document, close=close)
                serialize_seconds = _time.perf_counter() - serialize_started
                self._observe_phases(
                    trace_id,
                    parse=parse_seconds,
                    queue_wait=queue_wait,
                    plan=plan_seconds,
                    commit=commit_seconds,
                    serialize=serialize_seconds,
                )
                return response
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.set()

    def _planning_phases(self, trace_id: Optional[str]) -> Tuple[float, float]:
        """(plan, commit) seconds of the request that just ran.

        Admissions are serialized under the lock, so this request's
        spans sit contiguously at the tail of the flight tracer's ring;
        walk backwards while the trace id matches.  ``plan_batch``
        parents the per-group ``phase2_plan`` spans, so a batch counts
        the parent only (no double counting).
        """
        if trace_id is None:
            return 0.0, 0.0
        phase2 = batch = commit = 0.0
        for record in reversed(self.service.flight.tracer.records):
            if record.trace_id != trace_id:
                break
            if record.name == "phase2_plan":
                phase2 += record.duration
            elif record.name == "plan_batch":
                batch += record.duration
            elif record.name == "phase3_dispatch":
                commit += record.duration
        return (batch if batch else phase2), commit

    def _observe_phases(self, trace_id: Optional[str], **phases: float) -> None:
        for phase, seconds in phases.items():
            self.service.registry.histogram(
                "daemon.admission_phase_seconds", phase=phase
            ).observe(seconds, exemplar=trace_id)

    def _run(self, handler, payload: dict):
        """(status, document) of one operation; exceptions become errors."""
        try:
            return 200, handler(payload)
        except ServiceError as exc:
            return exc.status, {"error": str(exc)}
        except (ModelError, ReproError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            self._dump_on_exception(exc)
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _guarded(self, operation, *, close: bool = True) -> bytes:
        status, document = self._run(lambda _payload: operation(), None)
        return _http.json_response_bytes(status, document, close=close)

    def _dump_on_exception(self, exc: Exception) -> None:
        """Best-effort flight dump when a handler dies unexpectedly."""
        self.service.flight.record_wire("unhandled_exceptions")
        try:
            path = self.service.flight_dump("exception")
        except Exception:  # pragma: no cover - the dump must never re-raise
            return
        if path is not None:
            print(
                f"repro-serve: unhandled {type(exc).__name__}; "
                f"flight recorder dumped to {path}",
                file=_sys.stderr,
                flush=True,
            )

    # -- the event plane over WebSocket ------------------------------------

    async def _serve_websocket(
        self,
        request: _http.Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        if not key:
            writer.write(
                _http.json_response_bytes(400, {"error": "missing Sec-WebSocket-Key"})
            )
            await writer.drain()
            return
        writer.write(_http.websocket_handshake_bytes(key))
        await writer.drain()
        queue_size = None
        if "queue" in request.query:
            try:
                queue_size = max(2, int(request.query["queue"]))
            except ValueError:
                queue_size = None
        subscriber = self.service.plane.subscribe(queue_size=queue_size)
        self.stats.websocket_clients += 1
        task = asyncio.current_task()
        if task is not None:
            self._ws_tasks.add(task)
        control = asyncio.create_task(self._ws_control_loop(reader))
        # A client close (or dead socket) must wake the sender even when
        # no events are flowing: closing the subscription queues the
        # close sentinel next_event() is waiting on.
        control.add_done_callback(
            lambda _task: self.service.plane.unsubscribe(subscriber)
        )
        try:
            while True:
                event = await subscriber.next_event()
                if event is None:
                    break
                frame = _http.encode_ws_frame(
                    json.dumps(event, sort_keys=True).encode("utf-8")
                )
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.service.plane.unsubscribe(subscriber)
            self.stats.websocket_clients -= 1
            if task is not None:
                self._ws_tasks.discard(task)
            control.cancel()
            try:
                await control
            except (Exception, asyncio.CancelledError):  # pragma: no cover
                pass
            try:
                writer.write(_http.encode_ws_frame(b"", opcode=_http.OP_CLOSE))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass

    async def _ws_control_loop(self, reader: asyncio.StreamReader) -> None:
        """Consume client frames; returns when the client closes."""
        while True:
            opcode, _payload = await _http.read_ws_frame(reader)
            if opcode == _http.OP_CLOSE:
                return
