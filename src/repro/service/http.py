"""Minimal HTTP/1.1 + WebSocket (RFC 6455) plumbing over asyncio streams.

The reservation daemon speaks plain HTTP for its admission API and a
WebSocket for the live event plane.  The container policy is stdlib-only
(no FastAPI/uvicorn/websockets), so this module implements exactly the
slice both ends need:

* request parsing (request line, headers, ``Content-Length`` bodies) and
  response serialization for short-lived ``Connection: close`` exchanges;
* the RFC 6455 opening handshake (``Sec-WebSocket-Accept``) and data
  framing -- unmasked server frames, masked client frames, 7/16/64-bit
  payload lengths, close/ping/pong control opcodes.

Both the daemon (:mod:`repro.service.daemon`) and the client
(:mod:`repro.service.client`) build on these primitives, so the framing
code is exercised from both directions in every test.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "ProtocolError",
    "Request",
    "read_request",
    "response_bytes",
    "json_response_bytes",
    "websocket_accept_key",
    "websocket_handshake_bytes",
    "encode_ws_frame",
    "read_ws_frame",
]

#: Bounds on inbound messages; a reservation API exchange is tiny, so
#: anything larger is a confused (or hostile) peer, not a real request.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: RFC 6455 §1.3 handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """Malformed HTTP request or WebSocket frame."""


@dataclass
class Request:
    """One parsed inbound HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body decoded as a JSON object ({} when empty)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("JSON body must be an object")
        return payload

    @property
    def wants_websocket(self) -> bool:
        """True when the request asks to upgrade to a WebSocket."""
        upgrade = self.headers.get("upgrade", "").lower()
        connection = self.headers.get("connection", "").lower()
        return upgrade == "websocket" and "upgrade" in connection


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; None on clean EOF before any bytes arrive."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request head exceeds the stream limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"request head exceeds {MAX_HEADER_BYTES} bytes")
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed request line: {head[:80]!r}") from exc
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise ProtocolError(f"bad Content-Length: {length_text!r}") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(f"body of {length} bytes refused")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError("connection closed mid-body") from exc
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        target=target,
        path=parts.path,
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
    close: bool = True,
) -> bytes:
    """Serialize one HTTP response.

    ``close=False`` advertises ``Connection: keep-alive`` so the peer
    may reuse the socket; bodies always carry ``Content-Length``, which
    is what makes reuse safe to frame.
    """
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close" if close else "Connection: keep-alive",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response_bytes(status: int, payload: object, *, close: bool = True) -> bytes:
    """A JSON response with deterministic key order."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return response_bytes(status, body, close=close)


# -- WebSocket ---------------------------------------------------------------


def websocket_accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's key."""
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def websocket_handshake_bytes(key: str) -> bytes:
    """The 101 Switching Protocols response completing the handshake."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept_key(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def encode_ws_frame(payload: bytes, *, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """One final (FIN=1) WebSocket frame.

    Servers send unmasked frames; clients MUST mask (RFC 6455 §5.3),
    so the client passes ``mask=True``.
    """
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < (1 << 16):
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


async def read_ws_frame(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one frame; returns (opcode, unmasked payload).

    Handles both masked (client-sent) and unmasked (server-sent) frames
    and the extended 16/64-bit payload lengths.  Raises
    :class:`ProtocolError` on EOF mid-frame or oversized payloads;
    fragmented messages (FIN=0) are refused -- every producer in this
    codebase sends final frames only.
    """
    try:
        first = await reader.readexactly(2)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    fin = first[0] & 0x80
    opcode = first[0] & 0x0F
    if not fin and opcode != 0:
        raise ProtocolError("fragmented WebSocket messages are not supported")
    masked = first[1] & 0x80
    length = first[1] & 0x7F
    try:
        if length == 126:
            length = struct.unpack("!H", await reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack("!Q", await reader.readexactly(8))[0]
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"frame of {length} bytes refused")
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload
